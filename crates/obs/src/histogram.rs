//! Log-linear (HDR-style) latency/size histograms.
//!
//! Values are non-negative integers (microseconds, bytes, tuples). The
//! bucket layout is *log-linear*: below `2^P` (with `P =`
//! [`HISTOGRAM_PRECISION_BITS`]) every value has its own bucket; above, each
//! power-of-two segment is split into `2^P` equal sub-buckets. Recording is
//! one atomic add; the worst-case relative error of any reported quantile is
//! bounded by `2^-P` (3.2% at the default `P = 5`).
//!
//! Every histogram shares the same fixed shape, so **merge** is element-wise
//! bucket addition — associative and commutative, which is what lets
//! per-shard or per-epoch histograms be combined into fleet-wide views (and
//! what the property tests in `tests/histogram_props.rs` pin down).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision bits `P`. Quantile relative error is bounded by
/// `2^-P`.
pub const HISTOGRAM_PRECISION_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << HISTOGRAM_PRECISION_BITS;

/// Total bucket count. Each of the `64 - P` power-of-two segments above
/// `2^P` contributes `2^P` buckets, plus the `2^P` unit-width buckets below;
/// the top bucket's upper bound is exactly `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize =
    ((64 - HISTOGRAM_PRECISION_BITS + 1) << HISTOGRAM_PRECISION_BITS) as usize;

/// Bucket index for `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let top = 63 - value.leading_zeros(); // >= P
    let shift = top - HISTOGRAM_PRECISION_BITS;
    let segment = (shift + 1) as u64;
    ((segment << HISTOGRAM_PRECISION_BITS) + (value >> shift) - SUB_BUCKETS) as usize
}

/// Smallest value mapping to bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let segment = i >> HISTOGRAM_PRECISION_BITS; // >= 1
    let sub = i & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub) << (segment - 1)
}

/// Largest value mapping to bucket `index`.
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let segment = i >> HISTOGRAM_PRECISION_BITS;
    // Width minus one first: the top bucket's upper bound is exactly
    // `u64::MAX`, so `lower + width` would overflow.
    bucket_lower(index) + ((1u64 << (segment - 1)) - 1)
}

/// A fixed-shape concurrent histogram. `record` is wait-free (atomic adds);
/// `snapshot` walks the bucket array.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Fold another histogram into this one (element-wise bucket addition).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Quantile estimate over the live buckets; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the bucket array and summary stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

/// A plain (non-atomic) copy of a histogram: what scrapes, merges-for-report
/// and the property tests operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` when empty.
    pub min: u64,
    /// `0` when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the maximum recorded value. Returns 0 for an empty
    /// histogram. Monotone in `q`, and within `2^-P` relative error of the
    /// true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge two snapshots (element-wise). Associative and commutative.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            // Wrapping, to match the atomic `fetch_add` in `record_n`.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs — the
    /// shape Prometheus exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    /// Inclusive value bounds of the bucket `value` falls into — the
    /// guarantee `record(v)` makes about where `v` is counted.
    pub fn bucket_bounds(value: u64) -> (u64, u64) {
        let i = bucket_index(value);
        (bucket_lower(i), bucket_upper(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Every bucket's lower bound is exactly the previous upper + 1.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(
                bucket_lower(i),
                bucket_upper(i - 1) + 1,
                "gap/overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn values_map_into_their_bucket_bounds() {
        for shift in 0..64 {
            for delta in [0u64, 1, 2, 3] {
                let v = (1u64 << shift).saturating_add(delta);
                let i = bucket_index(v);
                assert!(
                    bucket_lower(i) <= v && v <= bucket_upper(i),
                    "value {v} outside bucket {i} [{}, {}]",
                    bucket_lower(i),
                    bucket_upper(i)
                );
            }
        }
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUB_BUCKETS {
            assert_eq!(snap.counts[v as usize], 1);
        }
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 700, 12_345, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 700, 1 << 20] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
        assert!(h.snapshot().cumulative_buckets().is_empty());
    }

    #[test]
    fn record_duration_uses_microseconds() {
        let h = Histogram::new();
        h.record_duration(std::time::Duration::from_millis(3));
        let snap = h.snapshot();
        assert_eq!(snap.min, 3000);
        assert_eq!(snap.count, 1);
    }
}
