//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the slice of `proptest` its property tests use: the `Strategy`
//! trait with `prop_map`, `any::<T>()`, integer-range and tuple strategies,
//! `collection::vec`, `prop_oneof!`, and the `proptest!`/`prop_assert*!`
//! macros. Cases are generated from a deterministic per-test seed (override
//! with `PROPTEST_SEED`); failing cases report the case seed for replay.
//! Shrinking is not implemented — a failure reports the original case.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from the test name, or `PROPTEST_SEED` when set.
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        // FNV-1a over the test name, so every test gets a distinct stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. The minimal analog of proptest's `Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// Type-erased strategy, used by `prop_oneof!`.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning sign and magnitude.
        let m = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 10f64.powi((rng.below(17) as i32) - 8);
        if rng.next_u64() & 1 == 1 {
            m * scale
        } else {
            -m * scale
        }
    }
}

pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<T>()`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let case_seed = rng.next_u64();
                let mut case_rng = $crate::TestRng::from_seed(case_seed);
                let mut run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut case_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    panic!(
                        "property '{}' failed at case {} (PROPTEST_SEED={} replays it): {}",
                        stringify!($name), case, case_seed, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        let s = crate::collection::vec(0i64..100, 1..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(v in crate::collection::vec((0i64..10, any::<bool>()), 1..8),
                                mut x in 0i64..100) {
            x += 1;
            prop_assert!(x >= 1);
            prop_assert!(!v.is_empty());
            for (n, _) in &v {
                prop_assert!((0..10).contains(n), "n was {}", n);
            }
        }

        #[test]
        fn oneof_covers_options(choice in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(choice == 1 || choice == 2 || choice == 5 || choice == 6);
        }
    }
}
