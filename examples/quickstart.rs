//! Quickstart: the full MB2 pipeline in miniature.
//!
//! 1. Exercise the DBMS with OU-runners to produce training data.
//! 2. Train one behavior model per operating unit.
//! 3. Predict the latency of queries the models never saw and compare
//!    against measured reality.
//!
//! Run with: `cargo run --release --example quickstart`

use mb2::engine::{Database, DatabaseConfig};
use mb2::framework::runners::execution::{run_execution_runners, ExecutionRunnerConfig};
use mb2::framework::runners::RunnerConfig;
use mb2::framework::training::{train_all, TrainingConfig};
use mb2::framework::BehaviorModels;
use mb2::ml::Algorithm;

fn main() {
    // --- 1. Data generation -------------------------------------------
    println!("== MB2 quickstart ==");
    println!("[1/3] running OU-runners (execution engine sweep)...");
    let runner_cfg = ExecutionRunnerConfig {
        max_rows: 4096,
        min_rows: 64,
        measure: RunnerConfig {
            repetitions: 5,
            warmups: 2,
            ..RunnerConfig::default()
        },
        ..ExecutionRunnerConfig::default()
    };
    let repo = run_execution_runners(&runner_cfg).expect("runners");
    println!(
        "      collected {} samples across {} OUs",
        repo.total_samples(),
        repo.ous().len()
    );

    // --- 2. Model training --------------------------------------------
    println!("[2/3] training OU-models (per-OU algorithm selection)...");
    let training_cfg = TrainingConfig {
        candidates: vec![Algorithm::Linear, Algorithm::Huber, Algorithm::RandomForest],
        ..TrainingConfig::default()
    };
    let (models, report) = train_all(&repo, &training_cfg).expect("training");
    for (ou, alg, err, _) in &report.per_ou {
        println!(
            "      {ou:<18} -> {:<18} (validation rel-err {err:.3})",
            alg.name()
        );
    }
    println!(
        "      total: {:.1?} training time, {} KiB of models",
        report.total_training_time,
        report.model_size_bytes / 1024
    );
    let behavior = BehaviorModels::new(models, None);

    // --- 3. Prediction vs reality --------------------------------------
    println!("[3/3] predicting unseen queries on an unseen dataset...");
    let db = Database::new(DatabaseConfig::bench()).unwrap();
    db.execute("CREATE TABLE sensors (id INT, room INT, reading FLOAT)")
        .unwrap();
    let mut batch = Vec::new();
    for i in 0..20_000 {
        batch.push(format!("({i}, {}, {}.5)", i % 40, i % 97));
        if batch.len() == 500 {
            db.execute(&format!("INSERT INTO sensors VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    db.execute("ANALYZE sensors").unwrap();

    let queries = [
        "SELECT * FROM sensors WHERE reading > 50.0",
        "SELECT room, COUNT(*), AVG(reading) FROM sensors GROUP BY room",
        "SELECT * FROM sensors ORDER BY reading LIMIT 100",
    ];
    println!("      {:<58} {:>12} {:>12}", "query", "predicted", "actual");
    for sql in queries {
        let plan = db.prepare(sql).unwrap();
        let predicted_us = behavior.predict_query_elapsed_us(&plan, &db.knobs());
        let started = std::time::Instant::now();
        db.execute_plan(&plan, None).unwrap();
        let actual_us = started.elapsed().as_nanos() as f64 / 1000.0;
        println!("      {sql:<58} {predicted_us:>9.0} us {actual_us:>9.0} us");
    }
    println!("done. Note the 20k-row table is 5x larger than anything the");
    println!("runners swept — output-label normalization (paper §4.3) is");
    println!("what makes the extrapolation hold.");
}
