//! Operator implementations. Each phase is one OU span: begin a tracker,
//! do the work with work-accounting, finish + record.

use std::collections::HashMap;
use std::time::Instant;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult, OuKind, Value};
use mb2_sql::plan::{AggSpec, OutputSink, ScanRange, SortKey};
use mb2_sql::{AggFunc, BoundExpr, PlanNode};
use mb2_storage::SlotId;

use crate::compile::Evaluator;
use crate::context::{ExecContext, ExecutionMode};
use crate::tracker::OuTracker;

/// Span guard: tracks when a recorder is attached or hardware pacing is
/// active (pacing must stretch spans even when metrics aren't collected).
struct Span {
    tracker: Option<OuTracker>,
}

impl Span {
    fn begin(ctx: &ExecContext<'_>) -> Span {
        let active = ctx.recorder.is_some() || ctx.hw.slowdown() > 1.0;
        Span {
            tracker: active.then(OuTracker::start),
        }
    }

    fn work(&mut self, f: impl FnOnce(&mut OuTracker)) {
        if let Some(t) = self.tracker.as_mut() {
            f(t);
        }
    }

    fn end(self, ctx: &ExecContext<'_>, id: u32, ou: OuKind) {
        if let Some(t) = self.tracker {
            let metrics = t.finish(&ctx.hw);
            if let Some(r) = ctx.recorder {
                r.record(id, ou, metrics);
            }
        }
    }
}

fn compiled(ctx: &ExecContext<'_>) -> bool {
    ctx.mode == ExecutionMode::Compiled
}

/// Busy-wait for `us` microseconds (used for injected regressions — a spin
/// models a slower algorithm, paper §8.5).
fn spin_us(us: u64) {
    let until = Instant::now() + std::time::Duration::from_micros(us);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

// ----------------------------------------------------------------------
// Scans
// ----------------------------------------------------------------------

/// Sequential scan; returns rows (and their slots when `want_slots`).
pub fn seq_scan(
    table: &str,
    filter: Option<&BoundExpr>,
    ctx: &mut ExecContext<'_>,
    id: u32,
    want_slots: bool,
) -> DbResult<(Vec<Tuple>, Vec<SlotId>)> {
    let entry = ctx.catalog.get(table)?;
    let mut rows: Vec<Tuple> = Vec::new();
    let mut slots: Vec<SlotId> = Vec::new();

    let mut span = Span::begin(ctx);
    let mut bytes = 0u64;
    entry
        .table
        .scan_visible(ctx.txn.read_ts(), ctx.txn.id(), |slot, tuple| {
            bytes += tuple_size_bytes(tuple) as u64;
            rows.push(tuple.clone());
            if want_slots {
                slots.push(slot);
            }
            true
        });
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
    });
    span.end(ctx, id, OuKind::SeqScan);

    apply_filter(
        filter,
        &mut rows,
        if want_slots { Some(&mut slots) } else { None },
        ctx,
        id,
    )?;
    Ok((rows, slots))
}

/// Index scan over a prefix range; visibility is re-checked on the base
/// table (index entries may reference dead versions).
pub fn index_scan(
    table: &str,
    index_name: &str,
    range: &ScanRange,
    filter: Option<&BoundExpr>,
    ctx: &mut ExecContext<'_>,
    id: u32,
    want_slots: bool,
) -> DbResult<(Vec<Tuple>, Vec<SlotId>)> {
    let entry = ctx.catalog.get(table)?;
    let index = entry
        .index_named(index_name)
        .ok_or_else(|| DbError::Execution(format!("index '{index_name}' missing")))?;
    let mut rows: Vec<Tuple> = Vec::new();
    let mut slots: Vec<SlotId> = Vec::new();

    let mut span = Span::begin(ctx);
    let mut candidates: Vec<SlotId> = Vec::new();
    index.range_prefix(&range.lo, &range.hi, |_, &slot| {
        candidates.push(slot);
        true
    });
    let mut bytes = 0u64;
    for slot in candidates.iter() {
        if let Some(tuple) = ctx.txn.read(&entry.table, *slot) {
            bytes += tuple_size_bytes(&tuple) as u64;
            rows.push(tuple.as_ref().clone());
            if want_slots {
                slots.push(*slot);
            }
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_random_accesses(candidates.len() as u64);
        t.add_hash_probes(0);
        t.add_allocated(bytes);
    });
    span.end(ctx, id, OuKind::IdxScan);

    apply_filter(
        filter,
        &mut rows,
        if want_slots { Some(&mut slots) } else { None },
        ctx,
        id,
    )?;
    Ok((rows, slots))
}

/// Slot list paired with scan rows during DML scans.
type SlotList<'a> = Option<&'a mut Vec<SlotId>>;

/// Residual-filter pass: a separate Arithmetic/Filter OU span.
#[allow(unused_mut)]
fn apply_filter(
    filter: Option<&BoundExpr>,
    rows: &mut Vec<Tuple>,
    mut slots: SlotList<'_>,
    ctx: &ExecContext<'_>,
    id: u32,
) -> DbResult<()> {
    let Some(filter) = filter else { return Ok(()) };
    let evaluator = Evaluator::new(filter, compiled(ctx));
    let ops_per_tuple = filter.op_count() as u64;
    let mut span = Span::begin(ctx);
    let n_in = rows.len() as u64;
    let mut keep = vec![false; rows.len()];
    for (i, row) in rows.iter().enumerate() {
        keep[i] = evaluator.eval_bool(row)?;
    }
    let mut it = keep.iter();
    rows.retain(|_| *it.next().expect("keep mask"));
    if let Some(slots) = slots {
        let mut it = keep.iter();
        slots.retain(|_| *it.next().expect("keep mask"));
    }
    span.work(|t| {
        t.add_tuples(n_in);
        t.add_comparisons(n_in * ops_per_tuple);
    });
    span.end(ctx, id, OuKind::ArithmeticFilter);
    Ok(())
}

/// Standalone filter node (HAVING and other post-operator predicates).
pub fn standalone_filter(
    mut rows: Vec<Tuple>,
    predicate: &BoundExpr,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    apply_filter(Some(predicate), &mut rows, None, ctx, id)?;
    Ok(rows)
}

// ----------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------

pub fn hash_join(
    build_rows: Vec<Tuple>,
    probe_rows: Vec<Tuple>,
    build_keys: &[usize],
    probe_keys: &[usize],
    filter: Option<&BoundExpr>,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    // Build phase (Join Hash Table Build OU). The hash table pre-allocates
    // by input size, matching the paper's join-HT memory normalization rule.
    let mut span = Span::begin(ctx);
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build_rows.len());
    let mut build_bytes = 0u64;
    for (i, row) in build_rows.iter().enumerate() {
        let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
        build_bytes += tuple_size_bytes(row) as u64;
        table.entry(key).or_default().push(i);
        if ctx.jht_sleep_every > 0 && (i + 1) % ctx.jht_sleep_every == 0 {
            spin_us(1);
        }
    }
    let alloc = build_rows.len() as u64 * (32 + build_keys.len() as u64 * 16) + build_bytes;
    span.work(|t| {
        t.add_tuples(build_rows.len() as u64);
        t.add_bytes(build_bytes);
        t.add_hash_probes(build_rows.len() as u64);
        t.add_random_accesses(table.len() as u64);
        t.add_allocated(alloc);
    });
    span.end(ctx, id, OuKind::JoinHashBuild);

    // Probe phase (Join Hash Table Probe OU).
    let mut span = Span::begin(ctx);
    let mut out: Vec<Tuple> = Vec::new();
    let mut probe_bytes = 0u64;
    for row in &probe_rows {
        probe_bytes += tuple_size_bytes(row) as u64;
        let key: Vec<Value> = probe_keys.iter().map(|&k| row[k].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let mut combined = row.clone();
                combined.extend(build_rows[bi].iter().cloned());
                out.push(combined);
            }
        }
    }
    let out_bytes: u64 = out.iter().map(|r| tuple_size_bytes(r) as u64).sum();
    span.work(|t| {
        t.add_tuples(probe_rows.len() as u64);
        t.add_bytes(probe_bytes + out_bytes);
        t.add_hash_probes(probe_rows.len() as u64);
        t.add_allocated(out_bytes);
    });
    span.end(ctx, id, OuKind::JoinHashProbe);

    let mut rows = out;
    apply_filter(filter, &mut rows, None, ctx, id)?;
    Ok(rows)
}

/// Fallback cross join with filter; accounted as Arithmetic/Filter work.
pub fn nested_loop_join(
    outer_rows: Vec<Tuple>,
    inner_rows: Vec<Tuple>,
    filter: Option<&BoundExpr>,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    let evaluator = filter.map(|f| Evaluator::new(f, compiled(ctx)));
    let ops_per = filter.map_or(0, |f| f.op_count()) as u64;
    let mut span = Span::begin(ctx);
    let mut out = Vec::new();
    for o in &outer_rows {
        for i in &inner_rows {
            let mut combined = o.clone();
            combined.extend(i.iter().cloned());
            let pass = match &evaluator {
                Some(e) => e.eval_bool(&combined)?,
                None => true,
            };
            if pass {
                out.push(combined);
            }
        }
    }
    let pairs = outer_rows.len() as u64 * inner_rows.len() as u64;
    span.work(|t| {
        t.add_tuples(pairs);
        t.add_comparisons(pairs * ops_per);
    });
    span.end(ctx, id, OuKind::ArithmeticFilter);
    Ok(out)
}

// ----------------------------------------------------------------------
// Aggregation
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        all_int: bool,
        seen: bool,
    },
    Avg {
        total: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                all_int: true,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> DbResult<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) counts rows; COUNT(expr) skips NULLs.
                match v {
                    Some(val) if val.is_null() => {}
                    _ => *c += 1,
                }
            }
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if !matches!(val, Value::Int(_)) {
                            *all_int = false;
                        }
                        *total += val.as_f64()?;
                        *seen = true;
                    }
                }
            }
            AggState::Avg { total, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *total += val.as_f64()?;
                        *n += 1;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.cmp_total(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.cmp_total(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

pub fn aggregate(
    rows: Vec<Tuple>,
    group_by: &[BoundExpr],
    aggs: &[AggSpec],
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    let use_compiled = compiled(ctx);
    let group_eval: Vec<Evaluator> = group_by
        .iter()
        .map(|g| Evaluator::new(g, use_compiled))
        .collect();
    let agg_eval: Vec<Option<Evaluator>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| Evaluator::new(e, use_compiled)))
        .collect();

    // Build phase (Agg Hash Table Build OU). The agg hash table grows with
    // unique keys (memory normalized by cardinality, paper §4.3).
    let mut span = Span::begin(ctx);
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut bytes = 0u64;
    for row in &rows {
        bytes += tuple_size_bytes(row) as u64;
        let key: Vec<Value> = group_eval
            .iter()
            .map(|g| g.eval(row))
            .collect::<DbResult<_>>()?;
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (state, eval) in states.iter_mut().zip(&agg_eval) {
            let v = match eval {
                Some(e) => Some(e.eval(row)?),
                None => None,
            };
            state.update(v)?;
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        // Scalar aggregate over an empty input still yields one row.
        groups.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    let n_groups = groups.len() as u64;
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_hash_probes(rows.len() as u64);
        t.add_random_accesses(n_groups);
        t.add_allocated(n_groups * (32 + (group_by.len() + aggs.len()) as u64 * 16));
    });
    span.end(ctx, id, OuKind::AggBuild);

    // Emit phase (Agg Hash Table Probe OU).
    let mut span = Span::begin(ctx);
    let mut out: Vec<Tuple> = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut row = key;
        row.extend(states.into_iter().map(AggState::finalize));
        out.push(row);
    }
    let out_bytes: u64 = out.iter().map(|r| tuple_size_bytes(r) as u64).sum();
    span.work(|t| {
        t.add_tuples(out.len() as u64);
        t.add_bytes(out_bytes);
        t.add_allocated(out_bytes);
    });
    span.end(ctx, id, OuKind::AggProbe);
    Ok(out)
}

// ----------------------------------------------------------------------
// Sort
// ----------------------------------------------------------------------

pub fn sort(
    rows: Vec<Tuple>,
    keys: &[SortKey],
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    let use_compiled = compiled(ctx);
    let evals: Vec<Evaluator> = keys
        .iter()
        .map(|k| Evaluator::new(&k.expr, use_compiled))
        .collect();

    // Build phase (Sort Build OU): materialize sort keys and sort.
    let mut span = Span::begin(ctx);
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(rows.len());
    let mut bytes = 0u64;
    for row in rows {
        bytes += tuple_size_bytes(&row) as u64;
        let key: Vec<Value> = evals
            .iter()
            .map(|e| e.eval(&row))
            .collect::<DbResult<_>>()?;
        keyed.push((key, row));
    }
    let mut comparisons = 0u64;
    keyed.sort_by(|a, b| {
        comparisons += 1;
        for (i, k) in keys.iter().enumerate() {
            let ord = a.0[i].cmp_total(&b.0[i]);
            let ord = if k.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        // Tie-break on the full tuple so results are deterministic even
        // though upstream hash operators iterate in arbitrary order.
        for (x, y) in a.1.iter().zip(&b.1) {
            let ord = x.cmp_total(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let n = keyed.len() as u64;
    span.work(|t| {
        t.add_tuples(n);
        t.add_bytes(bytes);
        t.add_comparisons(comparisons);
        t.add_allocated(bytes + n * keys.len() as u64 * 16);
    });
    span.end(ctx, id, OuKind::SortBuild);

    // Iterate phase (Sort Iterate OU): emit in order.
    let mut span = Span::begin(ctx);
    let out: Vec<Tuple> = keyed.into_iter().map(|(_, row)| row).collect();
    span.work(|t| {
        t.add_tuples(n);
        t.add_bytes(bytes);
    });
    span.end(ctx, id, OuKind::SortIter);
    Ok(out)
}

// ----------------------------------------------------------------------
// Projection / output
// ----------------------------------------------------------------------

pub fn project(
    rows: Vec<Tuple>,
    exprs: &[BoundExpr],
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    let use_compiled = compiled(ctx);
    let evals: Vec<Evaluator> = exprs
        .iter()
        .map(|e| Evaluator::new(e, use_compiled))
        .collect();
    let ops_per: u64 = exprs.iter().map(|e| e.op_count() as u64).sum();
    let mut span = Span::begin(ctx);
    let n = rows.len() as u64;
    let mut out = Vec::with_capacity(rows.len());
    for row in &rows {
        let projected: Tuple = evals.iter().map(|e| e.eval(row)).collect::<DbResult<_>>()?;
        out.push(projected);
    }
    span.work(|t| {
        t.add_tuples(n);
        t.add_comparisons(n * ops_per.max(1));
    });
    span.end(ctx, id, OuKind::ArithmeticFilter);
    Ok(out)
}

pub fn output(
    rows: Vec<Tuple>,
    sink: OutputSink,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<Vec<Tuple>> {
    let mut span = Span::begin(ctx);
    let bytes: u64 = rows.iter().map(|r| tuple_size_bytes(r) as u64).sum();
    let out = match sink {
        OutputSink::Client => rows,
        OutputSink::Discard => Vec::new(),
    };
    span.work(|t| {
        t.add_tuples(out.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
    });
    span.end(ctx, id, OuKind::OutputResult);
    Ok(out)
}

// ----------------------------------------------------------------------
// DML
// ----------------------------------------------------------------------

pub fn insert(table: &str, rows: &[Tuple], ctx: &mut ExecContext<'_>, id: u32) -> DbResult<usize> {
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let mut span = Span::begin(ctx);
    let mut bytes = 0u64;
    for row in rows {
        bytes += tuple_size_bytes(row) as u64;
        let slot = ctx.txn.insert(&entry.table, row.clone())?;
        for index in &indexes {
            index.insert(index.key_of(row), slot);
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
        t.add_random_accesses(rows.len() as u64 * indexes.len() as u64);
    });
    span.end(ctx, id, OuKind::InsertTuple);
    Ok(rows.len())
}

pub fn update(
    table: &str,
    scan: &PlanNode,
    assignments: &[(usize, BoundExpr)],
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<usize> {
    let (rows, slots) = run_scan_with_slots(scan, ctx, id + 1)?;
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let use_compiled = compiled(ctx);
    let evals: Vec<(usize, Evaluator)> = assignments
        .iter()
        .map(|(pos, e)| (*pos, Evaluator::new(e, use_compiled)))
        .collect();

    let mut span = Span::begin(ctx);
    let mut bytes = 0u64;
    for (old, slot) in rows.iter().zip(&slots) {
        let mut new = old.clone();
        for (pos, eval) in &evals {
            new[*pos] = eval.eval(old)?;
        }
        bytes += tuple_size_bytes(&new) as u64;
        ctx.txn.update(&entry.table, *slot, new.clone())?;
        for index in &indexes {
            let old_key = index.key_of(old);
            let new_key = index.key_of(&new);
            if old_key != new_key {
                index.remove(&old_key, |v| v == slot);
                index.insert(new_key, *slot);
            }
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
        t.add_random_accesses(rows.len() as u64 * (1 + indexes.len() as u64));
    });
    span.end(ctx, id, OuKind::UpdateTuple);
    Ok(rows.len())
}

pub fn delete(table: &str, scan: &PlanNode, ctx: &mut ExecContext<'_>, id: u32) -> DbResult<usize> {
    let (rows, slots) = run_scan_with_slots(scan, ctx, id + 1)?;
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let mut span = Span::begin(ctx);
    for (old, slot) in rows.iter().zip(&slots) {
        ctx.txn.delete(&entry.table, *slot)?;
        for index in &indexes {
            index.remove(&index.key_of(old), |v| v == slot);
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_random_accesses(rows.len() as u64 * (1 + indexes.len() as u64));
    });
    span.end(ctx, id, OuKind::DeleteTuple);
    Ok(rows.len())
}

fn run_scan_with_slots(
    scan: &PlanNode,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<(Vec<Tuple>, Vec<SlotId>)> {
    match scan {
        PlanNode::SeqScan { table, filter, .. } => seq_scan(table, filter.as_ref(), ctx, id, true),
        PlanNode::IndexScan {
            table,
            index,
            range,
            filter,
            ..
        } => index_scan(table, index, range, filter.as_ref(), ctx, id, true),
        other => Err(DbError::Execution(format!(
            "DML scan must be a table scan, found {}",
            other.label()
        ))),
    }
}

// ----------------------------------------------------------------------
// Index build
// ----------------------------------------------------------------------

pub fn create_index(
    table: &str,
    index_name: &str,
    columns: &[usize],
    threads: usize,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<usize> {
    let entry = ctx.catalog.get(table)?;
    let mut span = Span::begin(ctx);
    // Snapshot the key/slot pairs visible to this transaction.
    let mut entries: Vec<(Vec<Value>, SlotId)> = Vec::new();
    let mut key_bytes = 0u64;
    entry
        .table
        .scan_visible(ctx.txn.read_ts(), ctx.txn.id(), |slot, tuple| {
            let key: Vec<Value> = columns.iter().map(|&c| tuple[c].clone()).collect();
            key_bytes += tuple_size_bytes(&key) as u64;
            entries.push((key, slot));
            true
        });
    let n = entries.len();

    // Parallel sort-merge build with hardware pacing per entry.
    let slowdown = ctx.hw.slowdown();
    let pace: Box<dyn Fn() + Sync> = if slowdown > 1.0 {
        let spin_ns = ((slowdown - 1.0) * 60.0) as u64;
        Box::new(move || {
            let until = Instant::now() + std::time::Duration::from_nanos(spin_ns);
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        })
    } else {
        Box::new(|| {})
    };
    let report = mb2_index::parallel_build_observed(
        entries,
        threads,
        pace.as_ref(),
        ctx.index_obs.as_deref(),
    );
    let index = mb2_index::Index::with_obs(index_name, columns.to_vec(), ctx.index_obs.clone());
    index.replace_tree(report.tree);
    let tree_bytes = index.approx_bytes() as u64;
    entry.add_index(std::sync::Arc::new(index))?;

    span.work(|t| {
        t.add_tuples(n as u64);
        t.add_bytes(key_bytes);
        t.add_comparisons((n as f64 * (n.max(2) as f64).log2()) as u64);
        t.add_allocated(tree_bytes);
        t.add_random_accesses(n as u64 / 4);
    });
    span.end(ctx, id, OuKind::IndexBuild);
    Ok(n)
}
