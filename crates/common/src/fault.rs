//! Deterministic fault injection for durability and chaos testing.
//!
//! A [`FaultInjector`] is a registry of *named fault points* that production
//! code consults at the moments where real systems fail: opening the log
//! file, writing a buffer, calling fsync, allocating a segment, holding the
//! commit lock. Tests arm a point with a [`FaultMode`] and the next matching
//! call reports an injected failure; the code under test then exercises its
//! real error path (retry, backoff, poisoning, read-only degradation) with
//! no actual I/O fault required.
//!
//! Besides failures, a point can be armed with a *delay* ([`arm_delay`]):
//! every consultation stalls for the configured duration and then proceeds.
//! Delays model slow devices (a 50ms fsync, a stalled allocator) rather
//! than broken ones, and compose with failure modes on the same point.
//!
//! Probabilistic modes draw from a per-point [`Prng`] seeded from the
//! injector seed and the point name, so the decision sequence *of each
//! point* is a pure function of the seed and that point's call count —
//! independent of how calls to different points interleave across threads.
//! A multi-threaded run that fails can therefore be replayed from its seed.
//!
//! The injector is cheap when unarmed: consultations take a relaxed atomic
//! load of the armed-point count and return immediately when it is zero.
//! Production configs leave the injector `None` entirely.
//!
//! [`arm_delay`]: FaultInjector::arm_delay

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::rng::Prng;

/// Well-known fault-point names consulted by the engine's subsystems.
pub mod points {
    /// Opening (creating) the log file in `LogManager::new`.
    pub const WAL_OPEN: &str = "wal.open";
    /// Writing a sealed buffer to the log file.
    pub const WAL_WRITE: &str = "wal.write";
    /// The fsync (`File::sync_all`) after a successful write.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// One-shot torn write: persist a prefix of the buffer, then "crash".
    pub const WAL_TORN_WRITE: &str = "wal.torn_write";
    /// Growing a table's segment directory on insert.
    pub const STORAGE_SEGMENT_ALLOC: &str = "storage.segment_alloc";
    /// Inside the commit critical section, before stamping versions. A
    /// delay here holds the global commit lock; a failure aborts the commit.
    pub const TXN_COMMIT: &str = "txn.commit";
    /// Start of a garbage-collection pass. A failure skips (starves) the
    /// pass; a delay stalls it.
    pub const GC_CYCLE: &str = "gc.cycle";
    /// A freshly accepted server connection, before the handshake.
    pub const SERVER_ACCEPT: &str = "server.accept";
    /// A complete frame received from a client connection.
    pub const SERVER_READ: &str = "server.read";
}

/// When an armed fault point trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Fail exactly the `n`-th call (1-based) to this point, then disarm.
    Nth(u64),
    /// Fail the `n`-th call (1-based) and every call after it.
    FromNth(u64),
    /// Fail each call independently with probability `p` (seeded per-point
    /// PRNG; deterministic regardless of cross-point thread interleaving).
    Probability(f64),
    /// Fail every call. Equivalent to `FromNth(1)`.
    Always,
}

#[derive(Debug)]
struct Armed {
    mode: FaultMode,
    calls: u64,
    fired: u64,
    /// Per-point PRNG: seeded from the injector seed and the point name so
    /// each point's draw sequence depends only on its own call count.
    rng: Prng,
}

impl Armed {
    fn trips(&mut self) -> bool {
        self.calls += 1;
        let hit = match self.mode {
            FaultMode::Nth(n) => self.calls == n,
            FaultMode::FromNth(n) => self.calls >= n,
            FaultMode::Probability(p) => self.rng.chance(p),
            FaultMode::Always => true,
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

#[derive(Debug, Default)]
struct State {
    points: HashMap<String, Armed>,
    /// Point name -> fraction of the buffer to keep. One-shot: consumed on use.
    torn: HashMap<String, f64>,
    /// Point name -> stall applied to every consultation while armed.
    delays: HashMap<String, Duration>,
    /// Final `(calls, fired)` of points that were disarmed (explicitly or by
    /// `Nth` auto-disarm), so tests can still ask whether a one-shot fault
    /// fired. Cleared when the point is re-armed.
    retired: HashMap<String, (u64, u64)>,
    /// When `Some`, every failure-mode decision is appended per point (for
    /// determinism tests that compare two replayed runs).
    decisions: Option<HashMap<String, Vec<bool>>>,
}

impl State {
    fn armed_total(&self) -> usize {
        self.points.len() + self.torn.len() + self.delays.len()
    }
}

/// Registry of named fault points. Shared as `Arc<FaultInjector>` between the
/// test and the component under test (including its background threads).
pub struct FaultInjector {
    seed: u64,
    state: Mutex<State>,
    /// Number of armed entries (failure modes + torn writes + delays),
    /// maintained under the state lock. A relaxed load of zero lets
    /// unarmed probes return without touching the mutex.
    armed: AtomicUsize,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// FNV-1a, used to derive a per-point PRNG stream from the injector seed.
fn point_hash(point: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in point.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultInjector {
    /// An injector whose probabilistic decisions derive from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            state: Mutex::new(State::default()),
            armed: AtomicUsize::new(0),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arm `point` with `mode`, replacing any previous arming (and resetting
    /// its call counter and PRNG stream).
    pub fn arm(&self, point: &str, mode: FaultMode) {
        let mut st = self.lock_state();
        st.retired.remove(point);
        st.points.insert(
            point.to_string(),
            Armed {
                mode,
                calls: 0,
                fired: 0,
                rng: Prng::new(self.seed ^ point_hash(point)),
            },
        );
        self.publish_armed(&st);
    }

    /// Arm a one-shot torn write at `point`: the next [`torn_write`]
    /// consultation reports that only `keep_fraction` of the buffer (clamped
    /// to `[0, 1]`, rounded down, always short of the full length) reached
    /// disk before the simulated crash.
    ///
    /// [`torn_write`]: FaultInjector::torn_write
    pub fn arm_torn_write(&self, point: &str, keep_fraction: f64) {
        let mut st = self.lock_state();
        st.torn
            .insert(point.to_string(), keep_fraction.clamp(0.0, 1.0));
        self.publish_armed(&st);
    }

    /// Arm a stall at `point`: every consultation (via [`check`]) sleeps for
    /// `delay` before evaluating any failure mode. Stays armed until
    /// [`disarm`]. The sleep happens without holding injector locks, so
    /// other points stay responsive while one point stalls.
    ///
    /// [`check`]: FaultInjector::check
    /// [`disarm`]: FaultInjector::disarm
    pub fn arm_delay(&self, point: &str, delay: Duration) {
        let mut st = self.lock_state();
        st.delays.insert(point.to_string(), delay);
        self.publish_armed(&st);
    }

    /// Remove any arming (failure mode, torn-write, and delay) from `point`.
    /// The point's call/fired counters stay readable until it is re-armed.
    pub fn disarm(&self, point: &str) {
        let mut st = self.lock_state();
        if let Some(a) = st.points.remove(point) {
            st.retired.insert(point.to_string(), (a.calls, a.fired));
        }
        st.torn.remove(point);
        st.delays.remove(point);
        self.publish_armed(&st);
    }

    /// Consult `point`. Applies any armed delay (stalling the calling
    /// thread), then returns `Some(description)` when the armed fault mode
    /// trips — the caller should fail with that description — and `None`
    /// when the call should proceed normally. Equivalent to [`stall`]
    /// followed by [`trip`]; call those separately when the delay and the
    /// failure belong at different program points (e.g. a stall inside a
    /// critical section whose failure must land before a durability point).
    ///
    /// When nothing is armed anywhere this is a single relaxed atomic load.
    ///
    /// [`stall`]: FaultInjector::stall
    /// [`trip`]: FaultInjector::trip
    pub fn check(&self, point: &str) -> Option<String> {
        self.stall(point);
        self.trip(point)
    }

    /// Apply any armed delay at `point` (sleeping the calling thread without
    /// holding injector locks). Does not evaluate failure modes and does not
    /// count as a consultation.
    pub fn stall(&self, point: &str) {
        if self.armed.load(Ordering::Relaxed) == 0 {
            return;
        }
        let delay = {
            let st = self.lock_state();
            st.delays.get(point).copied()
        };
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
    }

    /// Evaluate only the failure mode armed at `point` (no delay). Returns
    /// `Some(description)` when it trips.
    pub fn trip(&self, point: &str) -> Option<String> {
        if self.armed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut st = self.lock_state();
        let armed = st.points.get_mut(point)?;
        let tripped = armed.trips();
        let call = armed.calls;
        if let Some(decisions) = st.decisions.as_mut() {
            decisions
                .entry(point.to_string())
                .or_default()
                .push(tripped);
        }
        if tripped {
            if matches!(
                st.points.get(point).map(|a| a.mode),
                Some(FaultMode::Nth(_))
            ) {
                if let Some(a) = st.points.remove(point) {
                    st.retired.insert(point.to_string(), (a.calls, a.fired));
                }
                self.publish_armed(&st);
            }
            Some(format!("injected fault at '{point}' (call #{call})"))
        } else {
            None
        }
    }

    /// Alias for [`check`], kept for the original WAL-era name.
    ///
    /// [`check`]: FaultInjector::check
    pub fn should_fail(&self, point: &str) -> Option<String> {
        self.check(point)
    }

    /// Consult a one-shot torn-write arming at `point` for a buffer of
    /// `total` bytes. Returns `Some(keep)` — the number of bytes that should
    /// reach disk before the simulated crash, strictly less than `total` —
    /// and consumes the arming. Returns `None` when not armed or `total` is 0.
    pub fn torn_write(&self, point: &str, total: usize) -> Option<usize> {
        if total == 0 || self.armed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut st = self.lock_state();
        let fraction = st.torn.remove(point)?;
        self.publish_armed(&st);
        let keep = ((total as f64 * fraction) as usize).min(total - 1);
        Some(keep)
    }

    /// How many times `point` has been consulted since it was (re-)armed.
    /// Survives disarming (until re-armed).
    pub fn calls(&self, point: &str) -> u64 {
        let st = self.lock_state();
        st.points
            .get(point)
            .map(|a| a.calls)
            .or_else(|| st.retired.get(point).map(|&(c, _)| c))
            .unwrap_or(0)
    }

    /// How many times `point` has tripped since it was (re-)armed. Survives
    /// disarming (until re-armed), so a one-shot `Nth` fault remains
    /// observable after it auto-disarms.
    pub fn fired(&self, point: &str) -> u64 {
        let st = self.lock_state();
        st.points
            .get(point)
            .map(|a| a.fired)
            .or_else(|| st.retired.get(point).map(|&(_, f)| f))
            .unwrap_or(0)
    }

    /// Start (or restart) recording the per-point trip/pass decision
    /// sequence of every armed-point consultation, for determinism tests.
    pub fn record_decisions(&self) {
        self.lock_state().decisions = Some(HashMap::new());
    }

    /// The recorded decision sequence for `point` (empty when recording was
    /// never enabled or the point was never consulted while armed).
    pub fn decisions(&self, point: &str) -> Vec<bool> {
        self.lock_state()
            .decisions
            .as_ref()
            .and_then(|d| d.get(point))
            .cloned()
            .unwrap_or_default()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Refresh the armed-count fast path after a state mutation. Called with
    /// the state lock held so the count and the map contents stay in sync.
    fn publish_armed(&self, st: &State) {
        self.armed.store(st.armed_total(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unarmed_points_never_fail() {
        let inj = FaultInjector::new(7);
        for _ in 0..100 {
            assert!(inj.should_fail(points::WAL_WRITE).is_none());
        }
        assert_eq!(inj.calls(points::WAL_WRITE), 0);
    }

    #[test]
    fn nth_fires_once_then_disarms() {
        let inj = FaultInjector::new(7);
        inj.arm(points::WAL_FSYNC, FaultMode::Nth(3));
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
        let msg = inj
            .should_fail(points::WAL_FSYNC)
            .expect("third call trips");
        assert!(msg.contains("wal.fsync"), "{msg}");
        // Disarmed after firing: subsequent calls pass.
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
    }

    #[test]
    fn from_nth_fails_persistently() {
        let inj = FaultInjector::new(7);
        inj.arm(points::WAL_WRITE, FaultMode::FromNth(2));
        assert!(inj.should_fail(points::WAL_WRITE).is_none());
        for _ in 0..5 {
            assert!(inj.should_fail(points::WAL_WRITE).is_some());
        }
        assert_eq!(inj.fired(points::WAL_WRITE), 5);
        inj.disarm(points::WAL_WRITE);
        assert!(inj.should_fail(points::WAL_WRITE).is_none());
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed| {
            let inj = FaultInjector::new(seed);
            inj.arm(points::WAL_WRITE, FaultMode::Probability(0.5));
            (0..64)
                .map(|_| inj.should_fail(points::WAL_WRITE).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // With p=0.5 over 64 trials, both outcomes must appear.
        let outcomes = run(42);
        assert!(outcomes.iter().any(|&b| b) && outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn probability_streams_are_independent_per_point() {
        // Interleaving calls to a second point must not perturb the first
        // point's decision sequence (each point draws from its own PRNG).
        let solo = {
            let inj = FaultInjector::new(42);
            inj.arm(points::WAL_WRITE, FaultMode::Probability(0.5));
            (0..64)
                .map(|_| inj.should_fail(points::WAL_WRITE).is_some())
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let inj = FaultInjector::new(42);
            inj.arm(points::WAL_WRITE, FaultMode::Probability(0.5));
            inj.arm(points::WAL_FSYNC, FaultMode::Probability(0.5));
            (0..64)
                .map(|_| {
                    let _ = inj.should_fail(points::WAL_FSYNC);
                    inj.should_fail(points::WAL_WRITE).is_some()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn torn_write_is_one_shot_and_partial() {
        let inj = FaultInjector::new(7);
        inj.arm_torn_write(points::WAL_TORN_WRITE, 0.5);
        let keep = inj.torn_write(points::WAL_TORN_WRITE, 100).expect("armed");
        assert!(keep < 100, "torn write must be partial, kept {keep}");
        assert_eq!(keep, 50);
        assert!(
            inj.torn_write(points::WAL_TORN_WRITE, 100).is_none(),
            "one-shot"
        );
        // keep_fraction 1.0 still drops at least one byte.
        inj.arm_torn_write(points::WAL_TORN_WRITE, 1.0);
        assert_eq!(inj.torn_write(points::WAL_TORN_WRITE, 10), Some(9));
    }

    #[test]
    fn delay_stalls_then_proceeds() {
        let inj = FaultInjector::new(7);
        inj.arm_delay(points::GC_CYCLE, Duration::from_millis(30));
        let t0 = Instant::now();
        assert!(
            inj.check(points::GC_CYCLE).is_none(),
            "delay is not a failure"
        );
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "stall not applied: {:?}",
            t0.elapsed()
        );
        inj.disarm(points::GC_CYCLE);
        let t0 = Instant::now();
        assert!(inj.check(points::GC_CYCLE).is_none());
        assert!(t0.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn delay_composes_with_failure_mode() {
        let inj = FaultInjector::new(7);
        inj.arm_delay(points::WAL_FSYNC, Duration::from_millis(5));
        inj.arm(points::WAL_FSYNC, FaultMode::Nth(2));
        assert!(inj.check(points::WAL_FSYNC).is_none());
        assert!(inj.check(points::WAL_FSYNC).is_some());
        // Nth auto-disarmed the failure mode; the delay stays armed.
        assert!(inj.check(points::WAL_FSYNC).is_none());
    }

    #[test]
    fn armed_count_tracks_arm_and_disarm() {
        let inj = FaultInjector::new(7);
        assert_eq!(inj.armed.load(Ordering::Relaxed), 0);
        inj.arm(points::WAL_WRITE, FaultMode::Nth(1));
        inj.arm_torn_write(points::WAL_TORN_WRITE, 0.5);
        inj.arm_delay(points::GC_CYCLE, Duration::from_millis(1));
        assert_eq!(inj.armed.load(Ordering::Relaxed), 3);
        // Nth auto-disarm drops the count.
        assert!(inj.should_fail(points::WAL_WRITE).is_some());
        assert_eq!(inj.armed.load(Ordering::Relaxed), 2);
        // Torn-write consumption drops the count.
        assert!(inj.torn_write(points::WAL_TORN_WRITE, 10).is_some());
        assert_eq!(inj.armed.load(Ordering::Relaxed), 1);
        inj.disarm(points::GC_CYCLE);
        assert_eq!(inj.armed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn decision_recording_captures_sequence() {
        let inj = FaultInjector::new(9);
        inj.record_decisions();
        inj.arm(points::WAL_WRITE, FaultMode::Probability(0.5));
        let live: Vec<bool> = (0..32)
            .map(|_| inj.should_fail(points::WAL_WRITE).is_some())
            .collect();
        assert_eq!(inj.decisions(points::WAL_WRITE), live);
        assert!(inj.decisions(points::WAL_FSYNC).is_empty());
    }
}
