//! SmallBank \[10\]: three tables, five transactions modeling customers
//! interacting with a bank branch.

use mb2_common::{DbResult, Prng};
use mb2_engine::Database;

use crate::{insert_batch, Workload};

/// SmallBank configuration.
#[derive(Debug, Clone)]
pub struct SmallBank {
    pub accounts: usize,
    /// Fraction of accesses hitting a small hotspot (standard skew knob).
    pub hotspot_fraction: f64,
    pub hotspot_size: usize,
}

impl Default for SmallBank {
    fn default() -> Self {
        SmallBank {
            accounts: 10_000,
            hotspot_fraction: 0.25,
            hotspot_size: 100,
        }
    }
}

impl SmallBank {
    pub fn small() -> SmallBank {
        SmallBank {
            accounts: 1000,
            ..SmallBank::default()
        }
    }

    /// Pick an account inside `[lo, hi)`, with the hotspot at the start of
    /// the range.
    fn pick_account_in(&self, rng: &mut Prng, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi && hi <= self.accounts);
        let span = hi - lo;
        if rng.chance(self.hotspot_fraction) {
            lo + rng.range_usize(0, self.hotspot_size.min(span))
        } else {
            lo + rng.range_usize(0, span)
        }
    }

    /// Sample a transaction whose account accesses all fall inside
    /// `[lo, hi)`. Concurrent histories from workers with disjoint ranges
    /// commute: every account is only ever touched by one worker, so
    /// replaying each worker's committed transactions in its own order —
    /// in any cross-worker order — reproduces the concurrent final state.
    /// The chaos harness's replay oracle is built on this.
    pub fn sample_transaction_in(
        &self,
        template: &str,
        rng: &mut Prng,
        lo: usize,
        hi: usize,
    ) -> Vec<String> {
        let a = self.pick_account_in(rng, lo, hi);
        let b = self.pick_account_in(rng, lo, hi);
        let amount = 1 + rng.range_usize(0, 50);
        self.template_statements(template, a, b, amount)
    }

    fn template_statements(
        &self,
        template: &str,
        a: usize,
        b: usize,
        amount: usize,
    ) -> Vec<String> {
        match template {
            "balance" => vec![
                format!("SELECT bal FROM sb_savings WHERE custid = {a}"),
                format!("SELECT bal FROM sb_checking WHERE custid = {a}"),
            ],
            "deposit_checking" => vec![format!(
                "UPDATE sb_checking SET bal = bal + {amount}.0 WHERE custid = {a}"
            )],
            "transact_savings" => vec![format!(
                "UPDATE sb_savings SET bal = bal - {amount}.0 WHERE custid = {a}"
            )],
            // Simplified balance-neutral amalgamate: reads both balances,
            // then moves a fixed amount from a's savings to b's checking
            // (the read-dependent full-drain variant needs scalar
            // subqueries, which the SQL subset omits).
            "amalgamate" => vec![
                format!("SELECT bal FROM sb_savings WHERE custid = {a}"),
                format!("SELECT bal FROM sb_checking WHERE custid = {a}"),
                format!("UPDATE sb_savings SET bal = bal - {amount}.0 WHERE custid = {a}"),
                format!("UPDATE sb_checking SET bal = bal + {amount}.0 WHERE custid = {b}"),
            ],
            "write_check" => vec![
                format!("SELECT bal FROM sb_checking WHERE custid = {a}"),
                format!("UPDATE sb_checking SET bal = bal - {amount}.0 WHERE custid = {a}"),
            ],
            other => panic!("unknown smallbank template '{other}'"),
        }
    }
}

impl Workload for SmallBank {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        db.execute("CREATE TABLE sb_accounts (custid INT, name VARCHAR(24))")?;
        db.execute("CREATE TABLE sb_savings (custid INT, bal FLOAT)")?;
        db.execute("CREATE TABLE sb_checking (custid INT, bal FLOAT)")?;
        insert_batch(db, "sb_accounts", self.accounts, |i| {
            format!("({i}, 'cust_{i}')")
        })?;
        insert_batch(db, "sb_savings", self.accounts, |i| {
            format!("({i}, {}.0)", 1000 + i % 500)
        })?;
        insert_batch(db, "sb_checking", self.accounts, |i| {
            format!("({i}, {}.0)", 500 + i % 300)
        })?;
        db.execute("CREATE INDEX sb_accounts_pk ON sb_accounts (custid)")?;
        db.execute("CREATE INDEX sb_savings_pk ON sb_savings (custid)")?;
        db.execute("CREATE INDEX sb_checking_pk ON sb_checking (custid)")?;
        db.analyze_all();
        Ok(())
    }

    fn template_names(&self) -> Vec<&'static str> {
        vec![
            "balance",
            "deposit_checking",
            "transact_savings",
            "amalgamate",
            "write_check",
        ]
    }

    fn sample_transaction(&self, template: &str, rng: &mut Prng) -> Vec<String> {
        self.sample_transaction_in(template, rng, 0, self.accounts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_runs_all_templates() {
        let sb = SmallBank {
            accounts: 200,
            ..SmallBank::default()
        };
        let db = Database::open();
        sb.load(&db).unwrap();
        let mut rng = Prng::new(1);
        for template in sb.template_names() {
            let stmts = sb.sample_transaction(template, &mut rng);
            crate::execute_transaction(&db, &stmts).unwrap();
        }
        // Indexes make point lookups index scans.
        let plan = db
            .prepare("SELECT bal FROM sb_checking WHERE custid = 5")
            .unwrap();
        assert!(plan.explain().contains("IndexScan"));
    }

    #[test]
    fn run_one_picks_templates() {
        let sb = SmallBank {
            accounts: 50,
            ..SmallBank::default()
        };
        let db = Database::open();
        sb.load(&db).unwrap();
        let mut rng = Prng::new(2);
        for _ in 0..20 {
            sb.run_one(&db, &mut rng).unwrap();
        }
    }

    #[test]
    fn hotspot_skews_access() {
        let sb = SmallBank {
            accounts: 10_000,
            hotspot_fraction: 0.5,
            hotspot_size: 10,
        };
        let mut rng = Prng::new(3);
        let hot = (0..2000)
            .filter(|_| sb.pick_account_in(&mut rng, 0, sb.accounts) < 10)
            .count();
        assert!(hot > 800, "hotspot fraction not applied: {hot}");
    }
}
