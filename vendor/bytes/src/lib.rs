//! Offline drop-in subset of the `bytes` API.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the slice of `bytes` it uses: `Bytes` (a cheaply-cloneable view
//! into shared immutable storage), `BytesMut` (a growable buffer), and the
//! `Buf`/`BufMut` read/write-cursor traits with little-endian accessors.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte view backed by shared storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view; `range` is relative to the current view.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to out of bounds: {n} > {}",
            self.len()
        );
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer with write-cursor semantics.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shorten the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable, cheaply-cloneable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.data)
    }
}

/// Read-cursor over a byte source. Little-endian accessors consume bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: buffer underflow"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write-cursor over a growable byte sink. Little-endian writers append.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_i64_le(-5);
        out.put_f64_le(2.5);
        out.put_slice(b"abc");
        let mut b = out.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(b.as_ref(), b"abc");
    }

    #[test]
    fn split_and_slice_views() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b.slice(1..3).as_ref(), &[4, 5]);
        assert_eq!(b[0], 3);
    }

    #[test]
    fn index_write_through_deref() {
        let mut out = BytesMut::new();
        out.put_u32_le(0);
        out[0..4].copy_from_slice(&9u32.to_le_bytes());
        let mut b = out.freeze();
        assert_eq!(b.get_u32_le(), 9);
    }
}
