//! Columnar sealed-block scan throughput; see
//! `mb2_bench::experiments::columnar_scan`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::columnar_scan::run(scale);
    mb2_bench::report::emit("columnar_scan", &report);
}
