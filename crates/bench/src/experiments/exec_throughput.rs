//! Batch-pipeline throughput — rows/sec of the vectorized executor across
//! batch sizes.
//!
//! Measures four canonical read pipelines (sequential scan, scan with a
//! selective pushed filter, hash join, hash aggregation) at batch sizes
//! 1, 64, and 1024. Batch size 1 degenerates to tuple-at-a-time pulls,
//! so the 1024-vs-1 ratio isolates what batching buys: amortized virtual
//! dispatch, fewer span transitions, and bulk row movement. Results stream
//! through the batch API (no client-side materialization) so the numbers
//! reflect executor throughput, not result-vector growth.
//!
//! Acceptance gate for this reproduction: sequential scan with a ≤10%
//! selectivity filter must run at least 2x faster (input rows/sec) at
//! batch 1024 than at batch 1.
//!
//! Emits `results/exec_throughput.txt` and machine-readable
//! `results/BENCH_exec.json`.

use std::fmt::Write as _;
use std::time::Instant;

use mb2_engine::Database;

use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Required speedup (batch 1024 vs 1) on the selective-filter scan.
pub const FILTER_SPEEDUP_GATE: f64 = 2.0;

/// Speedup gate for the hash join (batch 1024 vs 1). With the zero-alloc
/// probe (key comparison against the build table borrows the probe row
/// instead of materializing a key vector), batching is a real win:
/// measured ~1.3x at quick scale and ~4.4x at standard on a 4-core host,
/// so the gate demands a strict improvement with headroom for slow CI.
pub const JOIN_SPEEDUP_GATE: f64 = 1.1;

/// Regression gate for the hash aggregation (batch 1024 vs 1): batched
/// group-build must keep a measurable edge over tuple-at-a-time.
pub const AGG_SPEEDUP_GATE: f64 = 1.2;

const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

struct Case {
    name: &'static str,
    sql: &'static str,
    /// Input rows the pipeline processes per execution (the throughput
    /// denominator): scan cardinality, or probe-side cardinality for joins.
    input_rows: usize,
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Batch execution throughput — rows/sec by batch size\n\n");

    let db = Database::open();
    db.execute("CREATE TABLE big (a INT, b INT, c FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE dim (id INT, name VARCHAR(16))")
        .unwrap();
    let rows = scale.pick(4_000, 40_000);
    for i in 0..rows {
        // b uniform in 0..100 → `b < 10` is 10% selective.
        db.execute(&format!(
            "INSERT INTO big VALUES ({i}, {}, {})",
            (i * 31 + 7) % 100,
            i as f64 / 3.0
        ))
        .unwrap();
    }
    for i in 0..100 {
        db.execute(&format!("INSERT INTO dim VALUES ({i}, 'd{i}')"))
            .unwrap();
    }
    db.execute("ANALYZE big").unwrap();
    db.execute("ANALYZE dim").unwrap();

    let cases = [
        Case {
            name: "seq-scan",
            sql: "SELECT * FROM big",
            input_rows: rows,
        },
        Case {
            name: "scan+filter (10%)",
            sql: "SELECT * FROM big WHERE b < 10",
            input_rows: rows,
        },
        Case {
            name: "hash-join",
            sql: "SELECT big.a, dim.name FROM big, dim WHERE big.b = dim.id",
            input_rows: rows,
        },
        Case {
            name: "hash-agg",
            sql: "SELECT b, COUNT(*), SUM(a) FROM big GROUP BY b",
            input_rows: rows,
        },
    ];
    let reps = scale.pick(3, 5);

    // rates[case][batch] = median input rows/sec.
    let mut rates = vec![[0f64; BATCH_SIZES.len()]; cases.len()];
    for (ci, case) in cases.iter().enumerate() {
        let plan = db.prepare(case.sql).unwrap();
        for (bi, &batch) in BATCH_SIZES.iter().enumerate() {
            db.set_batch_size(batch);
            let mut times = Vec::with_capacity(reps);
            // One warm-up pass, then timed repetitions; the median damps
            // GC/allocator noise.
            for rep in 0..=reps {
                let mut streamed = 0usize;
                let mut txn = db.begin();
                let t0 = Instant::now();
                db.execute_plan_streaming_in(&plan, &mut txn, None, &mut |b| {
                    streamed += b.len();
                    Ok(())
                })
                .unwrap();
                let elapsed = t0.elapsed();
                txn.commit().unwrap();
                assert!(streamed > 0, "{} produced no rows", case.name);
                if rep > 0 {
                    times.push(elapsed);
                }
            }
            times.sort();
            let median = times[times.len() / 2];
            rates[ci][bi] = case.input_rows as f64 / median.as_secs_f64();
        }
    }
    db.set_batch_size(mb2_engine::exec::DEFAULT_BATCH_SIZE);

    let mut table = Table::new(
        format!("input rows/sec over {rows} rows (median of {reps})"),
        &["pipeline", "batch=1", "batch=64", "batch=1024", "1024/1"],
    );
    for (ci, case) in cases.iter().enumerate() {
        let speedup = rates[ci][2] / rates[ci][0];
        table.row(&[
            case.name.to_string(),
            fmt(rates[ci][0]),
            fmt(rates[ci][1]),
            fmt(rates[ci][2]),
            format!("{speedup:.2}x"),
        ]);
    }
    out.push_str(&table.render());

    let filter_speedup = rates[1][2] / rates[1][0];
    let join_speedup = rates[2][2] / rates[2][0];
    let agg_speedup = rates[3][2] / rates[3][0];
    let filter_pass = filter_speedup >= FILTER_SPEEDUP_GATE;
    let join_pass = join_speedup >= JOIN_SPEEDUP_GATE;
    let agg_pass = agg_speedup >= AGG_SPEEDUP_GATE;
    let pass = filter_pass && join_pass && agg_pass;
    let _ = writeln!(
        out,
        "\nscan+filter speedup at batch 1024 vs 1: {filter_speedup:.2}x \
         (gate {FILTER_SPEEDUP_GATE:.1}x) — {}",
        if filter_pass { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "hash-join speedup at batch 1024 vs 1: {join_speedup:.2}x \
         (gate {JOIN_SPEEDUP_GATE:.1}x) — {}",
        if join_pass { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "hash-agg speedup at batch 1024 vs 1: {agg_speedup:.2}x \
         (gate {AGG_SPEEDUP_GATE:.1}x) — {}",
        if agg_pass { "PASS" } else { "FAIL" }
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"exec_throughput\",\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"filter_speedup_1024_vs_1\": {filter_speedup:.4},");
    let _ = writeln!(json, "  \"join_speedup_1024_vs_1\": {join_speedup:.4},");
    let _ = writeln!(json, "  \"agg_speedup_1024_vs_1\": {agg_speedup:.4},");
    let _ = writeln!(json, "  \"gate\": {FILTER_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"join_gate\": {JOIN_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"agg_gate\": {AGG_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"gate_pass\": {pass},");
    json.push_str("  \"results\": [\n");
    for (ci, case) in cases.iter().enumerate() {
        for (bi, &batch) in BATCH_SIZES.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"pipeline\": \"{}\", \"batch_size\": {batch}, \
                 \"rows_per_sec\": {:.1}}}",
                case.name, rates[ci][bi]
            );
            let last = ci + 1 == cases.len() && bi + 1 == BATCH_SIZES.len();
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("BENCH_exec.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\njson: {}", path.display());
    }

    out
}
