//! Dense linear algebra kernels used by the closed-form regressors.

use mb2_common::{DbError, DbResult};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            debug_assert_eq!(row.len(), c);
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self^T * self` — the Gram matrix used by normal equations.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let vi = row[i];
                if vi == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * self.cols..(i + 1) * self.cols];
                for (j, &vj) in row.iter().enumerate() {
                    out_row[j] += vi * vj;
                }
            }
        }
        out
    }

    /// `self^T * v` for a column vector `v` of length `rows`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &scale) in v.iter().enumerate() {
            if scale == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += scale * x;
            }
        }
        out
    }

    /// `self * v` for a vector `v` of length `cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }
}

#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve the symmetric positive-definite system `A x = b` via Cholesky
/// decomposition. Adds no regularization itself — callers pass a ridged `A`.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> DbResult<Vec<f64>> {
    let n = a.rows;
    if a.cols != n || b.len() != n {
        return Err(DbError::Model("solve_spd: dimension mismatch".into()));
    }
    // Cholesky: A = L L^T, lower triangle stored in `l`.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(DbError::Model(format!(
                        "solve_spd: matrix not positive definite at pivot {i} (value {sum})"
                    )));
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: L^T x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Solve ridge regression `(X^T X + lambda I) w = X^T y` for one target.
pub fn ridge_solve(x: &Matrix, y: &[f64], lambda: f64) -> DbResult<Vec<f64>> {
    let mut gram = x.gram();
    for i in 0..gram.rows {
        let v = gram.get(i, i) + lambda;
        gram.set(i, i, v);
    }
    let xty = x.t_matvec(y);
    solve_spd(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let g = m.gram();
        assert_eq!(g.get(0, 0), 10.0);
        assert_eq!(g.get(0, 1), 14.0);
        assert_eq!(g.get(1, 1), 20.0);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // A = [[4,1],[1,3]], x = [1,2], b = A x = [6,7].
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = solve_spd(&a, &[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert!(solve_spd(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn ridge_recovers_line() {
        // y = 2a + 3b, plenty of samples, tiny ridge.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 3.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_solve(&x, &y, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.t_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }
}
