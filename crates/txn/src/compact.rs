//! Background columnar compaction — the **Compaction** batch OU.
//!
//! Each invocation walks every registered table one storage shard at a
//! time (with a fresh watermark per shard pass, like GC) and asks the
//! table to seal shard units whose version chains are all frozen below the
//! watermark into immutable columnar blocks — and to re-seal units that a
//! post-seal writer dirtied. Sealing evicts the absorbed chains, so the
//! row path shrinks to hot data while scans pick up the SIMD-friendly
//! block path for everything cold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mb2_obs::{Counter, Histogram, MetricsRegistry};
use mb2_storage::{CompactReport, Table};

use crate::manager::TxnManager;

/// Result of one compaction invocation across all registered tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionReport {
    pub units_sealed: usize,
    pub tuples_sealed: usize,
    pub versions_evicted: usize,
    pub elapsed: Duration,
}

/// The columnar compactor. Runs on demand (`run_once`) or on a background
/// thread with a configurable interval (a behavior knob), mirroring the
/// garbage collector's lifecycle so the engine can register it as another
/// background task.
pub struct Compactor {
    txn_mgr: Arc<TxnManager>,
    tables: Mutex<Vec<Arc<Table>>>,
    /// Units sealed over the compactor's lifetime
    /// (`mb2_block_units_sealed_total`).
    pub total_sealed: Arc<Counter>,
    /// Chain versions evicted into blocks
    /// (`mb2_block_versions_evicted_total`).
    pub total_evicted: Arc<Counter>,
    /// Compaction passes run (`mb2_block_compactions_total`).
    pub invocations: Arc<Counter>,
    /// Duration of one compaction pass in microseconds
    /// (`mb2_block_pause_us`).
    pub pause_us: Arc<Histogram>,
    /// Registry the per-shard block gauges (`mb2_block_*{table,shard}`)
    /// publish into after each pass.
    registry: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
    /// Interruptible-sleep channel for the background thread (see
    /// `GarbageCollector::wakeup`).
    wakeup: Arc<(StdMutex<bool>, Condvar)>,
    /// Inter-pass interval in microseconds, re-read by the worker before
    /// each wait so [`Compactor::set_interval`] (the compaction-cadence
    /// behavior knob) takes effect on a running thread.
    interval_us: Arc<AtomicU64>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Compactor {
    pub fn new(txn_mgr: Arc<TxnManager>) -> Arc<Compactor> {
        Compactor::with_metrics(txn_mgr, &MetricsRegistry::shared())
    }

    /// Like [`Compactor::new`], but publishing counters and the pause
    /// histogram into the given registry instead of a private one.
    pub fn with_metrics(
        txn_mgr: Arc<TxnManager>,
        registry: &Arc<MetricsRegistry>,
    ) -> Arc<Compactor> {
        Arc::new(Compactor {
            txn_mgr,
            tables: Mutex::new(Vec::new()),
            total_sealed: registry.counter(
                "mb2_block_units_sealed_total",
                "Shard units sealed into columnar blocks.",
            ),
            total_evicted: registry.counter(
                "mb2_block_versions_evicted_total",
                "MVCC chain versions evicted into columnar blocks.",
            ),
            invocations: registry.counter("mb2_block_compactions_total", "Compaction passes run."),
            pause_us: registry.histogram(
                "mb2_block_pause_us",
                "Duration of one compaction pass in microseconds.",
            ),
            registry: registry.clone(),
            stop: Arc::new(AtomicBool::new(false)),
            wakeup: Arc::new((StdMutex::new(false), Condvar::new())),
            interval_us: Arc::new(AtomicU64::new(0)),
            worker: Mutex::new(None),
        })
    }

    /// Register a table for compaction.
    pub fn register(&self, table: Arc<Table>) {
        self.tables.lock().push(table);
    }

    /// Run one compaction pass up to the current watermark.
    pub fn run_once(&self) -> CompactionReport {
        let started = Instant::now();
        let tables: Vec<Arc<Table>> = self.tables.lock().clone();
        let mut total = CompactReport::default();
        for table in tables {
            // Per-shard passes with a fresh watermark each, like GC: a
            // snapshot retiring while one shard seals already unfreezes
            // more chains for the next shard in the same invocation.
            for shard in 0..table.shard_count() {
                let watermark = self.txn_mgr.watermark();
                total.absorb(table.compact_shard(shard, watermark));
            }
            self.publish_block_metrics(&table);
        }
        self.total_sealed.add(total.units_sealed as u64);
        self.total_evicted.add(total.versions_evicted as u64);
        self.invocations.inc();
        let elapsed = started.elapsed();
        self.pause_us.record_duration(elapsed);
        CompactionReport {
            units_sealed: total.units_sealed,
            tuples_sealed: total.tuples_sealed,
            versions_evicted: total.versions_evicted,
            elapsed,
        }
    }

    /// Refresh the per-shard block gauges for one table. `*_with` handles
    /// are register-or-fetch; cumulative stats reconcile against the
    /// published counter so they stay true counters across passes.
    fn publish_block_metrics(&self, table: &Table) {
        for s in table.block_stats() {
            let shard = s.shard.to_string();
            let labels = [("table", table.name.as_str()), ("shard", shard.as_str())];
            self.registry
                .gauge_with(
                    "mb2_block_count",
                    &labels,
                    "Sealed columnar blocks per storage shard.",
                )
                .set(s.blocks as i64);
            self.registry
                .gauge_with(
                    "mb2_block_dirty",
                    &labels,
                    "Sealed blocks dirtied by post-seal writers per storage shard.",
                )
                .set(s.dirty_blocks as i64);
            self.registry
                .gauge_with(
                    "mb2_block_tuples",
                    &labels,
                    "Live rows served from sealed columnar blocks per storage shard.",
                )
                .set(s.sealed_tuples as i64);
            for (name, help, value) in [
                (
                    "mb2_block_evicted_total",
                    "Chain versions evicted by sealing per storage shard.",
                    s.versions_evicted,
                ),
                (
                    "mb2_block_zone_skips_total",
                    "Block-scan units skipped via zone maps per storage shard.",
                    s.zone_skips,
                ),
            ] {
                let counter = self.registry.counter_with(name, &labels, help);
                let published = counter.get();
                if value > published {
                    counter.add(value - published);
                }
            }
        }
    }

    /// Start the background compaction thread with the given interval knob.
    /// The inter-pass wait is interruptible, exactly like GC's: shutdown
    /// latency is bounded by one pass, not one interval.
    pub fn start_background(self: &Arc<Self>, interval: Duration) {
        self.interval_us.store(
            interval.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
        let me = self.clone();
        let stop = self.stop.clone();
        let wakeup = self.wakeup.clone();
        let interval_us = self.interval_us.clone();
        let handle = std::thread::spawn(move || loop {
            let (lock, cvar) = &*wakeup;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                let interval = Duration::from_micros(interval_us.load(Ordering::Acquire));
                let (guard, timed_out) = match cvar.wait_timeout(stopped, interval) {
                    Ok((g, t)) => (g, t.timed_out()),
                    Err(_) => return,
                };
                stopped = guard;
                if timed_out {
                    break;
                }
            }
            if *stopped || stop.load(Ordering::Acquire) {
                return;
            }
            drop(stopped);
            me.run_once();
        });
        *self.worker.lock() = Some(handle);
    }

    /// Change the background compaction interval at runtime (the
    /// compaction-cadence behavior knob). Wakes a parked worker so the new
    /// cadence applies immediately.
    pub fn set_interval(&self, interval: Duration) {
        self.interval_us.store(
            interval.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
        let (lock, cvar) = &*self.wakeup;
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        cvar.notify_all();
    }

    /// The current background compaction interval.
    pub fn interval(&self) -> Duration {
        Duration::from_micros(self.interval_us.load(Ordering::Acquire))
    }

    /// Stop the background thread, if running. Returns once it is joined.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let (lock, cvar) = &*self.wakeup;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let (lock, cvar) = &*self.wakeup;
        if let Ok(mut stopped) = lock.lock() {
            *stopped = true;
        }
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::GarbageCollector;
    use mb2_common::{Column, DataType, Schema, Value};
    use mb2_storage::{TableId, SHARD_UNIT_SLOTS};

    fn table(shards: usize) -> Arc<Table> {
        Arc::new(Table::with_shards(
            TableId(1),
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
            shards,
        ))
    }

    fn fill(mgr: &Arc<TxnManager>, t: &Arc<Table>, rows: usize) {
        let mut txn = mgr.begin();
        for i in 0..rows {
            txn.insert(t, vec![Value::Int(i as i64)]).unwrap();
        }
        txn.commit().unwrap();
    }

    #[test]
    fn compaction_seals_cold_units() {
        let mgr = TxnManager::new(None);
        let c = Compactor::new(mgr.clone());
        let t = table(3);
        c.register(t.clone());
        fill(&mgr, &t, 2 * SHARD_UNIT_SLOTS + 10);
        let report = c.run_once();
        assert_eq!(report.units_sealed, 2, "{report:?}");
        assert_eq!(report.tuples_sealed, 2 * SHARD_UNIT_SLOTS);
        assert_eq!(c.total_sealed.get(), 2);
        assert!(c.total_evicted.get() >= 2 * SHARD_UNIT_SLOTS as u64);
        // All rows still readable through the block fallback.
        let reader = mgr.begin();
        let mut count = 0;
        t.scan_visible(reader.read_ts(), reader.id(), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 2 * SHARD_UNIT_SLOTS + 10);
    }

    #[test]
    fn active_snapshot_blocks_sealing() {
        let mgr = TxnManager::new(None);
        let c = Compactor::new(mgr.clone());
        let t = table(1);
        c.register(t.clone());
        // Pin the watermark *before* the rows commit: nothing is frozen.
        let holder = mgr.begin();
        fill(&mgr, &t, SHARD_UNIT_SLOTS);
        assert_eq!(c.run_once().units_sealed, 0);
        drop(holder);
        assert_eq!(c.run_once().units_sealed, 1);
    }

    #[test]
    fn compaction_after_gc_reseals_dirty_units() {
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        let c = Compactor::new(mgr.clone());
        let t = table(1);
        gc.register(t.clone());
        c.register(t.clone());
        fill(&mgr, &t, SHARD_UNIT_SLOTS);
        assert_eq!(c.run_once().units_sealed, 1);
        // Dirty the sealed unit with an update.
        let slot = {
            let reader = mgr.begin();
            let mut found = None;
            t.scan_visible(reader.read_ts(), reader.id(), |s, _| {
                found = Some(s);
                false
            });
            found.unwrap()
        };
        let mut txn = mgr.begin();
        txn.update(&t, slot, vec![Value::Int(-7)]).unwrap();
        txn.commit().unwrap();
        assert_eq!(t.block_stats()[0].dirty_blocks, 1);
        // GC trims the revived chain to one version, then the next pass
        // re-seals the unit clean with the new value.
        gc.run_once();
        assert_eq!(c.run_once().units_sealed, 1);
        assert_eq!(t.block_stats()[0].dirty_blocks, 0);
        let reader = mgr.begin();
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(-7));
    }

    #[test]
    fn block_metrics_publish_per_shard() {
        let registry = Arc::new(MetricsRegistry::new());
        let mgr = TxnManager::new(None);
        let c = Compactor::with_metrics(mgr.clone(), &registry);
        let t = table(2);
        c.register(t.clone());
        fill(&mgr, &t, 2 * SHARD_UNIT_SLOTS);
        c.run_once();
        let text = registry.prometheus_text();
        assert!(text.contains("mb2_block_count"), "{text}");
        assert!(
            text.contains(r#"mb2_block_tuples{shard="0",table="t"}"#)
                || text.contains(r#"mb2_block_tuples{table="t",shard="0"}"#),
            "{text}"
        );
        assert!(text.contains("mb2_block_compactions_total 1"), "{text}");
    }

    #[test]
    fn background_compactor_runs_and_shuts_down_promptly() {
        let mgr = TxnManager::new(None);
        let c = Compactor::new(mgr.clone());
        let t = table(1);
        c.register(t.clone());
        fill(&mgr, &t, SHARD_UNIT_SLOTS);
        c.start_background(Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        while c.invocations.get() == 0 {
            assert!(Instant::now() < deadline, "background pass never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        c.set_interval(Duration::from_secs(30));
        assert_eq!(c.interval(), Duration::from_secs(30));
        let t0 = Instant::now();
        c.shutdown();
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "shutdown took {:?} against a 30s interval",
            t0.elapsed()
        );
        assert!(t.sealed_tuples() > 0);
    }
}
