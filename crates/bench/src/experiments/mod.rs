//! One module per paper table/figure. Every experiment is a function
//! `run(scale) -> String` producing the report text that the corresponding
//! binary prints and persists.

pub mod chaos_recovery;
pub mod columnar_scan;
pub mod exec_parallel;
pub mod exec_throughput;
pub mod fig01_index_build;
pub mod fig05_ou_accuracy;
pub mod fig06_label_accuracy;
pub mod fig07_generalization;
pub mod fig08_interference;
pub mod fig09a_update;
pub mod fig09b_noisy_card;
pub mod fig10_hardware;
pub mod fig11_end_to_end;
pub mod obs_overhead;
pub mod pilot_loop;
pub mod server_throughput;
pub mod shard_scale;
pub mod table02_overhead;

pub mod common;
