//! Regenerates one paper result; see `mb2_bench::experiments::table02_overhead`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::table02_overhead::run(scale);
    mb2_bench::report::emit("table02_overhead", &report);
}
