//! Log-file reading for recovery.
//!
//! Recovery distinguishes two ways a log can be damaged:
//!
//! * **Torn tail** — the final record extends past end-of-file because a
//!   crash interrupted the last flush. This is the expected crash signature
//!   under the WAL's append-only discipline and is always tolerated: the
//!   partial tail is dropped and everything before it replayed.
//! * **Mid-file corruption** — a structurally complete record whose CRC does
//!   not match, whose body does not decode, or whose body carries trailing
//!   garbage. This means bytes the log claimed were durable have changed
//!   (bit rot, a torn *overwrite*, an outside editor). Strict mode refuses
//!   to recover; salvage mode keeps the valid prefix and reports exactly
//!   what was dropped.

use std::path::Path;

use mb2_common::{Crc32, DbError, DbResult};

use crate::record::{LogRecord, MAX_RECORD_LEN, RECORD_HEADER_LEN};

/// Where and why a scan stopped trusting the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogCorruption {
    /// Byte offset of the first corrupt record header.
    pub offset: usize,
    /// Bytes from `offset` to end-of-file that were dropped.
    pub dropped_bytes: usize,
    /// Human-readable cause (checksum mismatch, undecodable body, ...).
    pub reason: String,
}

impl std::fmt::Display for LogCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt WAL record at byte {}: {} ({} bytes dropped)",
            self.offset, self.reason, self.dropped_bytes
        )
    }
}

/// Everything a scan learned about a log file.
#[derive(Debug, Clone, PartialEq)]
pub struct LogReadReport {
    /// The records of the valid prefix, in log order.
    pub records: Vec<LogRecord>,
    /// Bytes covered by `records`.
    pub bytes_consumed: usize,
    /// Bytes of an incomplete trailing record (crash signature; tolerated).
    pub torn_tail_bytes: usize,
    /// Set when salvage mode dropped a corrupt suffix.
    pub corruption: Option<LogCorruption>,
}

/// Read every record from a log file, strict mode: a torn tail is tolerated
/// and dropped, mid-file corruption is an error.
pub fn read_log(path: &Path) -> DbResult<Vec<LogRecord>> {
    read_log_with(path, false).map(|r| r.records)
}

/// Read a log file. With `salvage` false (strict), corruption is an error;
/// with `salvage` true, the valid prefix is returned and the corruption
/// described in the report.
pub fn read_log_with(path: &Path, salvage: bool) -> DbResult<LogReadReport> {
    let data =
        std::fs::read(path).map_err(|e| DbError::Wal(format!("read {}: {e}", path.display())))?;
    scan_records(&data, salvage)
}

/// Scan an in-memory log image. See [`read_log_with`] for semantics.
pub fn scan_records(data: &[u8], salvage: bool) -> DbResult<LogReadReport> {
    let mut report = LogReadReport {
        records: Vec::new(),
        bytes_consumed: 0,
        torn_tail_bytes: 0,
        corruption: None,
    };
    let mut offset = 0usize;
    let corruption_reason = loop {
        let remaining = data.len() - offset;
        if remaining == 0 {
            return Ok(report);
        }
        if remaining < RECORD_HEADER_LEN {
            // Not even a full header: the crash hit mid-header.
            report.torn_tail_bytes = remaining;
            return Ok(report);
        }
        let body_len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
        if body_len > MAX_RECORD_LEN {
            // The writer never appends records this large, so the length
            // prefix itself is damaged. Without this cap a bit flip in a
            // length field's high bytes would overshoot end-of-file and
            // masquerade as a (tolerated) torn tail, silently dropping
            // everything after the flip.
            break format!("implausible record length {body_len} (max {MAX_RECORD_LEN})");
        }
        if remaining < RECORD_HEADER_LEN + body_len {
            // The record extends past end-of-file. Whether the length prefix
            // is genuine or itself damaged, this can only happen at the tail,
            // which is exactly the torn-write signature: tolerate it.
            report.torn_tail_bytes = remaining;
            return Ok(report);
        }
        let body = &data[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + body_len];
        let mut crc = Crc32::new();
        crc.update(&(body_len as u32).to_le_bytes());
        crc.update(body);
        let actual = crc.finalize();
        if actual != stored_crc {
            break format!(
                "checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            );
        }
        let mut record =
            bytes::Bytes::from(data[offset..offset + RECORD_HEADER_LEN + body_len].to_vec());
        match LogRecord::deserialize(&mut record) {
            Ok(rec) => {
                report.records.push(rec);
                offset += RECORD_HEADER_LEN + body_len;
                report.bytes_consumed = offset;
            }
            // CRC passed but the body is not a well-formed record (bad tag,
            // truncated field, trailing bytes): a writer bug or deliberate
            // tampering, either way not trustworthy.
            Err(e) => break format!("undecodable record body: {e}"),
        }
    };
    let corruption = LogCorruption {
        offset,
        dropped_bytes: data.len() - offset,
        reason: corruption_reason,
    };
    if salvage {
        report.corruption = Some(corruption);
        Ok(report)
    } else {
        Err(DbError::Wal(format!(
            "{corruption}; rerun in salvage mode to recover the valid prefix"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{LogManager, LogManagerConfig};
    use mb2_common::Value;

    fn temp_log(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mb2_reader_{}_{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn write_records(path: &std::path::Path, records: &[LogRecord]) {
        let wal = LogManager::new(LogManagerConfig {
            path: Some(path.to_path_buf()),
            ..LogManagerConfig::default()
        })
        .unwrap();
        for r in records {
            wal.append(r).unwrap();
        }
        wal.flush_now().unwrap();
    }

    #[test]
    fn reads_back_written_records() {
        let path = temp_log("basic");
        let records = vec![
            LogRecord::Begin { txn_id: 1 },
            LogRecord::Insert {
                txn_id: 1,
                table_id: 2,
                slot: 3,
                tuple: vec![Value::Int(7)],
            },
            LogRecord::Commit { txn_id: 1 },
        ];
        write_records(&path, &records);
        let back = read_log(&path).unwrap();
        assert_eq!(back, records);
        let report = read_log_with(&path, false).unwrap();
        assert_eq!(report.torn_tail_bytes, 0);
        assert_eq!(report.corruption, None);
        assert_eq!(
            report.bytes_consumed,
            std::fs::metadata(&path).unwrap().len() as usize
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = temp_log("torn");
        write_records(
            &path,
            &[
                LogRecord::Begin { txn_id: 1 },
                LogRecord::Commit { txn_id: 1 },
            ],
        );
        // Simulate a crash mid-write: append a length prefix promising more
        // bytes than exist, plus a partial body.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&100u32.to_le_bytes());
        data.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        data.extend_from_slice(&[5u8, 1, 2]);
        std::fs::write(&path, &data).unwrap();
        let report = read_log_with(&path, false).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.torn_tail_bytes, 11);
        assert_eq!(report.corruption, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_bit_flip_is_corruption_not_torn_tail() {
        let path = temp_log("flip");
        write_records(
            &path,
            &[
                LogRecord::Begin { txn_id: 1 },
                LogRecord::Insert {
                    txn_id: 1,
                    table_id: 2,
                    slot: 0,
                    tuple: vec![Value::Int(5)],
                },
                LogRecord::Commit { txn_id: 1 },
            ],
        );
        let mut data = std::fs::read(&path).unwrap();
        // Flip a bit inside the *second* record's body (first record is a
        // Begin: 8-byte header + 9-byte body).
        let second = RECORD_HEADER_LEN + 9;
        data[second + RECORD_HEADER_LEN + 3] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        // Strict mode refuses.
        let err = read_log(&path).unwrap_err();
        assert!(
            matches!(err, DbError::Wal(ref m) if m.contains("checksum mismatch")),
            "{err}"
        );

        // Salvage mode recovers the prefix and reports the damage.
        let report = read_log_with(&path, true).unwrap();
        assert_eq!(report.records, vec![LogRecord::Begin { txn_id: 1 }]);
        let corruption = report.corruption.unwrap();
        assert_eq!(corruption.offset, second);
        assert_eq!(corruption.dropped_bytes, data.len() - second);
        assert!(corruption.reason.contains("checksum mismatch"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn implausible_length_claim_is_corruption_not_torn_tail() {
        // A bit flip in a length field's high bytes makes the record claim
        // to extend far past end-of-file. Without the MAX_RECORD_LEN cap
        // this would be classified as a (tolerated) torn tail and silently
        // drop everything after the flip.
        let path = temp_log("lenflip");
        write_records(
            &path,
            &[
                LogRecord::Begin { txn_id: 1 },
                LogRecord::Commit { txn_id: 1 },
                LogRecord::Begin { txn_id: 2 },
                LogRecord::Commit { txn_id: 2 },
            ],
        );
        let mut data = std::fs::read(&path).unwrap();
        // Flip bit 22 of the second record's length field: 9 -> 9 + 4MiB.
        let second = RECORD_HEADER_LEN + 9;
        data[second + 2] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        let err = read_log(&path).unwrap_err();
        assert!(
            matches!(err, DbError::Wal(ref m) if m.contains("implausible record length")),
            "{err}"
        );
        let report = read_log_with(&path, true).unwrap();
        assert_eq!(report.records, vec![LogRecord::Begin { txn_id: 1 }]);
        assert_eq!(report.torn_tail_bytes, 0);
        let corruption = report.corruption.unwrap();
        assert_eq!(corruption.offset, second);
        assert!(corruption.reason.contains("implausible record length"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_append_is_rejected_cleanly() {
        let path = temp_log("oversized");
        let wal = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            ..LogManagerConfig::default()
        })
        .unwrap();
        let err = wal
            .append(&LogRecord::Insert {
                txn_id: 1,
                table_id: 1,
                slot: 0,
                tuple: vec![Value::Varchar("x".repeat(MAX_RECORD_LEN + 1))],
            })
            .unwrap_err();
        assert!(
            matches!(err, DbError::Wal(ref m) if m.contains("exceeds")),
            "{err}"
        );
        // The rejected record left no trace: the log still accepts and
        // round-trips normal records.
        wal.append(&LogRecord::Begin { txn_id: 1 }).unwrap();
        wal.flush_now().unwrap();
        assert_eq!(
            read_log(&path).unwrap(),
            vec![LogRecord::Begin { txn_id: 1 }]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_valid_but_undecodable_body_is_corruption() {
        // Hand-craft a record with a correct CRC over a garbage body: the
        // scanner must classify it as corruption, not decode nonsense.
        let body = [0xFFu8, 1, 2, 3]; // 0xFF is not a valid record tag
        let mut data = Vec::new();
        data.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&(body.len() as u32).to_le_bytes());
        crc.update(&body);
        data.extend_from_slice(&crc.finalize().to_le_bytes());
        data.extend_from_slice(&body);

        let err = scan_records(&data, false).unwrap_err();
        assert!(
            matches!(err, DbError::Wal(ref m) if m.contains("undecodable")),
            "{err}"
        );
        let report = scan_records(&data, true).unwrap();
        assert!(report.records.is_empty());
        assert!(report.corruption.unwrap().reason.contains("undecodable"));
    }

    #[test]
    fn missing_file_is_error() {
        assert!(read_log(Path::new("/nonexistent/mb2.log")).is_err());
    }
}
