//! In-memory MVCC row storage.
//!
//! The NoisePage-analog storage layer: tables are segmented slot arrays where
//! each slot holds a newest-first version chain. Transactions (managed by
//! `mb2-txn`) install uncommitted versions tagged with their transaction id,
//! stamp them with a commit timestamp on commit, and unlink them on abort.
//! Visibility follows snapshot isolation: a reader at timestamp `t` sees the
//! newest version whose begin timestamp is committed and `<= t`.

//! Sealed/cold data additionally lives in per-shard columnar blocks (see
//! [`block`]): a background compaction pass freezes units whose chains are
//! all below the GC watermark into immutable column-major
//! [`SealedBlock`]s, evicting the version chains. Non-empty chains stay
//! authoritative over blocks, so the row path remains correct at every
//! point of the seal lifecycle.

pub mod block;
mod proptests;
pub mod table;
pub mod ts;
pub mod version;

pub use block::{IntColumn, SealedBlock, BLOCK_WORDS};
pub use table::{
    BlockShardStats, CompactReport, PartitionedTable, ShardStats, SlotId, Table, TableId,
    SEGMENT_SIZE, SHARD_UNIT_SLOTS,
};
pub use ts::{Ts, TXN_FLAG};
pub use version::{FrozenState, Version, VersionChain};
