//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum WAL records.
//!
//! The WAL needs a cheap, well-known integrity check so recovery can tell a
//! torn tail (tolerated) from mid-file corruption (rejected or salvaged).
//! This is the same reflected CRC-32 as zlib/`crc32fast`, computed with a
//! compile-time 256-entry table.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 state, for checksumming data that arrives in pieces
/// (e.g. a record's length prefix followed by its body).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello, write-ahead log";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"payload bytes".to_vec();
        let clean = crc32(&data);
        data[4] ^= 0x20;
        assert_ne!(crc32(&data), clean);
    }
}
