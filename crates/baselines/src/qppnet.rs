//! QPPNet-style plan-structured neural network \[40\].
//!
//! One MLP ("neural unit") per operator type. A unit's input is its
//! operator's plan features concatenated with its children's output vectors
//! (zero-padded to two children); its output is `[latency, data vector]`.
//! The predicted query latency is the root unit's latency output, and
//! training backpropagates the query-latency loss through the whole tree —
//! so units are shared across plans but gradients flow along each plan's
//! structure, exactly the architecture the paper adapted for NoisePage's
//! pipelines.

use std::collections::HashMap;

use mb2_common::{DbError, DbResult, Prng};
use mb2_ml::nn::{Mlp, MlpCache};
use mb2_sql::PlanNode;

/// Plan features per operator (log-scaled estimates).
const OP_FEATURES: usize = 6;
/// Children considered per operator (binary plans).
const MAX_CHILDREN: usize = 2;

fn op_features(node: &PlanNode) -> [f64; OP_FEATURES] {
    let est = node.est();
    [
        (est.rows_in.max(0.0) + 1.0).ln(),
        (est.rows_out.max(0.0) + 1.0).ln(),
        est.n_cols as f64,
        (est.width.max(0.0) + 1.0).ln(),
        (est.cardinality.max(0.0) + 1.0).ln(),
        node.children().len() as f64,
    ]
}

/// QPPNet configuration + trained state.
pub struct QppNet {
    pub hidden_vector: usize,
    pub hidden_layer: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub seed: u64,
    units: HashMap<&'static str, (Mlp, usize)>, // (net, adam step)
    /// Latency normalization (log space mean/std).
    target_mean: f64,
    target_std: f64,
}

impl Default for QppNet {
    fn default() -> Self {
        QppNet::new(8, 32, 400, 1e-3, 17)
    }
}

impl QppNet {
    pub fn new(
        hidden_vector: usize,
        hidden_layer: usize,
        epochs: usize,
        learning_rate: f64,
        seed: u64,
    ) -> QppNet {
        QppNet {
            hidden_vector,
            hidden_layer,
            epochs,
            learning_rate,
            seed,
            units: HashMap::new(),
            target_mean: 0.0,
            target_std: 1.0,
        }
    }

    fn unit_io(&self) -> (usize, usize) {
        let input = OP_FEATURES + MAX_CHILDREN * (1 + self.hidden_vector);
        let output = 1 + self.hidden_vector;
        (input, output)
    }

    fn ensure_unit(&mut self, label: &'static str, rng: &mut Prng) {
        if !self.units.contains_key(label) {
            let (input, output) = self.unit_io();
            let net = Mlp::new(&[input, self.hidden_layer, output], rng);
            self.units.insert(label, (net, 0));
        }
    }

    /// Forward pass; returns the root output and per-node caches in
    /// post-order (children before parents).
    fn forward<'p>(
        &self,
        node: &'p PlanNode,
        caches: &mut Vec<(&'static str, &'p PlanNode, MlpCache, Vec<f64>)>,
    ) -> DbResult<Vec<f64>> {
        let children = node.children();
        let mut input = Vec::with_capacity(self.unit_io().0);
        input.extend_from_slice(&op_features(node));
        let mut child_outputs = Vec::new();
        for child in children.iter().take(MAX_CHILDREN) {
            child_outputs.push(self.forward(child, caches)?);
        }
        for i in 0..MAX_CHILDREN {
            match child_outputs.get(i) {
                Some(out) => input.extend_from_slice(out),
                None => input.extend(std::iter::repeat_n(0.0, 1 + self.hidden_vector)),
            }
        }
        let (net, _) = self
            .units
            .get(node.label())
            .ok_or_else(|| DbError::Model(format!("unit for '{}' untrained", node.label())))?;
        let (out, cache) = net.forward_cached(&input);
        caches.push((node.label(), node, cache, input));
        Ok(out)
    }

    /// Backward pass through the tree. `caches` comes from [`Self::forward`]
    /// (post-order). `grad_root` is dL/d(root output).
    fn backward(
        &mut self,
        caches: Vec<(&'static str, &PlanNode, MlpCache, Vec<f64>)>,
        grad_root: Vec<f64>,
    ) {
        // Walk in reverse (parents before children), routing each child its
        // gradient slice from the parent's input gradient.
        let mut pending: HashMap<usize, Vec<f64>> = HashMap::new(); // cache idx -> grad_out
        let root_idx = caches.len() - 1;
        pending.insert(root_idx, grad_root);
        // Map each node pointer to its cache index for child routing.
        let ptr_to_idx: HashMap<*const PlanNode, usize> = caches
            .iter()
            .enumerate()
            .map(|(i, (_, n, _, _))| (*n as *const PlanNode, i))
            .collect();
        for i in (0..caches.len()).rev() {
            let Some(grad_out) = pending.remove(&i) else {
                continue;
            };
            let (label, node, cache, _input) = &caches[i];
            let grad_in = {
                let (net, _) = self.units.get_mut(label).expect("unit exists");
                net.backward(cache, &grad_out)
            };
            // Children's gradient slices follow the op features.
            for (ci, child) in node.children().into_iter().take(MAX_CHILDREN).enumerate() {
                let start = OP_FEATURES + ci * (1 + self.hidden_vector);
                let slice = grad_in[start..start + 1 + self.hidden_vector].to_vec();
                if let Some(&idx) = ptr_to_idx.get(&(child as *const PlanNode)) {
                    pending.insert(idx, slice);
                }
            }
        }
    }

    /// Train on (plan, measured latency µs) pairs.
    pub fn fit(&mut self, samples: &[(&PlanNode, f64)]) -> DbResult<()> {
        if samples.is_empty() {
            return Err(DbError::Model("qppnet: empty training set".into()));
        }
        let mut rng = Prng::new(self.seed);
        // Register units for every operator type seen.
        fn walk(node: &PlanNode, f: &mut impl FnMut(&'static str)) {
            f(node.label());
            for c in node.children() {
                walk(c, f);
            }
        }
        for (plan, _) in samples {
            walk(plan, &mut |label| self.ensure_unit(label, &mut rng));
        }
        // Log-space latency normalization.
        let logs: Vec<f64> = samples
            .iter()
            .map(|(_, l)| (l.max(0.0) + 1.0).ln())
            .collect();
        self.target_mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs
            .iter()
            .map(|v| (v - self.target_mean).powi(2))
            .sum::<f64>()
            / logs.len() as f64;
        self.target_std = var.sqrt().max(1e-6);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for &si in &order {
                let (plan, latency) = samples[si];
                let target = ((latency.max(0.0) + 1.0).ln() - self.target_mean) / self.target_std;
                let mut caches = Vec::new();
                let out = self.forward(plan, &mut caches)?;
                let mut grad = vec![0.0; out.len()];
                grad[0] = 2.0 * (out[0] - target);
                for (_, (net, _)) in self.units.iter_mut() {
                    net.zero_grad();
                }
                self.backward(caches, grad);
                for (net, step) in self.units.values_mut() {
                    *step += 1;
                    net.adam_step(self.learning_rate, *step, 1.0);
                }
            }
        }
        Ok(())
    }

    /// Predict query latency (µs). Errors if the plan contains an operator
    /// type absent from training — the generalization limitation §8.3 notes
    /// ("training data must contain all the operator combinations in the
    /// test data").
    pub fn predict(&self, plan: &PlanNode) -> DbResult<f64> {
        let mut caches = Vec::new();
        let out = self.forward(plan, &mut caches)?;
        let log = out[0] * self.target_std + self.target_mean;
        Ok(log.exp() - 1.0)
    }

    pub fn size_bytes(&self) -> usize {
        self.units
            .values()
            .map(|(net, _)| net.param_count() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_engine::Database;

    fn setup() -> Database {
        let db = Database::open();
        db.execute("CREATE TABLE q (a INT, b INT, v FLOAT)")
            .unwrap();
        for chunk in (0..4000i64).collect::<Vec<_>>().chunks(500) {
            let vals: Vec<String> = chunk
                .iter()
                .map(|i| format!("({i}, {}, 1.5)", i % 50))
                .collect();
            db.execute(&format!("INSERT INTO q VALUES {}", vals.join(", ")))
                .unwrap();
        }
        db.execute("ANALYZE q").unwrap();
        db
    }

    /// Latencies proportional to scanned rows: QPPNet should learn the
    /// relationship between plan cardinalities and latency.
    #[test]
    fn learns_latency_from_plan_features() {
        let db = setup();
        let mut samples = Vec::new();
        for bound in [100, 500, 1000, 2000, 3000, 4000] {
            let plan = db
                .prepare(&format!("SELECT * FROM q WHERE a < {bound}"))
                .unwrap();
            let latency = plan.est().rows_out * 3.0 + 50.0;
            samples.push((plan, latency));
        }
        let refs: Vec<(&PlanNode, f64)> = samples.iter().map(|(p, l)| (p, *l)).collect();
        let mut net = QppNet::new(6, 24, 300, 2e-3, 3);
        net.fit(&refs).unwrap();
        // Interpolate at an unseen bound.
        let plan = db.prepare("SELECT * FROM q WHERE a < 1500").unwrap();
        let truth = plan.est().rows_out * 3.0 + 50.0;
        let pred = net.predict(&plan).unwrap();
        let rel = (pred - truth).abs() / truth;
        assert!(rel < 0.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn unseen_operator_type_is_an_error() {
        let db = setup();
        let scan = db.prepare("SELECT * FROM q WHERE a < 10").unwrap();
        let refs = [(&scan, 100.0)];
        let mut net = QppNet::new(4, 16, 10, 1e-3, 5);
        net.fit(&refs).unwrap();
        // An aggregation plan contains unit types never trained.
        let agg = db.prepare("SELECT b, COUNT(*) FROM q GROUP BY b").unwrap();
        assert!(net.predict(&agg).is_err());
    }

    #[test]
    fn empty_training_set_is_error() {
        let mut net = QppNet::default();
        assert!(net.fit(&[]).is_err());
    }

    #[test]
    fn model_size_reported() {
        let db = setup();
        let plan = db.prepare("SELECT * FROM q").unwrap();
        let refs = [(&plan, 10.0)];
        let mut net = QppNet::new(4, 16, 2, 1e-3, 7);
        net.fit(&refs).unwrap();
        assert!(net.size_bytes() > 0);
    }
}
