//! Fig. 6 — OU-model accuracy per output label, with and without the §4.3
//! output-label normalization (the ablation the figure overlays).

use mb2_common::METRIC_NAMES;
use mb2_core::training::evaluate_algorithms;
use mb2_ml::Algorithm;

use crate::pipeline::{build_ou_models, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(
        "# Fig. 6 — test relative error per output label (averaged across OUs), \
         with/without normalization\n\n",
    );
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");
    let algorithms = [Algorithm::RandomForest, Algorithm::GradientBoosting];

    for (title, normalize) in [
        ("with normalization", true),
        ("without normalization", false),
    ] {
        let mut per_label_sums = vec![vec![0.0f64; 9]; algorithms.len()];
        let mut counts = vec![0usize; algorithms.len()];
        for ou in built.repo.ous() {
            let Ok(evals) = evaluate_algorithms(&built.repo, ou, &algorithms, normalize, 6) else {
                continue;
            };
            for (ai, alg) in algorithms.iter().enumerate() {
                if let Some((_, _, per_label)) = evals.iter().find(|(a, _, _)| a == alg) {
                    for (s, e) in per_label_sums[ai].iter_mut().zip(per_label) {
                        *s += e;
                    }
                    counts[ai] += 1;
                }
            }
        }
        let mut table = Table::new(
            format!("per-label error, {title}"),
            &["label", "random_forest", "gbm"],
        );
        for (li, name) in METRIC_NAMES.iter().enumerate() {
            table.row(&[
                name.to_string(),
                fmt(per_label_sums[0][li] / counts[0].max(1) as f64),
                fmt(per_label_sums[1][li] / counts[1].max(1) as f64),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "Paper's reading: most labels below 20% error, cache_misses the \
         noisiest; same-dataset accuracy is similar with and without \
         normalization (normalization pays off in Fig. 7's cross-scale \
         generalization).\n",
    );
    out
}
