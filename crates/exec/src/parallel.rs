//! Morsel-driven intra-query parallelism.
//!
//! A shared [`ExecPool`] (owned by the engine, sized by the `parallelism`
//! knob) runs parallelizable *leaf chains* — a base-table sequential scan
//! plus any stack of Filter/Project stages above it — by carving the heap
//! into fixed-size slot-range **morsels** ([`DEFAULT_MORSEL_SLOTS`]).
//! Dispatch is **shard-affine**: morsels are bucketed by the storage shard
//! owning their first slot, each shard gets its own atomic cursor, and a
//! worker drains the cursor of its preferred shard before stealing from
//! others — so parallel scans over a partitioned table stop contending on
//! one cursor and each worker stays inside one shard's chain blocks while
//! its shard lasts. Workers evaluate the chain over their range with
//! thread-local state and send results to the issuing thread, which
//! re-emits them in morsel order (an **ordered gather**). Because disjoint slot ranges partition the heap exactly
//! (`Table::scan_visible_range`) and emission is in range order, the row
//! stream a parallel chain produces is byte-identical to the serial scan —
//! heap order is preserved, so `LIMIT` prefixes and client-visible row
//! order do not change with the worker count.
//!
//! Pipeline breakers merge per-morsel partial state on the issuing thread,
//! again in morsel order: the hash-join build concatenates per-morsel rows
//! (so bucket entry order equals serial insertion order) and the
//! pre-aggregation merges per-morsel group maps with order-sensitive
//! combine functions. See DESIGN.md "Parallel execution model".
//!
//! OU accounting: workers count work into a private `WorkerAcct` keyed by
//! `(node id, OU)` together with per-section wall time. At operator close
//! the accounts of all workers fold into the operator's single `OpSpan`
//! (`OuTracker::absorb`), so a recorder sees exactly one measurement per
//! (node, OU) whose tuple/byte features equal the serial totals and whose
//! elapsed time is the *sum* of concurrent worker time — true aggregate
//! work, which is what the OU models train on.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult, OuKind};
use mb2_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use mb2_storage::{Table, Ts, SHARD_UNIT_SLOTS};

use crate::columnar::{self, BlockPredicate};
use crate::compile::Evaluator;
use crate::tracker::WorkCounts;

/// Slots per morsel. Matches half a storage segment: large enough that the
/// per-morsel dispatch cost (one atomic fetch-add plus one channel send) is
/// noise, small enough that a 40k-row table still fans out over every
/// worker. Tests override it via `ExecContext::with_morsel_slots` to
/// exercise multi-morsel plans on small tables.
pub const DEFAULT_MORSEL_SLOTS: usize = 2048;

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Pool observability handles, registered against the engine's
/// [`MetricsRegistry`] so they flow through the existing Prometheus/JSON
/// endpoints. A pool built with [`ExecPool::new`] keeps private handles.
struct PoolObs {
    /// Workers currently executing a job.
    busy: Arc<Gauge>,
    /// Depth of the job queue observed at each submit.
    queue_depth: Arc<Histogram>,
    /// Morsels processed, labeled per worker.
    morsels: Vec<Arc<Counter>>,
    /// Morsels a worker claimed from a shard other than its preferred one,
    /// labeled per worker. Low steal counts mean shard affinity is holding.
    steals: Vec<Arc<Counter>>,
    /// Jobs submitted but not yet picked up (feeds `queue_depth`).
    pending: AtomicUsize,
}

impl PoolObs {
    fn registered(workers: usize, registry: &MetricsRegistry) -> PoolObs {
        registry
            .gauge("mb2_exec_pool_workers", "Size of the execution worker pool")
            .set(workers as i64);
        PoolObs {
            busy: registry.gauge(
                "mb2_exec_pool_busy_workers",
                "Execution pool workers currently running a job",
            ),
            queue_depth: registry.histogram(
                "mb2_exec_pool_queue_depth",
                "Execution pool job queue depth sampled at submit",
            ),
            morsels: (0..workers)
                .map(|i| {
                    registry.counter_with(
                        "mb2_exec_pool_morsels_total",
                        &[("worker", &i.to_string())],
                        "Morsels processed by each execution pool worker",
                    )
                })
                .collect(),
            steals: (0..workers)
                .map(|i| {
                    registry.counter_with(
                        "mb2_exec_pool_steals_total",
                        &[("worker", &i.to_string())],
                        "Morsels claimed from a non-preferred shard by each worker",
                    )
                })
                .collect(),
            pending: AtomicUsize::new(0),
        }
    }

    fn private(workers: usize) -> PoolObs {
        PoolObs {
            busy: Arc::new(Gauge::new()),
            queue_depth: Arc::new(Histogram::new()),
            morsels: (0..workers).map(|_| Arc::new(Counter::new())).collect(),
            steals: (0..workers).map(|_| Arc::new(Counter::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    fn morsel_done(&self, worker: usize) {
        if let Some(c) = self.morsels.get(worker) {
            c.inc();
        }
    }

    fn morsel_stolen(&self, worker: usize) {
        if let Some(c) = self.steals.get(worker) {
            c.inc();
        }
    }
}

/// A shared pool of persistent execution workers. Queries submit one job
/// per participating worker; each job drains morsels from a per-query
/// cursor. Jobs never block on other jobs and queries are never executed
/// *from* pool threads, so the pool cannot deadlock however many queries
/// share it. Dropping the pool closes the job channel and joins every
/// worker.
pub struct ExecPool {
    tx: Mutex<Option<Sender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    obs: Arc<PoolObs>,
    workers: usize,
}

impl ExecPool {
    /// A pool with private (unregistered) observability handles.
    pub fn new(workers: usize) -> Arc<ExecPool> {
        Self::build(workers, None)
    }

    /// A pool whose gauges/histograms/counters are registered in `registry`
    /// (the engine path).
    pub fn with_metrics(workers: usize, registry: &MetricsRegistry) -> Arc<ExecPool> {
        Self::build(workers, Some(registry))
    }

    fn build(workers: usize, registry: Option<&MetricsRegistry>) -> Arc<ExecPool> {
        let workers = workers.max(1);
        let obs = Arc::new(match registry {
            Some(r) => PoolObs::registered(workers, r),
            None => PoolObs::private(workers),
        });
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let obs = Arc::clone(&obs);
                std::thread::Builder::new()
                    .name(format!("mb2-exec-{i}"))
                    .spawn(move || loop {
                        // Holding the lock across the blocking recv is the
                        // point: exactly one idle worker waits on the
                        // channel; the rest queue on the mutex. Dispatch is
                        // serialized (jobs are rare — one per worker per
                        // query) while job *execution* is fully parallel.
                        let job = rx.lock().recv();
                        match job {
                            Ok(job) => {
                                obs.pending.fetch_sub(1, Ordering::Relaxed);
                                obs.busy.inc();
                                job(i);
                                obs.busy.dec();
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn exec pool worker")
            })
            .collect();
        Arc::new(ExecPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            obs,
            workers,
        })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers currently executing a job (test/observability hook).
    pub fn busy_workers(&self) -> i64 {
        self.obs.busy.get()
    }

    /// Total morsels processed across all workers.
    pub fn morsels_processed(&self) -> u64 {
        self.obs.morsels.iter().map(|c| c.get()).sum()
    }

    /// Total morsels claimed from a non-preferred shard (work stealing)
    /// across all workers.
    pub fn morsels_stolen(&self) -> u64 {
        self.obs.steals.iter().map(|c| c.get()).sum()
    }

    fn submit(&self, job: Job) {
        let depth = self.obs.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.queue_depth.record(depth as u64);
        let tx = self.tx.lock();
        tx.as_ref()
            .expect("exec pool already shut down")
            .send(job)
            .expect("exec pool workers exited");
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining jobs and exit.
        self.tx.lock().take();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ----------------------------------------------------------------------
// Worker-side accounting
// ----------------------------------------------------------------------

/// One worker's work/time accounting, keyed by `(node id, OU)`.
#[derive(Default)]
pub(crate) struct WorkerAcct {
    spans: HashMap<(u32, OuKind), SpanAcct>,
}

#[derive(Default, Clone, Copy)]
pub(crate) struct SpanAcct {
    pub work: WorkCounts,
    pub elapsed_us: f64,
}

impl WorkerAcct {
    pub fn span(&mut self, id: u32, ou: OuKind) -> &mut SpanAcct {
        self.spans.entry((id, ou)).or_default()
    }

    pub fn get(&self, id: u32, ou: OuKind) -> Option<&SpanAcct> {
        self.spans.get(&(id, ou))
    }

    fn fold(&mut self, other: WorkerAcct) {
        for (key, acct) in other.spans {
            let mine = self.spans.entry(key).or_default();
            mine.work.merge(&acct.work);
            mine.elapsed_us += acct.elapsed_us;
        }
    }
}

pub(crate) fn elapsed_us(t0: Instant) -> f64 {
    t0.elapsed().as_nanos() as f64 / 1000.0
}

// ----------------------------------------------------------------------
// Parallelizable leaf chains
// ----------------------------------------------------------------------

/// A Filter or Project stage stacked above the scan inside a parallel
/// chain. Evaluators are `Send + Sync`, so stages are shared with workers
/// by `Arc`ing the whole spec.
pub(crate) enum ParStage {
    Filter {
        id: u32,
        eval: Evaluator,
        ops: u64,
    },
    Project {
        id: u32,
        evals: Vec<Evaluator>,
        ops: u64,
    },
}

/// A thread-safe description of a parallelizable leaf chain: a sequential
/// base-table scan (with its fused predicate) plus zero or more
/// Filter/Project stages. Everything a worker needs — table handle,
/// snapshot timestamps, evaluators — is owned here, so the spec can cross
/// threads without borrowing the issuing transaction (`Transaction` itself
/// is not `Sync`; MVCC visibility only needs `(read_ts, own)`).
pub(crate) struct ChainSpec {
    pub table: Arc<Table>,
    pub read_ts: Ts,
    pub own: Ts,
    pub scan_id: u32,
    pub filter: Option<Evaluator>,
    pub filter_ops: u64,
    /// `Some` iff the `columnar_enabled` knob is on: clean sealed units are
    /// served from their blocks (Block/Scan OU) instead of chain walks.
    pub block_pred: Option<BlockPredicate>,
    pub stages: Vec<ParStage>,
    /// Maintain work counts (mirrors `OpSpan::active`).
    pub track: bool,
    pub morsel_slots: usize,
    /// Slot count snapshot taken at plan time; ranges beyond it are never
    /// dispatched, so concurrent appends don't skew the morsel count.
    pub total_slots: usize,
}

impl ChainSpec {
    pub fn n_morsels(&self) -> usize {
        self.total_slots.div_ceil(self.morsel_slots.max(1))
    }

    /// The storage shard a morsel is affine to: the shard owning its first
    /// slot. A morsel larger than a shard unit may spill into other shards
    /// mid-range — affinity is a dispatch heuristic, not a correctness
    /// boundary (`scan_visible_range` handles any range).
    fn shard_of_morsel(&self, m: usize) -> usize {
        self.table.shard_of_index(m * self.morsel_slots.max(1))
    }

    /// The `(node id, OU)` spans this chain accounts for, bottom-up. The
    /// issuing thread creates an `OpSpan` for each so that zero-work spans
    /// are still recorded (preserving the plan's OU set under LIMIT).
    pub fn span_keys(&self) -> Vec<(u32, OuKind)> {
        let mut keys = vec![(self.scan_id, OuKind::SeqScan)];
        if self.block_pred.is_some() {
            keys.push((self.scan_id, OuKind::BlockScan));
        }
        if self.filter.is_some() {
            keys.push((self.scan_id, OuKind::ArithmeticFilter));
        }
        for stage in &self.stages {
            match stage {
                ParStage::Filter { id, .. } | ParStage::Project { id, .. } => {
                    keys.push((*id, OuKind::ArithmeticFilter));
                }
            }
        }
        keys
    }

    /// Evaluate one morsel: scan the slot range with the fused predicate,
    /// then run the stacked stages. Work/time accounting mirrors the serial
    /// operators exactly (same formulas, summed across morsels), so folded
    /// per-(node, OU) feature totals equal the serial engine's.
    fn run_morsel(&self, morsel: usize, acct: &mut WorkerAcct) -> DbResult<Vec<Arc<Tuple>>> {
        let start = morsel * self.morsel_slots;
        let end = (start + self.morsel_slots).min(self.total_slots);
        let mut rows: Vec<Arc<Tuple>> = Vec::new();
        let mut scanned = 0u64;
        let mut scanned_bytes = 0u64;
        let mut filtered = 0u64;
        let mut row_elapsed = 0.0f64;
        let mut pos = start;
        while pos < end {
            // Columnar fast path: serve a clean sealed unit wholesale from
            // its block (morsels are unit-aligned when the knob is on, so a
            // block never straddles morsels). Dirty/unsealed units fall to
            // the row path below, whose per-slot block fallback handles
            // sealed rows among revived chains.
            if let Some(pred) = &self.block_pred {
                if pos.is_multiple_of(SHARD_UNIT_SLOTS) && pos + SHARD_UNIT_SLOTS <= end {
                    let unit = pos / SHARD_UNIT_SLOTS;
                    if let Some(block) = self.table.sealed_unit(unit).filter(|b| !b.is_dirty()) {
                        let t0 = Instant::now();
                        let out = columnar::scan_block(
                            &block,
                            pred,
                            self.filter.as_ref(),
                            self.read_ts,
                            |row| rows.push(Arc::clone(row)),
                        )?;
                        if out.zone_skipped {
                            self.table.note_zone_skip(unit);
                        }
                        if self.track {
                            let s = acct.span(self.scan_id, OuKind::BlockScan);
                            s.work.tuples += out.swept;
                            s.work.bytes += out.bytes;
                            s.work.allocated_bytes += out.bytes;
                            s.elapsed_us += elapsed_us(t0);
                            filtered += out.swept;
                        }
                        pos += SHARD_UNIT_SLOTS;
                        continue;
                    }
                }
            }
            let seg_end = if self.block_pred.is_some() {
                ((pos / SHARD_UNIT_SLOTS + 1) * SHARD_UNIT_SLOTS).min(end)
            } else {
                end
            };
            let mut err: Option<DbError> = None;
            let t0 = Instant::now();
            self.table
                .scan_visible_range(pos, seg_end, self.read_ts, self.own, |_slot, tuple| {
                    if self.track {
                        scanned += 1;
                        scanned_bytes += tuple_size_bytes(tuple) as u64;
                    }
                    let keep = match &self.filter {
                        None => true,
                        Some(ev) => match ev.eval_bool(tuple) {
                            Ok(k) => k,
                            Err(e) => {
                                err = Some(e);
                                return false;
                            }
                        },
                    };
                    if keep {
                        rows.push(Arc::clone(tuple));
                    }
                    true
                });
            row_elapsed += elapsed_us(t0);
            if let Some(e) = err {
                return Err(e);
            }
            pos = seg_end;
        }
        if self.track {
            let scan = acct.span(self.scan_id, OuKind::SeqScan);
            scan.work.tuples += scanned;
            scan.work.bytes += scanned_bytes;
            scan.work.allocated_bytes += scanned_bytes;
            scan.elapsed_us += row_elapsed;
            if self.filter.is_some() {
                // The fused predicate ran inside the scan/block sections;
                // its work lands on the Arithmetic/Filter span with no
                // elapsed time, exactly as the serial fused scan accounts
                // it. Block-swept rows count too (zone-skipped units swept
                // nothing).
                let f = acct.span(self.scan_id, OuKind::ArithmeticFilter);
                f.work.tuples += scanned + filtered;
                f.work.comparisons += (scanned + filtered) * self.filter_ops;
            }
        }
        for stage in &self.stages {
            let t0 = Instant::now();
            match stage {
                ParStage::Filter { id, eval, ops } => {
                    let n_in = rows.len() as u64;
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if eval.eval_bool(&row)? {
                            kept.push(row);
                        }
                    }
                    rows = kept;
                    if self.track {
                        let s = acct.span(*id, OuKind::ArithmeticFilter);
                        s.work.tuples += n_in;
                        s.work.comparisons += n_in * ops;
                        s.elapsed_us += elapsed_us(t0);
                    }
                }
                ParStage::Project { id, evals, ops } => {
                    let n = rows.len() as u64;
                    let mut out = Vec::with_capacity(rows.len());
                    for row in &rows {
                        let projected: Tuple =
                            evals.iter().map(|e| e.eval(row)).collect::<DbResult<_>>()?;
                        out.push(Arc::new(projected));
                    }
                    rows = out;
                    if self.track {
                        let s = acct.span(*id, OuKind::ArithmeticFilter);
                        s.work.tuples += n;
                        s.work.comparisons += n * (*ops).max(1);
                        s.elapsed_us += elapsed_us(t0);
                    }
                }
            }
        }
        Ok(rows)
    }
}

// ----------------------------------------------------------------------
// Ordered gather
// ----------------------------------------------------------------------

enum Msg<T> {
    Morsel(usize, DbResult<T>),
    Done(WorkerAcct),
}

/// Consumer watermark for bounded read-ahead. Workers may claim a morsel at
/// most `window` beyond the last index the consumer has taken; beyond that
/// they block here until the consumer catches up (or the run is cancelled).
/// This bounds gather-buffer memory and makes LIMIT cancellation effective:
/// without it, workers would race through the whole heap while the consumer
/// is still cutting the first morsel.
struct Progress {
    consumed: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl Progress {
    /// The consumer's current watermark (number of morsels taken).
    fn consumed(&self) -> usize {
        *self.consumed.lock().unwrap()
    }

    /// Park until the watermark moves past the value the caller last
    /// observed (`seen`), the run is cancelled, or a timeout tick passes.
    /// Returns `false` only on cancellation. Used by workers that found
    /// every shard either drained or window-blocked: with
    /// admission-*before*-claim, the morsel at the watermark itself is
    /// always claimable (it is its shard's cursor head and within any
    /// window ≥ 1), so some worker always makes progress and parked ones
    /// are woken as the consumer advances.
    fn wait_past(&self, seen: usize, cancel: &AtomicBool) -> bool {
        if cancel.load(Ordering::Relaxed) {
            return false;
        }
        let consumed = self.consumed.lock().unwrap();
        if *consumed != seen {
            return true; // advanced since the caller's scan; rescan now
        }
        // Timed wait: a lost wakeup (cancel racing the notify) costs
        // one timeout tick, not a stuck pool worker.
        let _ = self
            .cv
            .wait_timeout(consumed, std::time::Duration::from_millis(10));
        !cancel.load(Ordering::Relaxed)
    }

    fn advance(&self, consumed: usize) {
        *self.consumed.lock().unwrap() = consumed;
        self.cv.notify_all();
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// One parallel chain execution in flight. Workers race down the morsel
/// cursor and send `(morsel index, result)` messages; the issuing thread
/// pulls them with [`ParallelRun::next_morsel`], which buffers out-of-order
/// arrivals and yields strictly in morsel order — the ordered gather that
/// makes parallel output byte-identical to serial. `finish` cancels
/// outstanding work (LIMIT early-cut) and collects every worker's
/// accounting.
pub(crate) struct ParallelRun<T> {
    rx: Receiver<Msg<T>>,
    buffered: BTreeMap<usize, DbResult<T>>,
    next: usize,
    n_morsels: usize,
    jobs: usize,
    done_jobs: usize,
    acct: WorkerAcct,
    cancel: Arc<AtomicBool>,
    progress: Arc<Progress>,
}

/// Launch a parallel chain on `pool`. `consume` runs on the worker for each
/// morsel's filtered/projected rows (breakers use it to build per-morsel
/// partial state); its output travels to the issuing thread through the
/// ordered gather.
pub(crate) fn start<T, F>(pool: &ExecPool, chain: Arc<ChainSpec>, consume: F) -> ParallelRun<T>
where
    T: Send + 'static,
    F: Fn(&ChainSpec, Vec<Arc<Tuple>>, &mut WorkerAcct) -> DbResult<T> + Send + Sync + 'static,
{
    let n_morsels = chain.n_morsels();
    let jobs = pool.workers().min(n_morsels);
    // Read-ahead window: enough that no worker idles waiting on the
    // consumer in steady state, small enough that LIMIT cancellation cuts
    // most of the heap.
    let window = jobs * 2;
    let (tx, rx) = channel::<Msg<T>>();
    let cancel = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(Progress {
        consumed: std::sync::Mutex::new(0),
        cv: std::sync::Condvar::new(),
    });
    // Shard-affine dispatch: bucket morsels by the storage shard that owns
    // their first slot. Each bucket keeps ascending morsel order and gets
    // its own cursor; a worker drains its preferred shard's cursor and
    // steals from the next shard (round-robin) only when its own is
    // drained or window-blocked.
    let n_shards = chain.table.shard_count().max(1);
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for m in 0..n_morsels {
        lists[chain.shard_of_morsel(m)].push(m);
    }
    let lists = Arc::new(lists);
    let positions: Arc<Vec<AtomicUsize>> =
        Arc::new((0..n_shards).map(|_| AtomicUsize::new(0)).collect());
    let consume = Arc::new(consume);
    for j in 0..jobs {
        let chain = Arc::clone(&chain);
        let tx = tx.clone();
        let cancel = Arc::clone(&cancel);
        let lists = Arc::clone(&lists);
        let positions = Arc::clone(&positions);
        let progress = Arc::clone(&progress);
        let consume = Arc::clone(&consume);
        let obs = Arc::clone(&pool.obs);
        let preferred = j % n_shards;
        pool.submit(Box::new(move |worker| {
            let mut acct = WorkerAcct::default();
            loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                // Admission before claim: a morsel is only claimed once it
                // is inside the read-ahead window. Claimed morsels form a
                // prefix of each shard's ascending list, so the unclaimed
                // morsel at the consumer watermark is always its shard's
                // cursor head and within any window ≥ 1 — some worker can
                // always claim it, which gives the liveness argument for
                // parking in `wait_past` below.
                let consumed = progress.consumed();
                let mut any_blocked = false;
                let mut claimed = None;
                'shards: for k in 0..n_shards {
                    let s = (preferred + k) % n_shards;
                    let list = &lists[s];
                    loop {
                        let pos = positions[s].load(Ordering::Relaxed);
                        if pos >= list.len() {
                            break;
                        }
                        let m = list[pos];
                        if m >= consumed + window {
                            any_blocked = true;
                            break;
                        }
                        if positions[s]
                            .compare_exchange(pos, pos + 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            if k > 0 {
                                obs.morsel_stolen(worker);
                            }
                            claimed = Some(m);
                            break 'shards;
                        }
                    }
                }
                match claimed {
                    Some(m) => {
                        let res = chain
                            .run_morsel(m, &mut acct)
                            .and_then(|rows| consume(&chain, rows, &mut acct));
                        obs.morsel_done(worker);
                        let failed = res.is_err();
                        if tx.send(Msg::Morsel(m, res)).is_err() || failed {
                            break;
                        }
                    }
                    // Every shard drained: all morsels claimed, nothing left.
                    None if !any_blocked => break,
                    // Window-blocked everywhere: park until the consumer
                    // advances (or cancellation).
                    None => {
                        if !progress.wait_past(consumed, &cancel) {
                            break;
                        }
                    }
                }
            }
            let _ = tx.send(Msg::Done(acct));
        }));
    }
    ParallelRun {
        rx,
        buffered: BTreeMap::new(),
        next: 0,
        n_morsels,
        jobs,
        done_jobs: 0,
        acct: WorkerAcct::default(),
        cancel,
        progress,
    }
}

impl<T> ParallelRun<T> {
    /// The next morsel's result, in morsel order. `None` = all morsels
    /// yielded. After an `Err` the run is cancelled; callers should stop
    /// pulling and let `finish`/drop clean up.
    pub fn next_morsel(&mut self) -> Option<DbResult<T>> {
        while self.next < self.n_morsels {
            if let Some(res) = self.buffered.remove(&self.next) {
                self.next += 1;
                if res.is_err() {
                    self.cancel.store(true, Ordering::Relaxed);
                }
                self.progress.advance(self.next);
                return Some(res);
            }
            match self.rx.recv() {
                Ok(Msg::Morsel(idx, res)) => {
                    self.buffered.insert(idx, res);
                }
                Ok(Msg::Done(acct)) => {
                    self.done_jobs += 1;
                    self.acct.fold(acct);
                }
                Err(_) => {
                    // Every worker exited without producing morsel `next`:
                    // some earlier morsel failed. Surface the first error.
                    self.next = self.n_morsels;
                    let err = self
                        .buffered
                        .values()
                        .find_map(|r| r.as_ref().err().cloned())
                        .unwrap_or_else(|| {
                            DbError::Execution("parallel scan worker vanished".into())
                        });
                    return Some(Err(err));
                }
            }
        }
        None
    }

    /// Cancel outstanding morsels and collect all workers' accounting. Must
    /// be called exactly once, at operator close (also safe after natural
    /// exhaustion — workers past the cursor end are already done).
    pub fn finish(mut self) -> WorkerAcct {
        self.cancel.store(true, Ordering::Relaxed);
        self.progress.wake_all();
        while self.done_jobs < self.jobs {
            match self.rx.recv() {
                Ok(Msg::Done(acct)) => {
                    self.done_jobs += 1;
                    self.acct.fold(acct);
                }
                Ok(Msg::Morsel(..)) => {}
                Err(_) => break,
            }
        }
        std::mem::take(&mut self.acct)
    }
}

impl<T> Drop for ParallelRun<T> {
    /// A run abandoned without `finish` (error propagation drops the
    /// operator) must still cancel, or workers parked on the read-ahead
    /// window would wait forever for a consumer that is gone.
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Relaxed);
        self.progress.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_jobs_on_all_workers_and_joins_on_drop() {
        let pool = ExecPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel();
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..32 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        drop(pool); // joins workers; must not hang
    }

    #[test]
    fn pool_registers_metrics() {
        let registry = MetricsRegistry::new();
        let pool = ExecPool::with_metrics(3, &registry);
        let (tx, rx) = channel();
        pool.submit(Box::new(move |_| {
            tx.send(()).unwrap();
        }));
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|s| s.family.clone())
            .collect();
        assert!(names.iter().any(|n| n == "mb2_exec_pool_workers"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_busy_workers"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_queue_depth"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_morsels_total"));
    }

    /// A parallel chain over a sharded table must gather rows in global
    /// slot order — identical to the serial scan and to a 1-shard table —
    /// while dispatch runs shard-affine (per-shard cursors, stealing only
    /// across drained shards).
    #[test]
    fn sharded_chain_gathers_in_global_slot_order() {
        use mb2_common::schema::{Column, Schema};
        use mb2_common::types::{DataType, Value};
        use mb2_storage::TableId;

        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let n_rows = 3 * mb2_storage::SHARD_UNIT_SLOTS + 123;
        let mk = |shards: usize| {
            let t = Arc::new(Table::with_shards(TableId(1), "t", schema.clone(), shards));
            for i in 0..n_rows {
                let slot = t.insert(vec![Value::Int(i as i64)], Ts::txn(1)).unwrap();
                t.commit_slot(slot, Ts::txn(1), Ts(2), 1);
            }
            t
        };
        let run = |table: Arc<Table>| -> Vec<i64> {
            let pool = ExecPool::new(4);
            let chain = Arc::new(ChainSpec {
                table,
                read_ts: Ts(10),
                own: Ts::txn(99),
                scan_id: 0,
                filter: None,
                filter_ops: 0,
                block_pred: None,
                stages: vec![],
                track: false,
                morsel_slots: 64,
                total_slots: n_rows,
            });
            let mut rows = Vec::new();
            let mut par = start(&pool, chain, |_, batch, _| Ok(batch));
            while let Some(res) = par.next_morsel() {
                for row in res.unwrap() {
                    match row[0] {
                        Value::Int(v) => rows.push(v),
                        _ => unreachable!(),
                    }
                }
            }
            par.finish();
            rows
        };
        let oracle = run(mk(1));
        assert_eq!(oracle, (0..n_rows as i64).collect::<Vec<_>>());
        for shards in [2, 3, 8] {
            assert_eq!(run(mk(shards)), oracle, "shard_count={shards}");
        }
    }

    #[test]
    fn worker_acct_folds_by_key() {
        let mut a = WorkerAcct::default();
        a.span(1, OuKind::SeqScan).work.tuples = 10;
        a.span(1, OuKind::SeqScan).elapsed_us = 5.0;
        let mut b = WorkerAcct::default();
        b.span(1, OuKind::SeqScan).work.tuples = 7;
        b.span(1, OuKind::SeqScan).elapsed_us = 2.0;
        b.span(2, OuKind::ArithmeticFilter).work.comparisons = 3;
        a.fold(b);
        let s = a.get(1, OuKind::SeqScan).unwrap();
        assert_eq!(s.work.tuples, 17);
        assert!((s.elapsed_us - 7.0).abs() < 1e-9);
        assert_eq!(
            a.get(2, OuKind::ArithmeticFilter).unwrap().work.comparisons,
            3
        );
    }
}
