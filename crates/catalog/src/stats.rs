//! Table and column statistics for cardinality estimation.

use std::collections::HashSet;

use mb2_storage::{Table, Ts};

/// Per-column statistics.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Approximate number of distinct values.
    pub distinct: usize,
    /// Minimum numeric value (for range selectivity); None for non-numeric.
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Fraction of NULLs.
    pub null_fraction: f64,
    /// Average value width in bytes.
    pub avg_width: f64,
}

/// Whole-table statistics.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn empty(n_cols: usize) -> TableStats {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStats::default(); n_cols],
        }
    }

    /// Compute statistics with a full visible scan at `read_ts`.
    pub fn compute(table: &Table, read_ts: Ts) -> TableStats {
        let n_cols = table.schema().len();
        let mut rows = 0usize;
        let mut distinct: Vec<HashSet<u64>> = vec![HashSet::new(); n_cols];
        let mut nulls = vec![0usize; n_cols];
        let mut width = vec![0usize; n_cols];
        let mut min = vec![f64::INFINITY; n_cols];
        let mut max = vec![f64::NEG_INFINITY; n_cols];
        // Txn id 0 is never allocated, so the scan sees committed data only.
        table.scan_visible(read_ts, Ts::txn(0), |_, tuple| {
            rows += 1;
            for (c, v) in tuple.iter().enumerate() {
                width[c] += v.size_bytes();
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                v.hash(&mut hasher);
                distinct[c].insert(hasher.finish());
                if let Ok(x) = v.as_f64() {
                    min[c] = min[c].min(x);
                    max[c] = max[c].max(x);
                }
            }
            true
        });
        let columns = (0..n_cols)
            .map(|c| ColumnStats {
                distinct: distinct[c].len(),
                min: min[c].is_finite().then_some(min[c]),
                max: max[c].is_finite().then_some(max[c]),
                null_fraction: if rows == 0 {
                    0.0
                } else {
                    nulls[c] as f64 / rows as f64
                },
                avg_width: if rows == 0 {
                    0.0
                } else {
                    width[c] as f64 / rows as f64
                },
            })
            .collect();
        TableStats {
            row_count: rows,
            columns,
        }
    }

    /// Estimated selectivity of an equality predicate on `column`.
    pub fn eq_selectivity(&self, column: usize) -> f64 {
        match self.columns.get(column) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 0.1, // default guess without statistics
        }
    }

    /// Estimated selectivity of a range predicate `lo <= col <= hi` (either
    /// bound optional) assuming a uniform distribution.
    pub fn range_selectivity(&self, column: usize, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let Some(c) = self.columns.get(column) else {
            return 0.3;
        };
        let (Some(cmin), Some(cmax)) = (c.min, c.max) else {
            return 0.3;
        };
        if cmax <= cmin {
            return 1.0;
        }
        let lo = lo.unwrap_or(cmin).max(cmin);
        let hi = hi.unwrap_or(cmax).min(cmax);
        if hi < lo {
            return 0.0;
        }
        ((hi - lo) / (cmax - cmin)).clamp(0.0, 1.0)
    }

    /// Estimated number of distinct values on `column`, floor 1.
    pub fn distinct_of(&self, column: usize) -> usize {
        self.columns.get(column).map_or(1, |c| c.distinct.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Schema, Value};
    use mb2_storage::TableId;

    fn table_with_rows(n: i64) -> Table {
        let t = Table::new(
            TableId(1),
            "t",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("maybe", DataType::Int),
            ]),
        );
        for i in 0..n {
            let maybe = if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            let slot = t
                .insert(vec![Value::Int(i), Value::Int(i % 7), maybe], Ts::txn(1))
                .unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(2), 1);
        }
        t
    }

    #[test]
    fn compute_counts_and_distincts() {
        let t = table_with_rows(100);
        let stats = TableStats::compute(&t, Ts(2));
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[0].distinct, 100);
        assert_eq!(stats.columns[1].distinct, 7);
        assert!((stats.columns[2].null_fraction - 0.25).abs() < 1e-9);
        assert_eq!(stats.columns[0].min, Some(0.0));
        assert_eq!(stats.columns[0].max, Some(99.0));
    }

    #[test]
    fn selectivities() {
        let t = table_with_rows(100);
        let stats = TableStats::compute(&t, Ts(2));
        assert!((stats.eq_selectivity(1) - 1.0 / 7.0).abs() < 1e-9);
        let sel = stats.range_selectivity(0, Some(0.0), Some(49.0));
        assert!((sel - 49.0 / 99.0).abs() < 1e-9);
        assert_eq!(stats.range_selectivity(0, Some(200.0), None), 0.0);
        assert_eq!(stats.range_selectivity(0, None, None), 1.0);
    }

    #[test]
    fn empty_table_defaults() {
        let stats = TableStats::empty(2);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.eq_selectivity(0), 0.1);
        assert_eq!(stats.range_selectivity(0, Some(1.0), None), 0.3);
        assert_eq!(stats.distinct_of(1), 1);
    }
}
