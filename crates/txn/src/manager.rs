//! MVCC transaction manager.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mb2_common::types::Tuple;
use mb2_common::{fault, DbError, DbResult, FaultInjector};
use mb2_obs::{Counter, Gauge, MetricsRegistry};
use mb2_storage::{SlotId, Table, Ts};
use mb2_wal::{LogManager, LogRecord};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// One entry in a transaction's write set, kept for commit stamping and
/// abort rollback.
enum WriteOp {
    Insert { table: Arc<Table>, slot: SlotId },
    Update { table: Arc<Table>, slot: SlotId },
    Delete { table: Arc<Table>, slot: SlotId },
}

/// A transaction handle. Not `Sync`: a transaction belongs to one worker
/// thread, as in NoisePage.
pub struct Transaction {
    id: Ts,
    read_ts: Ts,
    state: TxnState,
    writes: Vec<WriteOp>,
    mgr: Arc<TxnManager>,
}

impl Transaction {
    /// This transaction's id timestamp (high bit set).
    pub fn id(&self) -> Ts {
        self.id
    }

    /// Snapshot timestamp for reads.
    pub fn read_ts(&self) -> Ts {
        self.read_ts
    }

    pub fn state(&self) -> TxnState {
        self.state
    }

    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    fn check_active(&self) -> DbResult<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(DbError::TxnClosed)
        }
    }

    /// The raw transaction id for WAL records. Every transaction is built
    /// with `Ts::txn`, so this cannot fail in practice — but a server must
    /// not panic a worker over a malformed id, so it surfaces as a
    /// [`DbError::Storage`] instead of an `expect`.
    fn wal_txn_id(&self) -> DbResult<u64> {
        self.id.txn_id().ok_or_else(|| {
            DbError::Storage(format!("transaction id {:?} is not a txn ts", self.id))
        })
    }

    /// Read the version of `slot` visible to this transaction.
    pub fn read(&self, table: &Table, slot: SlotId) -> Option<Arc<Tuple>> {
        table.read(slot, self.read_ts, self.id)
    }

    /// Insert a tuple; the write is logged (with its assigned slot, for
    /// redo-only recovery) and tracked for commit/abort.
    pub fn insert(&mut self, table: &Arc<Table>, tuple: Tuple) -> DbResult<SlotId> {
        self.check_active()?;
        let logged = self.mgr.wal.as_ref().map(|_| tuple.clone());
        let slot = table.insert(tuple, self.id)?;
        // Track the write before logging so that if the append fails (e.g.
        // the WAL is poisoned) the abort path rolls this insert back too.
        self.writes.push(WriteOp::Insert {
            table: table.clone(),
            slot,
        });
        if let (Some(wal), Some(tuple)) = (&self.mgr.wal, logged) {
            wal.append(&LogRecord::Insert {
                txn_id: self.wal_txn_id()?,
                table_id: table.id.0,
                slot: (slot.segment as u64) << 32 | slot.offset as u64,
                tuple,
            })?;
        }
        Ok(slot)
    }

    /// Update a tuple in place (installs a new version).
    pub fn update(
        &mut self,
        table: &Arc<Table>,
        slot: SlotId,
        tuple: Tuple,
    ) -> DbResult<Arc<Tuple>> {
        self.check_active()?;
        if let Some(wal) = &self.mgr.wal {
            wal.append(&LogRecord::Update {
                txn_id: self.wal_txn_id()?,
                table_id: table.id.0,
                slot: (slot.segment as u64) << 32 | slot.offset as u64,
                tuple: tuple.clone(),
            })?;
        }
        let old = table.update(slot, tuple, self.id, self.read_ts)?;
        self.writes.push(WriteOp::Update {
            table: table.clone(),
            slot,
        });
        Ok(old)
    }

    /// Delete a tuple (installs a tombstone).
    pub fn delete(&mut self, table: &Arc<Table>, slot: SlotId) -> DbResult<Arc<Tuple>> {
        self.check_active()?;
        if let Some(wal) = &self.mgr.wal {
            wal.append(&LogRecord::Delete {
                txn_id: self.wal_txn_id()?,
                table_id: table.id.0,
                slot: (slot.segment as u64) << 32 | slot.offset as u64,
            })?;
        }
        let old = table.delete(slot, self.id, self.read_ts)?;
        self.writes.push(WriteOp::Delete {
            table: table.clone(),
            slot,
        });
        Ok(old)
    }

    /// Commit: acquire a commit timestamp and stamp every written version.
    pub fn commit(self) -> DbResult<Ts> {
        self.check_active()?;
        let mgr = self.mgr.clone();
        let commit_ts = mgr.finish_begin_commit(self, true)?;
        Ok(commit_ts)
    }

    /// Abort: unlink every written version.
    pub fn abort(mut self) {
        if self.state != TxnState::Active {
            return;
        }
        let _ = self.mgr.clone().finish_abort(&mut self);
        self.state = TxnState::Aborted;
        std::mem::forget(self); // cleanup already done
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            // Implicit rollback on drop.
            let mgr = self.mgr.clone();
            let _ = mgr.finish_abort(self);
            self.state = TxnState::Aborted;
        }
    }
}

/// Transaction lifecycle counters, registry-backed (`mb2_txn_*` families)
/// so an engine scrape sees them alongside every other subsystem.
#[derive(Debug)]
pub struct TxnStats {
    pub begins: Arc<Counter>,
    pub commits: Arc<Counter>,
    pub aborts: Arc<Counter>,
    /// In-flight transactions right now.
    pub active: Arc<Gauge>,
}

impl TxnStats {
    pub fn new(registry: &MetricsRegistry) -> TxnStats {
        TxnStats {
            begins: registry.counter("mb2_txn_begins_total", "Transactions begun."),
            commits: registry.counter("mb2_txn_commits_total", "Transactions committed."),
            aborts: registry.counter("mb2_txn_aborts_total", "Transactions aborted."),
            active: registry.gauge("mb2_txn_active", "In-flight transactions."),
        }
    }
}

impl Default for TxnStats {
    /// A stats block backed by a private registry (unit tests, standalone
    /// managers).
    fn default() -> Self {
        TxnStats::new(&MetricsRegistry::new())
    }
}

/// Number of commit-lock stripes. Commit locks are sharded by the write
/// set's (table, storage-shard) footprint so commits touching disjoint
/// shards stamp concurrently; stripes fold that unbounded footprint space
/// into a fixed lock array (collisions merely merge two shards onto one
/// lock, which is always safe).
pub const COMMIT_LOCK_STRIPES: usize = 64;

/// The transaction manager: timestamp allocation plus the shared
/// active-transactions table (the contention point the Txn Begin/Commit OUs
/// model).
pub struct TxnManager {
    /// The *publish frontier*: the highest commit timestamp whose
    /// transaction (and every transaction with a smaller timestamp) is
    /// fully stamped. Snapshots read this, never `alloc`.
    clock: AtomicU64,
    /// Commit-timestamp ticket allocator. Runs ahead of `clock` while
    /// commits are stamping; the ticket-ordered publish in
    /// `finish_begin_commit` closes the gap.
    alloc: AtomicU64,
    next_txn_id: AtomicU64,
    /// Sharded stamp-then-publish locks: a commit locks the stripes its
    /// write-set footprint covers (ascending order — deadlock-free), stamps
    /// every slot, then publishes. Single-shard commits — the TATP/
    /// SmallBank common case — take exactly one stripe.
    commit_locks: Vec<Mutex<()>>,
    /// Multiset of active snapshot timestamps, for the GC watermark.
    active: Mutex<BTreeMap<u64, usize>>,
    pub wal: Option<Arc<LogManager>>,
    pub stats: TxnStats,
    /// Fault injection for chaos tests (`txn.commit` point, consulted inside
    /// the commit critical section); `None` in production.
    faults: Mutex<Option<Arc<FaultInjector>>>,
}

fn commit_locks() -> Vec<Mutex<()>> {
    (0..COMMIT_LOCK_STRIPES).map(|_| Mutex::new(())).collect()
}

impl TxnManager {
    pub fn new(wal: Option<Arc<LogManager>>) -> Arc<TxnManager> {
        Arc::new(TxnManager {
            clock: AtomicU64::new(1),
            alloc: AtomicU64::new(1),
            next_txn_id: AtomicU64::new(1),
            commit_locks: commit_locks(),
            active: Mutex::new(BTreeMap::new()),
            wal,
            stats: TxnStats::default(),
            faults: Mutex::new(None),
        })
    }

    /// Like [`TxnManager::new`], but publishing lifecycle counters into the
    /// given registry instead of a private one.
    pub fn with_metrics(
        wal: Option<Arc<LogManager>>,
        registry: &MetricsRegistry,
    ) -> Arc<TxnManager> {
        Arc::new(TxnManager {
            clock: AtomicU64::new(1),
            alloc: AtomicU64::new(1),
            next_txn_id: AtomicU64::new(1),
            commit_locks: commit_locks(),
            active: Mutex::new(BTreeMap::new()),
            wal,
            stats: TxnStats::new(registry),
            faults: Mutex::new(None),
        })
    }

    /// The commit-lock stripe for one write: (table, storage shard) hashed
    /// into the stripe array. All writes to one shard of one table land on
    /// one stripe, so a shard-local transaction locks exactly one stripe.
    fn stripe_of(op: &WriteOp) -> usize {
        let (table, slot) = match op {
            WriteOp::Insert { table, slot }
            | WriteOp::Update { table, slot }
            | WriteOp::Delete { table, slot } => (table, *slot),
        };
        (table.id.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(table.shard_of(slot))
            % COMMIT_LOCK_STRIPES
    }

    /// Attach (or detach) a fault injector consulted at the `txn.commit`
    /// point, inside the commit critical section: an armed delay there holds
    /// the commit's stripe locks; an armed failure aborts the commit before
    /// any version is stamped.
    pub fn set_faults(&self, faults: Option<Arc<FaultInjector>>) {
        *self.faults.lock() = faults;
    }

    /// Current committed timestamp.
    pub fn now(&self) -> Ts {
        Ts(self.clock.load(Ordering::Acquire))
    }

    /// Begin a new transaction with a snapshot at the current timestamp.
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let id = self.next_txn_id.fetch_add(1, Ordering::AcqRel);
        // The clock must be read while holding the active-set lock. Read
        // first and register after, and GC can slip into the gap: a commit
        // advances the clock, `watermark()` sees no active snapshots and
        // returns the new clock, and the pruner reclaims the exact version
        // this snapshot (still unregistered, pinned below the new clock)
        // needs — rows vanish from its scans. With the lock held across
        // both steps, any watermark computed before our registration used
        // a clock value ≤ our read_ts, so nothing visible to us is
        // reclaimable.
        let read_ts = {
            let mut active = self.active.lock();
            let read_ts = self.clock.load(Ordering::Acquire);
            *active.entry(read_ts).or_insert(0) += 1;
            read_ts
        };
        self.stats.begins.inc();
        self.stats.active.inc();
        if let Some(wal) = &self.wal {
            // Deliberately ignore append failure: a poisoned WAL must not
            // prevent read-only transactions (the engine degrades to
            // read-only, not to unavailable). Any write this transaction
            // attempts will hit the same latched error and fail there.
            let _ = wal.append(&LogRecord::Begin { txn_id: id });
        }
        Transaction {
            id: Ts::txn(id),
            read_ts: Ts(read_ts),
            state: TxnState::Active,
            writes: Vec::new(),
            mgr: self.clone(),
        }
    }

    fn deregister(&self, read_ts: Ts) {
        let mut active = self.active.lock();
        if let Some(count) = active.get_mut(&read_ts.0) {
            *count -= 1;
            if *count == 0 {
                active.remove(&read_ts.0);
            }
        }
        drop(active);
        self.stats.active.dec();
    }

    fn finish_begin_commit(&self, mut txn: Transaction, log: bool) -> DbResult<Ts> {
        let faults = self.faults.lock().clone();
        // Chaos point (failure half): must trip *before* the durability
        // point below — once a Commit record is on disk the transaction
        // replays as committed, so failing after it would fabricate a
        // phantom commit. Returning Err drops `txn`, whose Drop unwinds
        // the (entirely unstamped) write set.
        if let Some(inj) = &faults {
            if let Some(msg) = inj.trip(fault::points::TXN_COMMIT) {
                return Err(DbError::Execution(msg));
            }
        }
        // Durability point: the commit record must be accepted by the WAL
        // (and, under sync_commit, be flushed to disk) *before* any version
        // is stamped visible. If logging fails, `txn` is dropped here and
        // its Drop impl aborts, unwinding every write — the commit was never
        // reported durable, and it never becomes visible.
        if log {
            if let Some(wal) = &self.wal {
                let commit = LogRecord::Commit {
                    txn_id: txn.wal_txn_id()?,
                };
                if txn.writes.is_empty() {
                    // Read-only: nothing needs to become durable, so a
                    // poisoned WAL must not fail the commit (the engine
                    // degrades to read-only, not to unavailable).
                    let _ = wal.append(&commit);
                } else {
                    let seq = wal.append_seq(&commit)?;
                    if wal.config().sync_commit {
                        if let Err(e) = wal.flush_now() {
                            // The flush call failing does not by itself
                            // mean the commit record is not on disk: a
                            // group-commit rider may have durably flushed
                            // it before a later batch poisoned the log.
                            // Reporting an abort then would fabricate a
                            // phantom — recovery replays the durable
                            // Commit while the client was told it failed.
                            // The durable watermark disambiguates: at or
                            // below it, the commit IS durable and must be
                            // acknowledged as such.
                            if wal.durable_seq() < seq {
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
        // Stamp-then-publish over the *sharded* commit locks. The clock
        // (publish frontier) must not advance past `commit_ts` until every
        // slot is stamped: a snapshot taken mid-stamping would otherwise see
        // the stamped half of the write set and miss the rest (a torn
        // commit). Sharding splits that into three steps:
        //
        //   1. Lock the write set's stripe footprint in ascending stripe
        //      order (cross-shard commits lock several stripes; ordered
        //      acquisition makes the lock graph acyclic, so no deadlock).
        //   2. Allocate a commit-timestamp *ticket* from `alloc` and stamp
        //      every slot. Tickets are only taken while holding the full
        //      footprint, so a ticket holder never waits on a lock.
        //   3. Publish in ticket order: wait until `clock == ticket - 1`
        //      (every earlier ticket fully stamped and published), then
        //      advance it to the ticket. The minimum outstanding ticket can
        //      always finish (nothing blocks stamping; its predecessor has
        //      published), so the chain always drains.
        //
        // Snapshot atomicity is preserved exactly as with the old global
        // lock: `begin` reads the frontier, and frontier ≥ ts implies every
        // commit with timestamp ≤ ts is fully stamped.
        let commit_ts = {
            let mut stripes: Vec<usize> = txn.writes.iter().map(Self::stripe_of).collect();
            stripes.sort_unstable();
            stripes.dedup();
            let _guards: Vec<_> = stripes
                .iter()
                .map(|&s| self.commit_locks[s].lock())
                .collect();
            // Chaos point (stall half): a delay armed at `txn.commit` is
            // applied here, holding this commit's stripe locks so
            // committers sharing a shard pile up behind this one. The
            // ticket is allocated *after* the stall, so commits on other
            // shards publish freely past a stalled one.
            if let Some(inj) = &faults {
                inj.stall(fault::points::TXN_COMMIT);
            }
            let commit_ts = Ts(self.alloc.fetch_add(1, Ordering::AcqRel) + 1);
            for op in &txn.writes {
                match op {
                    WriteOp::Insert { table, slot } => {
                        table.commit_slot(*slot, txn.id, commit_ts, 1)
                    }
                    WriteOp::Update { table, slot } => {
                        table.commit_slot(*slot, txn.id, commit_ts, 0)
                    }
                    WriteOp::Delete { table, slot } => {
                        table.commit_slot(*slot, txn.id, commit_ts, -1)
                    }
                }
            }
            // Ticket-ordered publish. The wait is a yield-spin: the gap is
            // at most the stamping time of the in-flight predecessors.
            let prev = commit_ts.0 - 1;
            while self.clock.load(Ordering::Acquire) != prev {
                std::thread::yield_now();
            }
            self.clock.store(commit_ts.0, Ordering::Release);
            commit_ts
        };
        self.deregister(txn.read_ts);
        self.stats.commits.inc();
        txn.state = TxnState::Committed;
        txn.writes.clear();
        std::mem::forget(txn); // cleanup done; skip Drop's abort path
        Ok(commit_ts)
    }

    fn finish_abort(&self, txn: &mut Transaction) -> DbResult<()> {
        // Roll back newest-first so chains unwind cleanly.
        for op in txn.writes.iter().rev() {
            match op {
                WriteOp::Insert { table, slot }
                | WriteOp::Update { table, slot }
                | WriteOp::Delete { table, slot } => table.abort_slot(*slot, txn.id),
            }
        }
        txn.writes.clear();
        if let (Some(wal), Some(txn_id)) = (&self.wal, txn.id.txn_id()) {
            // Best effort: if the WAL is poisoned the Abort record is lost,
            // but recovery discards transactions without a Commit record
            // anyway, so the outcome is identical.
            let _ = wal.append(&LogRecord::Abort { txn_id });
        }
        self.deregister(txn.read_ts);
        self.stats.aborts.inc();
        Ok(())
    }

    /// Oldest snapshot still in use — versions older than this are
    /// reclaimable. Falls back to the current clock when idle.
    pub fn watermark(&self) -> Ts {
        let active = self.active.lock();
        match active.keys().next() {
            Some(&oldest) => Ts(oldest),
            None => self.now(),
        }
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Schema, Value};
    use mb2_storage::TableId;

    fn table() -> Arc<Table> {
        Arc::new(Table::new(
            TableId(1),
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        ))
    }

    fn tup(v: i64) -> Tuple {
        vec![Value::Int(v)]
    }

    #[test]
    fn committed_insert_visible_to_later_txn() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut txn = mgr.begin();
        let slot = txn.insert(&t, tup(7)).unwrap();
        txn.commit().unwrap();
        let reader = mgr.begin();
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(7));
    }

    #[test]
    fn uncommitted_insert_invisible_to_concurrent_txn() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut writer = mgr.begin();
        let slot = writer.insert(&t, tup(7)).unwrap();
        let reader = mgr.begin();
        assert!(reader.read(&t, slot).is_none());
        writer.commit().unwrap();
        // Reader's snapshot predates the commit.
        assert!(reader.read(&t, slot).is_none());
    }

    /// Torn-commit regression: a snapshot taken while a multi-slot commit
    /// is stamping must see either all of the transaction's writes or none
    /// — never a prefix. Before the stamp-then-publish ordering, the clock
    /// advanced first, so a concurrent `begin` could observe half a
    /// transfer.
    #[test]
    fn multi_slot_commit_is_atomic_under_concurrent_snapshots() {
        use std::sync::atomic::AtomicBool;

        let mgr = TxnManager::new(None);
        let t = table();
        let mut setup = mgr.begin();
        let a = setup.insert(&t, tup(100)).unwrap();
        let b = setup.insert(&t, tup(100)).unwrap();
        setup.commit().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let mgr = mgr.clone();
            let t = t.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Transfer 1 from a to b: invariant sum stays 200.
                    let mut txn = mgr.begin();
                    let va = txn.read(&t, a).unwrap()[0].clone();
                    let vb = txn.read(&t, b).unwrap()[0].clone();
                    let (Value::Int(va), Value::Int(vb)) = (va, vb) else {
                        panic!("non-int balance")
                    };
                    if txn.update(&t, a, tup(va - 1)).is_err() {
                        txn.abort();
                        continue;
                    }
                    if txn.update(&t, b, tup(vb + 1)).is_err() {
                        txn.abort();
                        continue;
                    }
                    let _ = txn.commit();
                }
            })
        };

        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
        while std::time::Instant::now() < deadline {
            let reader = mgr.begin();
            let va = reader.read(&t, a).unwrap()[0].clone();
            let vb = reader.read(&t, b).unwrap()[0].clone();
            let (Value::Int(va), Value::Int(vb)) = (va, vb) else {
                panic!("non-int balance")
            };
            assert_eq!(va + vb, 200, "snapshot saw a torn commit: {va} + {vb}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    /// Cross-shard variant of the torn-commit regression: the two slots of
    /// the transfer live on *different storage shards* of a partitioned
    /// table, so the commit locks two stripes and stamps across shards.
    /// Snapshots must still see all of the transfer or none of it, and
    /// concurrent single-shard commits must not tear it either.
    #[test]
    fn cross_shard_commit_is_atomic_under_concurrent_snapshots() {
        use mb2_storage::SHARD_UNIT_SLOTS;
        use std::sync::atomic::AtomicBool;

        let mgr = TxnManager::new(None);
        let t = Arc::new(Table::with_shards(
            TableId(7),
            "sharded",
            Schema::new(vec![Column::new("a", DataType::Int)]),
            4,
        ));
        // Fill one full shard unit so the next insert lands on shard 1.
        let mut setup = mgr.begin();
        let a = setup.insert(&t, tup(100)).unwrap(); // global idx 0 → shard 0
        for _ in 1..SHARD_UNIT_SLOTS {
            setup.insert(&t, tup(0)).unwrap();
        }
        let b = setup.insert(&t, tup(100)).unwrap(); // global idx U → shard 1
        setup.commit().unwrap();
        assert_ne!(t.shard_of(a), t.shard_of(b), "transfer must cross shards");

        let stop = Arc::new(AtomicBool::new(false));
        // Cross-shard transfer writer: invariant a + b == 200.
        let writer = {
            let (mgr, t, stop) = (mgr.clone(), t.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = mgr.begin();
                    let va = txn.read(&t, a).unwrap()[0].as_i64().unwrap();
                    let vb = txn.read(&t, b).unwrap()[0].as_i64().unwrap();
                    if txn.update(&t, a, tup(va - 1)).is_err() {
                        txn.abort();
                        continue;
                    }
                    if txn.update(&t, b, tup(vb + 1)).is_err() {
                        txn.abort();
                        continue;
                    }
                    let _ = txn.commit();
                }
            })
        };
        // Single-shard churn on shard 2, publishing tickets concurrently.
        let churn = {
            let (mgr, t, stop) = (mgr.clone(), t.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut setup = mgr.begin();
                for _ in 0..SHARD_UNIT_SLOTS {
                    setup.insert(&t, tup(0)).unwrap();
                }
                let c = setup.insert(&t, tup(0)).unwrap(); // shard 2
                setup.commit().unwrap();
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let mut txn = mgr.begin();
                    if txn.update(&t, c, tup(i)).is_ok() {
                        let _ = txn.commit();
                    } else {
                        txn.abort();
                    }
                }
            })
        };

        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
        while std::time::Instant::now() < deadline {
            let reader = mgr.begin();
            let va = reader.read(&t, a).unwrap()[0].as_i64().unwrap();
            let vb = reader.read(&t, b).unwrap()[0].as_i64().unwrap();
            assert_eq!(va + vb, 200, "snapshot saw a torn cross-shard commit");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        churn.join().unwrap();
    }

    #[test]
    fn abort_rolls_back_all_writes() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut setup = mgr.begin();
        let slot = setup.insert(&t, tup(1)).unwrap();
        setup.commit().unwrap();

        let mut txn = mgr.begin();
        txn.update(&t, slot, tup(2)).unwrap();
        let s2 = txn.insert(&t, tup(3)).unwrap();
        txn.abort();

        let reader = mgr.begin();
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(1));
        assert!(reader.read(&t, s2).is_none());
    }

    #[test]
    fn drop_aborts_implicitly() {
        let mgr = TxnManager::new(None);
        let t = table();
        let slot;
        {
            let mut txn = mgr.begin();
            slot = txn.insert(&t, tup(9)).unwrap();
            // dropped without commit
        }
        let reader = mgr.begin();
        assert!(reader.read(&t, slot).is_none());
        assert_eq!(mgr.active_count(), 1); // just the reader
    }

    #[test]
    fn write_conflict_surfaces() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut setup = mgr.begin();
        let slot = setup.insert(&t, tup(1)).unwrap();
        setup.commit().unwrap();

        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.update(&t, slot, tup(2)).unwrap();
        assert!(matches!(
            b.update(&t, slot, tup(3)),
            Err(DbError::WriteConflict { .. })
        ));
    }

    #[test]
    fn closed_txn_rejects_writes() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut txn = mgr.begin();
        txn.insert(&t, tup(1)).unwrap();
        let mgr2 = mgr.clone();
        let committed = txn.commit().unwrap();
        assert!(committed > Ts::ZERO);
        let txn2 = mgr2.begin();
        txn2.abort();
        // Using txn after abort is impossible by move semantics; verify a
        // fresh txn works.
        let mut txn3 = mgr2.begin();
        txn3.insert(&t, tup(2)).unwrap();
        txn3.commit().unwrap();
    }

    #[test]
    fn watermark_tracks_oldest_active() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut w = mgr.begin();
        w.insert(&t, tup(1)).unwrap();
        let hold = mgr.begin(); // snapshot at current clock
        let hold_ts = hold.read_ts();
        w.commit().unwrap();
        let mut w2 = mgr.begin();
        w2.insert(&t, tup(2)).unwrap();
        w2.commit().unwrap();
        assert_eq!(mgr.watermark(), hold_ts);
        drop(hold);
        assert_eq!(mgr.watermark(), mgr.now());
    }

    #[test]
    fn wal_records_emitted() {
        let wal = Arc::new(LogManager::new(mb2_wal::LogManagerConfig::default()).unwrap());
        let mgr = TxnManager::new(Some(wal.clone()));
        let t = table();
        let mut txn = mgr.begin();
        let slot = txn.insert(&t, tup(1)).unwrap();
        txn.commit().unwrap();
        let mut txn2 = mgr.begin();
        txn2.update(&t, slot, tup(2)).unwrap();
        txn2.abort();
        let (_, records, ..) = wal.stats().snapshot();
        // begin, insert, commit, begin, update, abort
        assert_eq!(records, 6);
    }

    #[test]
    fn snapshot_isolation_read_stability() {
        let mgr = TxnManager::new(None);
        let t = table();
        let mut setup = mgr.begin();
        let slot = setup.insert(&t, tup(10)).unwrap();
        setup.commit().unwrap();

        let reader = mgr.begin();
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(10));
        let mut writer = mgr.begin();
        writer.update(&t, slot, tup(20)).unwrap();
        writer.commit().unwrap();
        // Reader still sees its snapshot.
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(10));
        let fresh = mgr.begin();
        assert_eq!(fresh.read(&t, slot).unwrap()[0], Value::Int(20));
    }

    #[test]
    fn concurrent_transfer_preserves_sum() {
        // Bank transfer smoke test across threads with retries.
        let mgr = TxnManager::new(None);
        let t = table();
        let mut setup = mgr.begin();
        let a = setup.insert(&t, tup(500)).unwrap();
        let b = setup.insert(&t, tup(500)).unwrap();
        setup.commit().unwrap();

        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mgr = mgr.clone();
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        loop {
                            let mut txn = mgr.begin();
                            let va = txn.read(&t, a).unwrap()[0].as_i64().unwrap();
                            let vb = txn.read(&t, b).unwrap()[0].as_i64().unwrap();
                            let moved = 1;
                            let r1 = txn.update(&t, a, tup(va - moved));
                            let r2 = r1.is_ok().then(|| txn.update(&t, b, tup(vb + moved)));
                            match r2 {
                                Some(Ok(_)) => {
                                    txn.commit().unwrap();
                                    break;
                                }
                                _ => txn.abort(),
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let reader = mgr.begin();
        let va = reader.read(&t, a).unwrap()[0].as_i64().unwrap();
        let vb = reader.read(&t, b).unwrap()[0].as_i64().unwrap();
        assert_eq!(va + vb, 1000);
        assert_eq!(va, 500 - 200);
    }
}
