//! mb2-chaos: a chaos harness for the MB2 stack.
//!
//! A [`ChaosHarness`] runs a live [`mb2_server`] under concurrent SmallBank
//! load while a [`ChaosPlan`] of seeded, timed events kills and recovers
//! the engine, poisons the WAL, stalls fsync, starves the garbage
//! collector, tears connections, and flips execution knobs — asserting
//! after every event that **no acknowledged commit was lost**.
//!
//! The loss check is a replay oracle (see [`harness`]): every worker draws
//! its transactions from a private account range, so each worker's
//! committed history can be replayed serially into a fresh in-process
//! database, in any cross-worker order, and must reproduce the server's
//! state exactly — compared table-by-table over the wire.
//!
//! A commit whose acknowledgement was lost to a torn connection is
//! genuinely ambiguous; each transaction therefore carries a unique ledger
//! marker row, and the harness resolves ambiguity by probing the marker
//! before replay (see [`worker::TxnOutcome::Uncertain`]).

pub mod harness;
pub mod plan;
pub mod worker;

pub use harness::{ChaosConfig, ChaosHarness};
pub use plan::{ChaosEvent, ChaosPlan};
pub use worker::{TxnOutcome, WorkerReport};
