//! Fig. 11 — End-to-end self-driving execution.
//!
//! Reproduces §8.7's scenario: a daily transactional/analytical cycle
//! (TPC-C ↔ TPC-H) where the DBMS (1) flips the execution-mode knob for
//! long-running TPC-H queries and (2) builds the CUSTOMER secondary index
//! (with 8 or 4 threads) before TPC-C returns — with MB2's models
//! predicting the runtime effect of every step ahead of time, plus the
//! CPU attribution that explains the decision (Fig. 11b).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_core::planner::{Action, OraclePlanner};
use mb2_core::{BehaviorModels, QueryTemplate, WorkloadForecast};
use mb2_engine::exec::ExecutionMode;
use mb2_engine::sql::PlanNode;
use mb2_engine::Database;
use mb2_workloads::tpcc::Tpcc;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::experiments::common::tpch_templates;
use crate::pipeline::{build_interference_model, build_ou_models, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 11 — end-to-end self-driving execution\n\n");

    // Models.
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");

    // One database hosting both datasets (the paper alternates workloads).
    let tpcc = Tpcc {
        customers_per_district: scale.pick(300, 4000),
        customer_last_name_index: false,
        ..Tpcc::default()
    };
    let tpch = Tpch::with_scale(scale.pick(0.03, 0.15));
    let db = Arc::new(Database::open());
    tpcc.load(&db).expect("tpcc");
    tpch.load(&db).expect("tpch");

    let tpch_templates = tpch_templates(&db, &tpch);
    let (interference, _, _) = build_interference_model(
        &db,
        &tpch_templates,
        &built.models,
        &scale.pick(vec![2usize], vec![1, 3, 5]),
        Duration::from_millis(scale.pick(300, 800)),
        19,
    )
    .expect("interference");
    let behavior = BehaviorModels::new(built.models, Some(interference));

    // TPC-C query-level templates (payment/order-status style statements
    // that exercise the missing last-name index).
    let tpcc_sqls = [
        "SELECT c_id, c_balance FROM customer WHERE c_w_id = 0 AND c_d_id = 1 \
         AND c_last = 'BARBARBAR' ORDER BY c_first",
        "SELECT c_id, c_balance FROM customer WHERE c_w_id = 1 AND c_d_id = 4 \
         AND c_last = 'OUGHTBARPRI' ORDER BY c_first",
        "SELECT c_balance FROM customer WHERE c_w_id = 0 AND c_d_id = 2 AND c_id = 17",
        "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line \
         WHERE ol_w_id = 0 AND ol_d_id = 1 AND ol_o_id = 5",
        "UPDATE customer SET c_balance = c_balance - 1.0 \
         WHERE c_w_id = 0 AND c_d_id = 3 AND c_id = 11",
    ];
    let make_tpcc_templates = |db: &Database| -> Vec<QueryTemplate> {
        tpcc_sqls
            .iter()
            .map(|sql| QueryTemplate {
                name: sql.split_whitespace().take(2).collect::<Vec<_>>().join(" "),
                sql: sql.to_string(),
                plan: db.prepare(sql).expect("tpcc template"),
            })
            .collect()
    };

    for build_threads in [8usize, 4] {
        out.push_str(&scenario(
            scale,
            &db,
            &tpcc,
            &behavior,
            &tpch_templates,
            &make_tpcc_templates,
            build_threads,
        ));
        out.push('\n');
        // Reset: drop the index so the second variant rebuilds it.
        let _ = db.execute(tpcc.drop_customer_index_sql());
    }
    out.push_str(
        "Expected shape (paper Fig. 11): the knob change cuts TPC-H runtime \
         (predicted before it happens); the index build inflates latency \
         while running — more with 8 threads, for less time — and TPC-C \
         returns substantially faster once the index exists, all anticipated \
         by the models.\n",
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn scenario(
    scale: Scale,
    db: &Arc<Database>,
    tpcc: &Tpcc,
    behavior: &BehaviorModels,
    tpch_templates: &[QueryTemplate],
    make_tpcc_templates: &dyn Fn(&Database) -> Vec<QueryTemplate>,
    build_threads: usize,
) -> String {
    let mut out = String::new();
    let phase = Duration::from_secs(scale.pick(2, 4));
    let workers = scale.pick(2usize, 4);
    let planner = OraclePlanner::new(db, behavior);

    let mut table = Table::new(
        format!("scenario with {build_threads} create-index threads"),
        &["phase", "actual avg (us)", "predicted avg (us)"],
    );

    // Phase 1: TPC-C, interpret mode, no secondary index.
    db.set_execution_mode(ExecutionMode::Interpret);
    let tpcc_templates = make_tpcc_templates(db);
    let (actual, predicted) =
        drive_and_predict(db, behavior, &tpcc_templates, workers, phase, None);
    table.row(&[
        "tpcc (interpret, no index)".into(),
        fmt(actual),
        fmt(predicted),
    ]);

    // Phase 2: TPC-H, interpret mode.
    let (actual, predicted) = drive_and_predict(db, behavior, tpch_templates, workers, phase, None);
    table.row(&["tpch (interpret)".into(), fmt(actual), fmt(predicted)]);

    // Action 1: the planner evaluates flipping the execution mode.
    let mut forecast = WorkloadForecast::new(tpch_templates.to_vec(), workers);
    forecast.push_interval(phase.as_secs_f64(), vec![5.0; tpch_templates.len()]);
    let eval = planner
        .evaluate(
            &Action::SetExecutionMode(ExecutionMode::Compiled),
            &forecast,
            0,
            &db.knobs(),
        )
        .expect("knob evaluation");
    let predicted_knob_gain = eval.predicted_gain();
    db.set_execution_mode(ExecutionMode::Compiled);

    // Phase 3: TPC-H, compiled mode.
    let (actual_compiled, predicted) =
        drive_and_predict(db, behavior, tpch_templates, workers, phase, None);
    table.row(&[
        "tpch (compiled)".into(),
        fmt(actual_compiled),
        fmt(predicted),
    ]);

    // Action 2: build the index while TPC-H still runs; the "during" window
    // is measured for exactly the build duration.
    let index_sql = tpcc.customer_index_sql(build_threads);
    let index_plan = db.prepare(&index_sql).expect("index plan");
    let action_pred = behavior.predict_plan(&index_plan, &db.knobs());
    let (actual_during, predicted_during, predicted_build_adjusted, actual_build) =
        drive_during_build(
            db,
            behavior,
            tpch_templates,
            workers,
            &index_sql,
            &index_plan,
            build_threads,
        );
    table.row(&[
        "tpch (compiled, index building)".into(),
        fmt(actual_during),
        fmt(predicted_during),
    ]);

    // Phase 5: TPC-C returns, index present (replan the templates!).
    let tpcc_templates = make_tpcc_templates(db);
    let (actual, predicted) =
        drive_and_predict(db, behavior, &tpcc_templates, workers, phase, None);
    table.row(&["tpcc (indexed)".into(), fmt(actual), fmt(predicted)]);
    out.push_str(&table.render());

    let mut facts = Table::new("action predictions vs reality", &["quantity", "value"]);
    facts.row(&[
        "knob change predicted runtime reduction".into(),
        format!("{:.0}%", predicted_knob_gain * 100.0),
    ]);
    facts.row(&[
        "index build predicted elapsed (isolated)".into(),
        format!("{:.1} ms", action_pred.elapsed_us() / 1000.0),
    ]);
    facts.row(&[
        "index build predicted elapsed (with interference)".into(),
        format!("{:.1} ms", predicted_build_adjusted / 1000.0),
    ]);
    facts.row(&[
        "index build actual elapsed".into(),
        format!("{:.1} ms", actual_build.as_secs_f64() * 1000.0),
    ]);
    facts.row(&[
        "index build predicted CPU (Fig. 11b attribution)".into(),
        format!("{:.1} ms", action_pred.cpu_us() / 1000.0),
    ]);
    out.push('\n');
    out.push_str(&facts.render());
    out
}

/// Drive the workload while the index build runs, stopping when the build
/// completes; returns (actual avg latency, predicted avg latency, build
/// duration).
#[allow(clippy::too_many_arguments)]
fn drive_during_build(
    db: &Arc<Database>,
    behavior: &BehaviorModels,
    templates: &[QueryTemplate],
    workers: usize,
    index_sql: &str,
    index_plan: &PlanNode,
    build_threads: usize,
) -> (f64, f64, f64, Duration) {
    let total_us = AtomicU64::new(0);
    let counts: Vec<AtomicU64> = templates.iter().map(|_| AtomicU64::new(0)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let window_started = Instant::now();
    let build_elapsed = std::thread::scope(|scope| {
        for w in 0..workers {
            let db = db.clone();
            let total_us = &total_us;
            let counts = &counts;
            let stop = stop.clone();
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let ti = i % templates.len();
                    i += 1;
                    let t0 = Instant::now();
                    if db.execute_plan(&templates[ti].plan, None).is_ok() {
                        total_us
                            .fetch_add(t0.elapsed().as_nanos() as u64 / 1000, Ordering::Relaxed);
                        counts[ti].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let t0 = Instant::now();
        db.execute(index_sql).expect("index build");
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Release);
        elapsed
    });
    let window = window_started.elapsed();
    let count_total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let actual_avg = if count_total == 0 {
        0.0
    } else {
        total_us.load(Ordering::Relaxed) as f64 / count_total as f64
    };
    let mut forecast = WorkloadForecast::new(templates.to_vec(), workers);
    let rates: Vec<f64> = counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed) as f64 / window.as_secs_f64().max(1e-6))
        .collect();
    forecast.push_interval(window.as_secs_f64().max(1e-6), rates);
    let action_fc = mb2_core::inference::ActionForecast {
        plan: index_plan.clone(),
        threads: build_threads,
    };
    let prediction = behavior.predict_interval(&forecast, 0, &db.knobs(), Some(&action_fc));
    let adjusted_action = prediction.action_us.map_or(0.0, |(_, adj)| adj);
    (
        actual_avg,
        prediction.avg_query_runtime_us(),
        adjusted_action,
        build_elapsed,
    )
}

/// Drive the templates concurrently for one phase, returning the actual
/// average per-query latency and the models' prediction for the same
/// interval (with the measured arrival rates as the "perfect forecast").
fn drive_and_predict(
    db: &Arc<Database>,
    behavior: &BehaviorModels,
    templates: &[QueryTemplate],
    workers: usize,
    duration: Duration,
    action: Option<(&PlanNode, usize)>,
) -> (f64, f64) {
    let total_us = AtomicU64::new(0);
    let counts: Vec<AtomicU64> = templates.iter().map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let db = db.clone();
            let total_us = &total_us;
            let counts = &counts;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let ti = i % templates.len();
                    i += 1;
                    let t0 = Instant::now();
                    if db.execute_plan(&templates[ti].plan, None).is_ok() {
                        total_us
                            .fetch_add(t0.elapsed().as_nanos() as u64 / 1000, Ordering::Relaxed);
                        counts[ti].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    let count_total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let actual_avg = if count_total == 0 {
        0.0
    } else {
        total_us.load(Ordering::Relaxed) as f64 / count_total as f64
    };

    let mut forecast = WorkloadForecast::new(templates.to_vec(), workers);
    let rates: Vec<f64> = counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed) as f64 / duration.as_secs_f64())
        .collect();
    forecast.push_interval(duration.as_secs_f64(), rates);
    let action_fc = action.map(|(plan, threads)| mb2_core::inference::ActionForecast {
        plan: plan.clone(),
        threads,
    });
    let prediction = behavior.predict_interval(&forecast, 0, &db.knobs(), action_fc.as_ref());
    (actual_avg, prediction.avg_query_runtime_us())
}
