//! Property tests for MVCC visibility: a sequential mix of transactions
//! (insert/update/delete, commit or abort) must leave the table looking
//! exactly like a model map of committed state, and historical snapshots
//! must keep seeing their versions.

#![cfg(test)]

use std::collections::HashMap;

use proptest::prelude::*;

use mb2_common::{Column, DataType, Schema, Value};

use crate::{SlotId, Table, TableId, Ts};

#[derive(Debug, Clone)]
enum TxnOp {
    /// Insert a fresh row with this payload.
    Insert(i64),
    /// Update the row inserted by step `k` (mod live rows) to this payload.
    Update(usize, i64),
    /// Delete the row inserted by step `k` (mod live rows).
    Delete(usize),
}

#[derive(Debug, Clone)]
struct TxnSpec {
    ops: Vec<TxnOp>,
    commit: bool,
}

fn txn_strategy() -> impl Strategy<Value = TxnSpec> {
    let op = prop_oneof![
        any::<i64>().prop_map(TxnOp::Insert),
        (any::<usize>(), any::<i64>()).prop_map(|(k, v)| TxnOp::Update(k, v)),
        any::<usize>().prop_map(TxnOp::Delete),
    ];
    (proptest::collection::vec(op, 1..6), any::<bool>())
        .prop_map(|(ops, commit)| TxnSpec { ops, commit })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn committed_state_matches_model(txns in proptest::collection::vec(txn_strategy(), 1..25)) {
        let table = Table::new(
            TableId(1),
            "t",
            Schema::new(vec![Column::new("v", DataType::Int)]),
        );
        // Model: slot -> committed payload.
        let mut model: HashMap<usize, i64> = HashMap::new();
        let mut slots: Vec<SlotId> = Vec::new();
        let mut clock = 10u64;

        for (txn_counter, spec) in (1u64..).zip(txns) {
            let txn = Ts::txn(txn_counter);
            let read_ts = Ts(clock);
            // Staged changes for this transaction.
            let mut staged: Vec<(usize, Option<i64>, bool)> = Vec::new(); // (idx, new, is_insert)
            let mut new_slots: Vec<SlotId> = Vec::new();
            let mut failed = false;
            for op in &spec.ops {
                match op {
                    TxnOp::Insert(v) => {
                        let slot = table.insert(vec![Value::Int(*v)], txn).unwrap();
                        new_slots.push(slot);
                        slots.push(slot);
                        staged.push((slots.len() - 1, Some(*v), true));
                    }
                    TxnOp::Update(k, v) => {
                        let live: Vec<usize> =
                            model.keys().copied().collect();
                        if live.is_empty() { continue; }
                        let idx = live[k % live.len()];
                        match table.update(slots[idx], vec![Value::Int(*v)], txn, read_ts) {
                            Ok(_) => staged.push((idx, Some(*v), false)),
                            Err(_) => { failed = true; break; }
                        }
                    }
                    TxnOp::Delete(k) => {
                        // Only delete rows not already touched this txn (the
                        // model below doesn't track intra-txn delete-after-
                        // update chains).
                        let live: Vec<usize> = model
                            .keys()
                            .copied()
                            .filter(|i| !staged.iter().any(|(si, _, _)| si == i))
                            .collect();
                        if live.is_empty() { continue; }
                        let idx = live[k % live.len()];
                        match table.delete(slots[idx], txn, read_ts) {
                            Ok(_) => staged.push((idx, None, false)),
                            Err(_) => { failed = true; break; }
                        }
                    }
                }
            }
            if spec.commit && !failed {
                clock += 1;
                let commit_ts = Ts(clock);
                for (idx, new, is_insert) in &staged {
                    let delta = match (new, is_insert) {
                        (Some(_), true) => 1,
                        (None, _) => -1,
                        _ => 0,
                    };
                    table.commit_slot(slots[*idx], txn, commit_ts, delta);
                    match new {
                        Some(v) => { model.insert(*idx, *v); }
                        None => { model.remove(idx); }
                    }
                }
            } else {
                // Abort everything (in reverse, like the real txn manager).
                // Re-writes of the same slot collapse into one version, so
                // abort each touched slot exactly once.
                for slot in new_slots.iter().rev() {
                    table.abort_slot(*slot, txn);
                }
                let mut aborted: Vec<usize> = Vec::new();
                for (idx, _, is_insert) in staged.iter().rev() {
                    if !is_insert && !aborted.contains(idx) {
                        table.abort_slot(slots[*idx], txn);
                        aborted.push(*idx);
                    }
                }
            }
        }

        // Final visible state equals the model.
        let mut seen: HashMap<SlotId, i64> = HashMap::new();
        table.scan_visible(Ts(clock), Ts::txn(0), |slot, tuple| {
            seen.insert(slot, tuple[0].as_i64().unwrap());
            true
        });
        prop_assert_eq!(seen.len(), model.len());
        for (idx, v) in &model {
            prop_assert_eq!(seen.get(&slots[*idx]), Some(v));
        }

        // GC never changes the current snapshot's contents.
        table.gc(Ts(clock));
        let mut after_gc: HashMap<SlotId, i64> = HashMap::new();
        table.scan_visible(Ts(clock), Ts::txn(0), |slot, tuple| {
            after_gc.insert(slot, tuple[0].as_i64().unwrap());
            true
        });
        prop_assert_eq!(&after_gc, &seen);
    }
}
