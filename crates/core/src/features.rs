//! OU input-feature definitions (paper §4.2, Table 1).
//!
//! Every OU has a small fixed feature vector (base features plus behavior
//! knobs, in line with the paper's ≤10 guidance). The widths here mirror
//! Table 1's "Features + Knobs" counts adapted to this engine: execution
//! OUs carry the batch-size, parallelism, and shard-count knobs, and the
//! txn/GC OUs carry the table shard count (commit-lock striping and GC
//! cadence scale with it).

use mb2_common::OuKind;

/// One OU extracted from a plan or forecast, ready for model input.
#[derive(Debug, Clone, PartialEq)]
pub struct OuInstance {
    /// Pre-order plan-node id (matches the executor's numbering); util and
    /// txn OUs that don't belong to a plan use id 0.
    pub node_id: u32,
    pub ou: OuKind,
    pub features: Vec<f64>,
}

/// Feature names per OU (excluding the optional trailing hardware-context
/// feature the translator can append, §8.6).
pub fn feature_names(ou: OuKind) -> &'static [&'static str] {
    // The seven standard execution features (paper §4.2 "Singular OUs")
    // plus the three behavior knobs the translator appends: rows per batch,
    // exec-pool workers, and the scanned table's shard count.
    const EXEC: &[&str] = &[
        "n_tuples",
        "n_cols",
        "avg_tuple_size",
        "est_cardinality",
        "payload_size",
        "n_loops",
        "exec_mode",
        "batch_size",
        "parallelism",
        "shard_count",
    ];
    match ou {
        OuKind::SeqScan
        | OuKind::IdxScan
        | OuKind::JoinHashBuild
        | OuKind::JoinHashProbe
        | OuKind::AggBuild
        | OuKind::AggProbe
        | OuKind::SortBuild
        | OuKind::SortIter
        | OuKind::InsertTuple
        | OuKind::UpdateTuple
        | OuKind::DeleteTuple
        | OuKind::OutputResult => EXEC,
        OuKind::ArithmeticFilter => &[
            "n_evals",
            "ops_per_eval",
            "exec_mode",
            "batch_size",
            "parallelism",
        ],
        OuKind::GarbageCollection => &["n_versions", "n_slots", "gc_interval_ms", "n_shards"],
        // Columnar growth OUs: the block scan is priced by how many sealed
        // rows it sweeps and how selective its predicate is; compaction by
        // how much frozen data a pass seals and how often it runs.
        OuKind::BlockScan => &[
            "n_tuples",
            "selectivity",
            "n_cols",
            "batch_size",
            "parallelism",
            "shard_count",
        ],
        OuKind::Compaction => &["n_sealed", "n_blocks", "compaction_interval_ms", "n_shards"],
        OuKind::IndexBuild => &[
            "n_tuples",
            "n_key_cols",
            "key_size",
            "est_key_cardinality",
            "n_threads",
        ],
        OuKind::LogSerialize => &["total_bytes", "n_records", "n_buffers", "avg_record_size"],
        OuKind::LogFlush => &["total_bytes", "n_buffers", "flush_interval_ms"],
        OuKind::TxnBegin | OuKind::TxnCommit => &["arrival_rate", "active_txns", "n_shards"],
    }
}

/// Base feature-vector width for an OU (before any hardware context).
pub fn feature_width(ou: OuKind) -> usize {
    feature_names(ou).len()
}

/// Index of the "amount of work" feature used for output-label
/// normalization (paper §4.3); `None` for OUs that are not normalized
/// (short contending OUs).
pub fn normalization_feature(ou: OuKind) -> Option<usize> {
    match ou {
        OuKind::TxnBegin | OuKind::TxnCommit => None,
        // All remaining OUs put their work volume in feature 0
        // (tuples / evals / versions / bytes).
        _ => Some(0),
    }
}

/// Index of the cardinality feature, where present (used for the
/// aggregation hash-table memory normalization special case, §4.3).
pub fn cardinality_feature(ou: OuKind) -> Option<usize> {
    match ou {
        OuKind::SeqScan
        | OuKind::IdxScan
        | OuKind::JoinHashBuild
        | OuKind::JoinHashProbe
        | OuKind::AggBuild
        | OuKind::AggProbe
        | OuKind::SortBuild
        | OuKind::SortIter
        | OuKind::InsertTuple
        | OuKind::UpdateTuple
        | OuKind::DeleteTuple
        | OuKind::OutputResult => Some(3),
        OuKind::IndexBuild => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_stay_low_dimensional() {
        for ou in OuKind::ALL {
            let w = feature_width(ou);
            assert!((2..=10).contains(&w), "{ou}: width {w}");
        }
    }

    #[test]
    fn exec_ous_share_the_standard_features_plus_knobs() {
        assert_eq!(feature_width(OuKind::SeqScan), 10);
        assert_eq!(feature_names(OuKind::SortBuild)[6], "exec_mode");
        assert_eq!(feature_names(OuKind::SeqScan)[7], "batch_size");
        assert_eq!(feature_names(OuKind::SeqScan)[8], "parallelism");
        assert_eq!(feature_names(OuKind::SeqScan)[9], "shard_count");
    }

    #[test]
    fn txn_ous_carry_the_shard_knob() {
        assert_eq!(feature_width(OuKind::TxnBegin), 3);
        assert_eq!(feature_width(OuKind::TxnCommit), 3);
        assert_eq!(feature_names(OuKind::TxnCommit)[2], "n_shards");
        assert!(normalization_feature(OuKind::TxnBegin).is_none());
    }

    #[test]
    fn table_1_feature_counts() {
        assert_eq!(feature_width(OuKind::GarbageCollection), 4);
        assert_eq!(feature_width(OuKind::IndexBuild), 5);
        assert_eq!(feature_width(OuKind::LogSerialize), 4);
        assert_eq!(feature_width(OuKind::LogFlush), 3);
        assert_eq!(feature_width(OuKind::ArithmeticFilter), 5);
    }

    #[test]
    fn growth_ous_are_featurized_like_the_rest() {
        assert_eq!(feature_width(OuKind::BlockScan), 6);
        assert_eq!(feature_names(OuKind::BlockScan)[1], "selectivity");
        assert_eq!(normalization_feature(OuKind::BlockScan), Some(0));
        assert_eq!(feature_width(OuKind::Compaction), 4);
        assert_eq!(
            feature_names(OuKind::Compaction)[2],
            "compaction_interval_ms"
        );
        assert_eq!(normalization_feature(OuKind::Compaction), Some(0));
    }

    #[test]
    fn cardinality_feature_indices_valid() {
        for ou in OuKind::ALL {
            if let Some(i) = cardinality_feature(ou) {
                assert!(i < feature_width(ou), "{ou}");
            }
        }
    }
}
