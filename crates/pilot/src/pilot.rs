//! The control loop itself: forecast → candidates → pricing → apply →
//! verify/revert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mb2_common::DbResult;
use mb2_core::forecast::SlidingWindowForecaster;
use mb2_core::planner::{Action, ActionEvaluation, OraclePlanner};
use mb2_core::BehaviorModels;
use mb2_engine::obs::Histogram;
use mb2_engine::{BackgroundTask, Database, StatementTap};

use crate::candidates;
use crate::config::PilotConfig;
use crate::metrics::PilotMetrics;

/// `(sum_us, count)` of the four DML statement-latency histograms at one
/// instant; mean latency over a window is computed from two snapshots.
/// DDL is excluded on purpose — the pilot's own index builds must not
/// pollute the workload-latency signal it judges itself by.
#[derive(Debug, Clone, Copy, Default)]
struct StmtSnapshot {
    sum_us: u64,
    count: u64,
}

impl StmtSnapshot {
    /// Mean latency (µs) of the statements between `earlier` and `self`,
    /// or `None` when no statements ran in between.
    fn mean_since(&self, earlier: &StmtSnapshot) -> Option<f64> {
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return None;
        }
        Some(self.sum_us.saturating_sub(earlier.sum_us) as f64 / count as f64)
    }
}

/// How to roll an applied action back.
#[derive(Debug, Clone)]
enum Undo {
    DropIndex {
        table: String,
        index: String,
    },
    CreateIndex {
        sql: String,
        table: String,
        index: String,
    },
    ExecutionMode(mb2_engine::exec::ExecutionMode),
    BatchSize(usize),
    Parallelism(usize),
    WalFlushInterval(Duration),
    GcInterval(Duration),
    ColumnarEnabled(bool),
    CompactionInterval(Duration),
}

/// An action deployed and awaiting its verify verdict.
#[derive(Debug, Clone)]
struct InFlight {
    description: String,
    undo: Undo,
    applied_at: Instant,
    /// Snapshot taken right after the apply; the verify window's observed
    /// mean is measured from here.
    snap_at_apply: StmtSnapshot,
    /// Observed mean latency over the window *before* the apply, if any
    /// traffic ran.
    observed_baseline_us: Option<f64>,
    evaluation: ActionEvaluation,
}

#[derive(Default)]
struct PilotState {
    inflight: Option<InFlight>,
    /// Snapshot taken at the end of the previous tick; the pre-apply
    /// baseline window is measured from here.
    last_snapshot: Option<StmtSnapshot>,
    cooldown_until: Option<Instant>,
    /// `index name → (table, CREATE INDEX sql)` for indexes the pilot
    /// built and still owns; drop candidates come only from this set and
    /// reverts of drops replay the recorded SQL.
    built_indexes: HashMap<String, (String, String)>,
    /// Most recent terminal outcomes, newest last (bounded).
    history: Vec<String>,
}

/// What one call to [`Pilot::run_once`] did — returned for tests and
/// surfaced through [`Pilot::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickOutcome {
    /// Not enough observed traffic (or no templates) to forecast.
    NoForecast,
    /// An action is deployed but its verify window has not elapsed.
    Verifying,
    /// The verify window closed; `reverted` says whether the action was
    /// rolled back for regressing past the threshold.
    Verified { reverted: bool },
    /// Inside the post-action cooldown period.
    Cooldown,
    /// Candidates were priced but none cleared the minimum gain.
    NoViableAction,
    /// An action was applied; the value is its stable label.
    Applied(&'static str),
}

/// Point-in-time public view of the pilot, for operators (`SHOW PILOT`)
/// and tests.
#[derive(Debug, Clone)]
pub struct PilotStatus {
    /// `"idle"`, `"verifying"`, or `"cooldown"`.
    pub state: &'static str,
    pub ticks: u64,
    pub actions_considered: u64,
    pub actions_reverted: u64,
    /// Description of the action currently awaiting verification.
    pub inflight: Option<String>,
    /// Pilot-owned index names.
    pub built_indexes: Vec<String>,
    /// Recent terminal outcomes, newest last.
    pub history: Vec<String>,
}

impl PilotStatus {
    /// Hand-rolled JSON rendering (the workspace has no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let inflight = match &self.inflight {
            Some(d) => format!("\"{}\"", esc(d)),
            None => "null".to_string(),
        };
        let built: Vec<String> = self
            .built_indexes
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect();
        let history: Vec<String> = self
            .history
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        format!(
            "{{\"state\":\"{}\",\"ticks\":{},\"actions_considered\":{},\"actions_reverted\":{},\"inflight\":{},\"built_indexes\":[{}],\"history\":[{}]}}",
            self.state,
            self.ticks,
            self.actions_considered,
            self.actions_reverted,
            inflight,
            built.join(","),
            history.join(",")
        )
    }
}

/// The autopilot. Owns a background thread that runs the control loop at
/// [`PilotConfig::cadence`]; tests drive it deterministically through
/// [`Pilot::run_once`] without starting the thread.
pub struct Pilot {
    db: Arc<Database>,
    models: Arc<BehaviorModels>,
    config: PilotConfig,
    forecaster: Arc<SlidingWindowForecaster>,
    metrics: PilotMetrics,
    state: Mutex<PilotState>,
    latency_hists: Vec<Arc<Histogram>>,
    wakeup: Arc<(StdMutex<bool>, Condvar)>,
    thread: Mutex<Option<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Pilot {
    /// Create a pilot bound to a database and a trained model set. The
    /// pilot is inert until [`start`](Pilot::start) (or, in tests,
    /// explicit [`run_once`](Pilot::run_once) calls after installing the
    /// tap yourself).
    pub fn new(db: Arc<Database>, models: Arc<BehaviorModels>, config: PilotConfig) -> Arc<Pilot> {
        let forecaster = Arc::new(SlidingWindowForecaster::new(
            config.forecast_window,
            config.forecast_buckets,
        ));
        let metrics = PilotMetrics::new(db.metrics().clone());
        let latency_hists = ["select", "insert", "update", "delete"]
            .iter()
            .map(|kind| {
                db.metrics().histogram_with(
                    "mb2_stmt_latency_us",
                    &[("kind", kind)],
                    "End-to-end statement latency in microseconds, by kind.",
                )
            })
            .collect();
        Arc::new(Pilot {
            db,
            models,
            config,
            forecaster,
            metrics,
            state: Mutex::new(PilotState::default()),
            latency_hists,
            wakeup: Arc::new((StdMutex::new(false), Condvar::new())),
            thread: Mutex::new(None),
            stopped: AtomicBool::new(false),
        })
    }

    /// The forecaster the pilot feeds from; install it as the engine's
    /// statement tap to route traffic into it ([`start`](Pilot::start)
    /// does this automatically).
    pub fn forecaster(&self) -> &Arc<SlidingWindowForecaster> {
        &self.forecaster
    }

    /// Pilot metric handles (also reachable via the registry).
    pub fn metrics(&self) -> &PilotMetrics {
        &self.metrics
    }

    /// Install the statement tap, register with the engine's shutdown
    /// sequence, and spawn the background control-loop thread.
    pub fn start(self: &Arc<Self>) {
        self.db
            .set_statement_tap(Some(self.forecaster.clone() as Arc<dyn StatementTap>));
        self.db
            .register_background_task(Arc::downgrade(self) as std::sync::Weak<dyn BackgroundTask>);
        let pilot = self.clone();
        let handle = std::thread::Builder::new()
            .name("mb2-pilot".into())
            .spawn(move || {
                let wakeup = pilot.wakeup.clone();
                loop {
                    let (lock, cvar) = &*wakeup;
                    let mut stop = lock.lock().unwrap_or_else(|e| e.into_inner());
                    let mut remaining = pilot.config.cadence;
                    while !*stop && remaining > Duration::ZERO {
                        let start = Instant::now();
                        let (guard, _timeout) = cvar
                            .wait_timeout(stop, remaining)
                            .unwrap_or_else(|e| e.into_inner());
                        stop = guard;
                        remaining = remaining.saturating_sub(start.elapsed());
                    }
                    if *stop {
                        return;
                    }
                    drop(stop);
                    pilot.run_once();
                }
            })
            .expect("spawn pilot thread");
        *self.thread.lock() = Some(handle);
    }

    /// Stop the loop, join the thread, and uninstall the statement tap.
    /// Idempotent; called automatically (via [`BackgroundTask::quiesce`])
    /// at the front of [`Database::shutdown`], while the exec pool, GC,
    /// and WAL are still alive — so a mid-flight tick finishes cleanly.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let (lock, cvar) = &*self.wakeup;
            let mut stop = lock.lock().unwrap_or_else(|e| e.into_inner());
            *stop = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
        self.db.set_statement_tap(None);
    }

    /// Current (sum, count) of the DML latency histograms.
    fn stmt_snapshot(&self) -> StmtSnapshot {
        let mut snap = StmtSnapshot::default();
        for h in &self.latency_hists {
            snap.sum_us += h.sum();
            snap.count += h.count();
        }
        snap
    }

    /// Run one control-loop tick. At most one state transition happens
    /// per tick (verify-then-plan takes two ticks), which keeps test
    /// stepping deterministic.
    pub fn run_once(&self) -> TickOutcome {
        self.metrics.ticks.inc();
        let mut state = self.state.lock();
        let now_snap = self.stmt_snapshot();

        // 1) An in-flight action is judged once its verify window closed.
        if let Some(inflight) = &state.inflight {
            if inflight.applied_at.elapsed() < self.config.verify_window {
                state.last_snapshot = Some(now_snap);
                return TickOutcome::Verifying;
            }
            let inflight = state.inflight.take().expect("checked above");
            let outcome = self.finish_verification(&mut state, inflight, now_snap);
            state.last_snapshot = Some(now_snap);
            state.cooldown_until = Some(Instant::now() + self.config.cooldown);
            self.metrics.inflight.set(0);
            return outcome;
        }

        // 2) Respect the cooldown after the previous action.
        if let Some(until) = state.cooldown_until {
            if Instant::now() < until {
                state.last_snapshot = Some(now_snap);
                return TickOutcome::Cooldown;
            }
            state.cooldown_until = None;
        }

        // 3) Plan: forecast, enumerate, price, maybe apply.
        let outcome = self.plan_and_apply(&mut state, now_snap);
        state.last_snapshot = Some(now_snap);
        outcome
    }

    fn plan_and_apply(&self, state: &mut PilotState, now_snap: StmtSnapshot) -> TickOutcome {
        if self.forecaster.arrivals_in_window() < self.config.min_arrivals {
            return TickOutcome::NoForecast;
        }
        let Some(forecast) = self
            .forecaster
            .snapshot(&self.db, self.config.forecast_threads)
        else {
            return TickOutcome::NoForecast;
        };
        let interval = forecast.intervals.len() - 1;

        let built: Vec<(String, String)> = state
            .built_indexes
            .iter()
            .map(|(index, (table, _))| (index.clone(), table.clone()))
            .collect();
        let mut actions = candidates::enumerate(&self.db, &forecast, &built, &self.config);
        if actions.is_empty() {
            return TickOutcome::NoViableAction;
        }
        // Deterministic seed-controlled tie-break: rotate the (already
        // deterministic) candidate order, then strict-greater selection
        // keeps the first of any equal-gain group.
        let rot = (self.config.seed as usize) % actions.len();
        actions.rotate_left(rot);

        let planner = OraclePlanner::new(&self.db, &self.models);
        let knobs = self.db.knobs();
        let mut best: Option<(Action, ActionEvaluation, f64)> = None;
        let mut best_drop: Option<(Action, ActionEvaluation, f64)> = None;
        for action in actions {
            let Ok(eval) = planner.evaluate(&action, &forecast, interval, &knobs) else {
                continue;
            };
            self.metrics.considered.inc();
            let gain = eval.predicted_gain();
            if let Action::DropIndex { .. } = &action {
                // Housekeeping rule: dropping a pilot-built index the
                // forecast no longer uses reclaims maintenance cost the
                // models do not price, so it needs only a *non-negative*
                // verdict ("predicted not to hurt"), not `min_gain`. It
                // still loses to any gainful action below.
                if gain > -self.config.min_gain
                    && best_drop
                        .as_ref()
                        .map(|(_, _, g)| gain > *g)
                        .unwrap_or(true)
                {
                    best_drop = Some((action, eval, gain));
                }
                continue;
            }
            if gain < self.config.min_gain {
                continue;
            }
            if best.as_ref().map(|(_, _, g)| gain > *g).unwrap_or(true) {
                best = Some((action, eval, gain));
            }
        }
        let Some((action, evaluation, gain)) = best.or(best_drop) else {
            return TickOutcome::NoViableAction;
        };

        // Observed baseline: traffic since the previous tick.
        let observed_baseline_us = state
            .last_snapshot
            .as_ref()
            .and_then(|prev| now_snap.mean_since(prev));

        let apply_started = Instant::now();
        let undo = match self.apply(state, &action) {
            Ok(undo) => undo,
            Err(err) => {
                state
                    .history
                    .push(format!("apply failed: {}: {err}", action.describe()));
                return TickOutcome::NoViableAction;
            }
        };
        let observed_duration_us = apply_started.elapsed().as_micros() as f64;

        let label = action.label();
        self.metrics.applied(label).inc();
        self.metrics.inflight.set(1);
        self.metrics
            .predicted_baseline_us
            .set(evaluation.baseline_us);
        self.metrics.predicted_after_us.set(evaluation.after_us);
        self.metrics.predicted_gain.set(gain);
        self.metrics
            .predicted_action_duration_us
            .set(evaluation.action_duration_us);
        self.metrics
            .observed_action_duration_us
            .set(observed_duration_us);
        if let Some(base) = observed_baseline_us {
            self.metrics.observed_baseline_us.set(base);
        }

        state.inflight = Some(InFlight {
            description: action.describe(),
            undo,
            applied_at: Instant::now(),
            // Post-apply snapshot: the verify window must not include
            // statements that ran while the action deployed.
            snap_at_apply: self.stmt_snapshot(),
            observed_baseline_us,
            evaluation,
        });
        TickOutcome::Applied(label)
    }

    /// Deploy an action to the live engine and return its undo.
    fn apply(&self, state: &mut PilotState, action: &Action) -> DbResult<Undo> {
        let knobs = self.db.knobs();
        match action {
            Action::SetExecutionMode(mode) => {
                self.db.set_execution_mode(*mode);
                Ok(Undo::ExecutionMode(knobs.execution_mode))
            }
            Action::BuildIndex {
                sql, table, index, ..
            } => {
                self.db.execute(sql)?;
                state
                    .built_indexes
                    .insert(index.clone(), (table.clone(), sql.clone()));
                Ok(Undo::DropIndex {
                    table: table.clone(),
                    index: index.clone(),
                })
            }
            Action::DropIndex { table, index } => {
                let (_, create_sql) = state
                    .built_indexes
                    .get(index)
                    .cloned()
                    .unwrap_or_else(|| (table.clone(), String::new()));
                self.db.execute(&format!("DROP INDEX {index} ON {table}"))?;
                state.built_indexes.remove(index);
                Ok(Undo::CreateIndex {
                    sql: create_sql,
                    table: table.clone(),
                    index: index.clone(),
                })
            }
            Action::SetBatchSize(n) => {
                self.db.set_batch_size(*n);
                Ok(Undo::BatchSize(knobs.batch_size))
            }
            Action::SetParallelism(n) => {
                self.db.set_parallelism(*n);
                Ok(Undo::Parallelism(knobs.parallelism))
            }
            Action::SetWalFlushInterval(d) => {
                self.db.set_wal_flush_interval(*d);
                Ok(Undo::WalFlushInterval(knobs.wal_flush_interval))
            }
            Action::SetGcInterval(d) => {
                let prev = self.db.gc().interval();
                self.db.set_gc_interval(*d);
                Ok(Undo::GcInterval(prev))
            }
            Action::SetColumnarEnabled(on) => {
                self.db.set_columnar_enabled(*on);
                Ok(Undo::ColumnarEnabled(knobs.columnar_enabled))
            }
            Action::SetCompactionInterval(d) => {
                let prev = self.db.compactor().interval();
                self.db.set_compaction_interval(*d);
                Ok(Undo::CompactionInterval(prev))
            }
        }
    }

    /// Judge an in-flight action against observed latency; revert when
    /// the regression exceeds the threshold.
    fn finish_verification(
        &self,
        state: &mut PilotState,
        inflight: InFlight,
        now_snap: StmtSnapshot,
    ) -> TickOutcome {
        let observed_after_us = now_snap.mean_since(&inflight.snap_at_apply);
        if let Some(after) = observed_after_us {
            self.metrics.observed_after_us.set(after);
        }
        let regression = match (inflight.observed_baseline_us, observed_after_us) {
            (Some(base), Some(after)) if base > 0.0 => {
                self.metrics.observed_gain.set((base - after) / base);
                after > base * (1.0 + self.config.revert_threshold)
            }
            // No traffic on one side of the apply: nothing to judge.
            _ => false,
        };
        if regression {
            if let Err(err) = self.revert(state, &inflight.undo) {
                state
                    .history
                    .push(format!("revert failed: {}: {err}", inflight.description));
            } else {
                self.metrics.reverted.inc();
                state
                    .history
                    .push(format!("reverted: {}", inflight.description));
            }
        } else {
            state.history.push(format!(
                "accepted: {} (predicted gain {:.3})",
                inflight.description,
                inflight.evaluation.predicted_gain()
            ));
        }
        if state.history.len() > 32 {
            let drop_n = state.history.len() - 32;
            state.history.drain(..drop_n);
        }
        TickOutcome::Verified {
            reverted: regression,
        }
    }

    fn revert(&self, state: &mut PilotState, undo: &Undo) -> DbResult<()> {
        match undo {
            Undo::DropIndex { table, index } => {
                self.db.execute(&format!("DROP INDEX {index} ON {table}"))?;
                state.built_indexes.remove(index);
            }
            Undo::CreateIndex { sql, table, index } => {
                if !sql.is_empty() {
                    self.db.execute(sql)?;
                    state
                        .built_indexes
                        .insert(index.clone(), (table.clone(), sql.clone()));
                }
            }
            Undo::ExecutionMode(mode) => self.db.set_execution_mode(*mode),
            Undo::BatchSize(n) => self.db.set_batch_size(*n),
            Undo::Parallelism(n) => self.db.set_parallelism(*n),
            Undo::WalFlushInterval(d) => self.db.set_wal_flush_interval(*d),
            Undo::GcInterval(d) => self.db.set_gc_interval(*d),
            Undo::ColumnarEnabled(on) => self.db.set_columnar_enabled(*on),
            Undo::CompactionInterval(d) => self.db.set_compaction_interval(*d),
        }
        Ok(())
    }

    /// Point-in-time status for operators and tests.
    pub fn status(&self) -> PilotStatus {
        let state = self.state.lock();
        let phase = if state.inflight.is_some() {
            "verifying"
        } else if state
            .cooldown_until
            .map(|t| Instant::now() < t)
            .unwrap_or(false)
        {
            "cooldown"
        } else {
            "idle"
        };
        let mut built: Vec<String> = state.built_indexes.keys().cloned().collect();
        built.sort();
        PilotStatus {
            state: phase,
            ticks: self.metrics.ticks.get(),
            actions_considered: self.metrics.considered.get(),
            actions_reverted: self.metrics.reverted.get(),
            inflight: state.inflight.as_ref().map(|f| f.description.clone()),
            built_indexes: built,
            history: state.history.clone(),
        }
    }

    /// [`status`](Pilot::status) rendered as one JSON object.
    pub fn status_json(&self) -> String {
        self.status().to_json()
    }
}

impl BackgroundTask for Pilot {
    fn name(&self) -> &str {
        "mb2-pilot"
    }

    fn quiesce(&self) {
        self.shutdown();
    }
}

impl Drop for Pilot {
    fn drop(&mut self) {
        // The background thread holds an Arc<Pilot>, so by the time Drop
        // runs the thread is already gone; this only covers the
        // never-started case.
        self.shutdown();
    }
}
