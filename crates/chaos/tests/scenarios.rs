//! Seeded chaos scenarios against a live server under concurrent SmallBank
//! load. Every scenario ends (and every plan event is followed by) the
//! wire-vs-oracle dump comparison: zero acknowledged commits lost.
//!
//! The seed comes from `CHAOS_SEED` so CI can sweep seeds:
//! `CHAOS_SEED=3 cargo test -p mb2-chaos -- --test-threads=1`.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use mb2_chaos::{ChaosConfig, ChaosEvent, ChaosHarness, ChaosPlan};
use mb2_common::fault::points;
use mb2_common::DbError;

/// Each scenario stands up a full server plus worker fleet; on small CI
/// hosts running them concurrently turns timing-based plans into noise.
/// Serialize them regardless of the runner's `--test-threads`.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn metric(prom: &str, name: &str) -> f64 {
    prom.lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not exported"))
}

/// Crash the server mid-workload and recover from the WAL: connections
/// tear, the replacement comes up on a new port, workers reconnect, and no
/// acknowledged commit is missing afterwards.
#[test]
fn kill_and_recover_mid_workload() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        name: "kill_recover",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(Duration::from_millis(60), ChaosEvent::KillAndRecover)
        .then(Duration::from_millis(40), ChaosEvent::KillAndRecover)
        .run(&mut h, 60);
    let report = h.report();
    assert!(
        report.committed > 0,
        "workload must make progress through two crash-recoveries: {report:?}"
    );
    h.shutdown();
}

/// Poison the WAL under load with the self-healing supervisor enabled:
/// the engine degrades to read-only, the supervisor replays the log into a
/// replacement and swaps it in, and the workload resumes committing.
#[test]
fn wal_poison_supervisor_self_heals() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        supervisor: true,
        name: "self_heal",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(Duration::from_millis(50), ChaosEvent::PoisonWal)
        .then(
            Duration::from_millis(10),
            ChaosEvent::HealWal {
                timeout: Duration::from_secs(15),
            },
        )
        .run(&mut h, 60);
    assert!(
        h.server().engine_epoch() >= 1,
        "supervisor must have swapped in a recovered engine"
    );

    // The recovered engine serves writes again.
    let before = h.report().committed;
    h.run_phase(40);
    assert!(
        h.report().committed > before,
        "no commits landed after the supervisor swap"
    );
    h.assert_consistent();

    let prom = h.db().metrics_prometheus();
    assert!(metric(&prom, "mb2_server_recoveries_total") >= 1.0);
    assert!(metric(&prom, "mb2_recovery_runs_total") >= 1.0);
    assert_eq!(metric(&prom, "mb2_health_state"), 0.0);
    h.shutdown();
}

/// While degraded (before healing), reads must still be served and writes
/// must fail with the typed `WalUnavailable` — checked mid-outage on a
/// supervisor-less harness so the degraded window stays open.
#[test]
fn degraded_mode_serves_reads_rejects_writes() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        supervisor: false,
        name: "degraded",
        ..ChaosConfig::default()
    });
    h.run_phase(30);

    h.faults
        .arm(points::WAL_FSYNC, mb2_common::fault::FaultMode::Always);
    let mut c = h.client().expect("connect");
    // First write poisons the log (or finds it already poisoned by a
    // concurrent worker — either way the error is the typed one).
    let err = c
        .query("UPDATE sb_checking SET bal = bal + 1.0 WHERE custid = 0")
        .expect_err("write on failing fsync must not be acknowledged");
    assert!(matches!(err, DbError::WalUnavailable(_)), "got {err:?}");
    assert!(h.db().is_read_only());

    // Reads keep working against the degraded engine.
    let resp = c.query("SELECT COUNT(*) FROM sb_accounts").unwrap();
    assert_eq!(resp.rows[0][0], mb2_common::Value::Int(400));
    drop(c);

    // The degraded state never acknowledged the write, so the oracle
    // (which skips it) must still match.
    h.assert_consistent();
    h.faults.disarm(points::WAL_FSYNC);
    h.shutdown();
}

/// A slow disk (stalled fsync) throttles commits but corrupts nothing.
#[test]
fn fsync_stall_preserves_consistency() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        name: "fsync_stall",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(
            Duration::from_millis(30),
            ChaosEvent::FsyncStall(Duration::from_millis(2)),
        )
        .then(Duration::from_millis(50), ChaosEvent::ClearFsyncStall)
        .run(&mut h, 50);
    assert!(h.report().committed > 0);
    h.shutdown();
}

/// Starving the garbage collector must not affect correctness — versions
/// pile up, the starved-cycle counter ticks, and once resumed GC catches
/// up with the workload's final state intact.
#[test]
fn gc_starvation_and_catchup() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        gc_interval: Some(Duration::from_millis(2)),
        name: "gc_starve",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(Duration::from_millis(20), ChaosEvent::StarveGc)
        .then(Duration::from_millis(60), ChaosEvent::ResumeGc)
        .run(&mut h, 50);
    let prom = h.db().metrics_prometheus();
    assert!(
        metric(&prom, "mb2_gc_cycles_starved_total") > 0.0,
        "the gc.cycle fault should have starved at least one pass"
    );
    // Let the resumed collector take a few passes before teardown.
    std::thread::sleep(Duration::from_millis(20));
    h.assert_consistent();
    h.shutdown();
}

/// Flipping execution knobs (batch size, morsel parallelism) mid-workload
/// changes plans and thread pools but never results.
#[test]
fn knob_flips_mid_workload() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        name: "knob_flips",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(Duration::from_millis(20), ChaosEvent::SetBatchSize(1))
        .then(Duration::from_millis(20), ChaosEvent::SetParallelism(3))
        .then(Duration::from_millis(20), ChaosEvent::SetBatchSize(256))
        .then(Duration::from_millis(20), ChaosEvent::SetParallelism(1))
        .run(&mut h, 40);
    assert!(h.report().committed > 0);
    h.shutdown();
}

/// A storm of injected connection tears (each request frame failing with
/// probability p) forces constant reconnects and commit-ack ambiguity; the
/// ledger-marker resolution plus replay oracle still proves zero loss.
#[test]
fn read_fault_storm_never_loses_commits() {
    let _serial = serial();
    let mut h = ChaosHarness::start(ChaosConfig {
        seed: seed(),
        name: "read_storm",
        ..ChaosConfig::default()
    });
    ChaosPlan::new()
        .then(Duration::from_millis(10), ChaosEvent::ReadFaultStorm(0.05))
        .then(Duration::from_millis(80), ChaosEvent::ClearReadFaults)
        .run(&mut h, 60);
    let report = h.report();
    assert!(report.committed > 0, "storm must not stop all progress");
    assert!(
        h.faults.fired(points::SERVER_READ) > 0,
        "the read fault should have torn at least one connection"
    );
    h.shutdown();
}
