//! Abstract syntax tree for the supported SQL subset.

use mb2_common::{DataType, Value};

/// Unbound expression as parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `t.col` or `col`.
    Column {
        table: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        op: crate::expr::BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: crate::expr::UnOp,
        operand: Box<Expr>,
    },
    /// Aggregate call, e.g. `SUM(a + b)`; `COUNT(*)` has `arg == None`.
    Agg {
        func: crate::expr::AggFunc,
        arg: Option<Box<Expr>>,
    },
}

/// A projection item: expression plus optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// Table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Empty means `SELECT *`.
    pub items: Vec<SelectItem>,
    /// `SELECT DISTINCT` (desugars to grouping on the select list).
    pub distinct: bool,
    pub from: Vec<TableRef>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// HAVING predicate over the grouped output.
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    /// Declared VARCHAR length (feature input for tuple-size estimates).
    pub varchar_len: Option<usize>,
}

/// Top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        /// `WITH (THREADS = n)` parallel-build option.
        threads: Option<usize>,
    },
    DropIndex {
        name: String,
        table: String,
    },
    Insert {
        table: String,
        /// Explicit column list; empty means full schema order.
        columns: Vec<String>,
        /// One or more VALUES rows of expressions.
        rows: Vec<Vec<Expr>>,
    },
    Select(Select),
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    Analyze {
        table: String,
    },
    Begin,
    Commit,
    Rollback,
}
