//! Regenerates one paper result; see `mb2_bench::experiments::fig07_generalization`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig07_generalization::run(scale);
    mb2_bench::report::emit("fig07_generalization", &report);
}
