//! Vectorized predicate evaluation over sealed columnar blocks.
//!
//! The block scan (OU `block_scan`) is the columnar fast path of the
//! sequential scan: when a shard unit has been sealed by the compactor and
//! no post-seal writer has dirtied it, the whole unit can be served from its
//! [`SealedBlock`] without touching a single chain lock. Predicates are
//! evaluated in two tiers:
//!
//! 1. **Range extraction** (`BlockPredicate::extract`): a conjunction of
//!    `col <cmp> literal` terms over `Int` columns lowers to one `[lo, hi]`
//!    interval per column. Extraction is conservative — any term it cannot
//!    express keeps the full row-wise evaluator as a *residual* and marks
//!    the predicate inexact; the extracted intervals remain *necessary*
//!    conditions, so they still prefilter and drive zone-map skipping.
//! 2. **Mask kernel** (`scan_block`): per 64-offset word, a branch-free
//!    compare loop over the column's contiguous `&[i64]` lane produces a
//!    match bitmask (the shape LLVM auto-vectorizes), ANDed with the block's
//!    validity bitmap and the column's NULL bitmap (SQL `NULL ⇒ false`).
//!    Surviving offsets are **late-materialized**: the original `Arc<Tuple>`
//!    is emitted by refcount bump, so block-scan output is byte-identical
//!    to the row scan's.
//!
//! Zone maps short-circuit entire blocks: if any extracted interval misses
//! a column's `[min, max]`, the block is skipped without sweeping a row.

use std::sync::Arc;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbResult, Value};
use mb2_sql::{BinOp, BoundExpr};
use mb2_storage::{IntColumn, SealedBlock, Ts, BLOCK_WORDS};

use crate::compile::Evaluator;

/// One extracted per-column interval: rows match only if
/// `lo <= row[col] <= hi`. `lo > hi` encodes an unsatisfiable term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ColRange {
    pub col: usize,
    pub lo: i64,
    pub hi: i64,
}

/// The vectorizable projection of a scan predicate.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockPredicate {
    /// Intersected intervals, at most one per referenced column.
    pub ranges: Vec<ColRange>,
    /// Whether the intervals are *equivalent* to the predicate (every
    /// conjunct extracted). Inexact predicates re-check survivors row-wise.
    pub exact: bool,
}

impl BlockPredicate {
    /// Extract intervals from a predicate (`None` = no predicate ⇒ match
    /// all, exact).
    pub fn extract(expr: Option<&BoundExpr>) -> BlockPredicate {
        let mut pred = BlockPredicate {
            ranges: Vec::new(),
            exact: true,
        };
        if let Some(e) = expr {
            walk(e, &mut pred);
        }
        pred
    }

    /// Narrow (intersect) the interval for `col`.
    fn narrow(&mut self, col: usize, lo: i64, hi: i64) {
        match self.ranges.iter_mut().find(|r| r.col == col) {
            Some(r) => {
                r.lo = r.lo.max(lo);
                r.hi = r.hi.min(hi);
            }
            None => self.ranges.push(ColRange { col, lo, hi }),
        }
    }

    /// Whether some extracted interval is empty — no row anywhere can
    /// match, regardless of residual terms.
    pub fn unsatisfiable(&self) -> bool {
        self.ranges.iter().any(|r| r.lo > r.hi)
    }
}

/// Collect conjuncts; anything non-extractable clears `exact`.
fn walk(expr: &BoundExpr, pred: &mut BlockPredicate) {
    if let BoundExpr::Binary { op, left, right } = expr {
        if *op == BinOp::And {
            walk(left, pred);
            walk(right, pred);
            return;
        }
        if op.is_comparison() {
            // `col <cmp> lit` and the mirrored `lit <cmp> col`.
            let term = match (&**left, &**right) {
                (BoundExpr::Col(c), BoundExpr::Lit(Value::Int(v))) => Some((*c, *op, *v)),
                (BoundExpr::Lit(Value::Int(v)), BoundExpr::Col(c)) => {
                    mirror(*op).map(|op| (*c, op, *v))
                }
                _ => None,
            };
            if let Some((col, op, v)) = term {
                let iv = match op {
                    BinOp::Eq => Some((v, v)),
                    BinOp::Lt => v.checked_sub(1).map(|h| (i64::MIN, h)),
                    BinOp::LtEq => Some((i64::MIN, v)),
                    BinOp::Gt => v.checked_add(1).map(|l| (l, i64::MAX)),
                    BinOp::GtEq => Some((v, i64::MAX)),
                    // `!=` is not an interval; leave it to the residual.
                    _ => None,
                };
                match iv {
                    Some((lo, hi)) => pred.narrow(col, lo, hi),
                    None if matches!(op, BinOp::Lt | BinOp::Gt) => {
                        // `< i64::MIN` / `> i64::MAX`: nothing matches.
                        pred.narrow(col, 1, 0);
                    }
                    None => pred.exact = false,
                }
                return;
            }
        }
    }
    pred.exact = false;
}

/// Flip a comparison for the `lit <cmp> col` orientation.
fn mirror(op: BinOp) -> Option<BinOp> {
    match op {
        BinOp::Eq => Some(BinOp::Eq),
        BinOp::Lt => Some(BinOp::Gt),
        BinOp::LtEq => Some(BinOp::GtEq),
        BinOp::Gt => Some(BinOp::Lt),
        BinOp::GtEq => Some(BinOp::LtEq),
        _ => None,
    }
}

/// Work done by one [`scan_block`] call, for OU accounting.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BlockScanOutcome {
    /// Live rows the kernel swept (0 when the zone map skipped the block).
    pub swept: u64,
    /// Rows emitted after all predicate tiers.
    pub emitted: u64,
    /// Bytes of emitted rows.
    pub bytes: u64,
    /// The zone map (or an unsatisfiable interval) skipped the whole block.
    pub zone_skipped: bool,
}

/// Per-word match mask for `lo <= v <= hi` over the column's lane.
/// Branch-free so the compare loop auto-vectorizes; NULL offsets are
/// masked out afterwards (SQL `NULL ⇒ false`).
#[inline]
fn range_mask(col: &IntColumn, w: usize, lo: i64, hi: i64) -> u64 {
    let lane = &col.data[w * 64..w * 64 + 64];
    let mut m = 0u64;
    for (i, &v) in lane.iter().enumerate() {
        m |= u64::from(v >= lo && v <= hi) << i;
    }
    m & !col.nulls[w]
}

/// Evaluate `pred` (with `filter` as the row-wise residual/full predicate)
/// over a clean sealed block, emitting surviving rows in offset order.
///
/// The caller must have checked `block.is_dirty()` *after* fixing its read
/// timestamp — a clean block is then a complete snapshot of the unit (every
/// post-seal writer marks the block dirty before its commit timestamp is
/// drawn), so no chain lock is taken here.
pub(crate) fn scan_block(
    block: &SealedBlock,
    pred: &BlockPredicate,
    filter: Option<&Evaluator>,
    read_ts: Ts,
    mut emit: impl FnMut(&Arc<Tuple>),
) -> DbResult<BlockScanOutcome> {
    let mut out = BlockScanOutcome::default();
    if pred.unsatisfiable() {
        out.zone_skipped = true;
        return Ok(out);
    }
    // Split intervals into vectorizable (column has an Int projection) and
    // not (column is non-Int in the schema — the residual re-checks those).
    let mut vec_ranges: Vec<(&IntColumn, i64, i64)> = Vec::with_capacity(pred.ranges.len());
    let mut all_vectorized = true;
    for r in &pred.ranges {
        match block.int_col(r.col) {
            Some(col) => {
                if !col.zone_overlaps(r.lo, r.hi) {
                    out.zone_skipped = true;
                    return Ok(out);
                }
                vec_ranges.push((col, r.lo, r.hi));
            }
            None => all_vectorized = false,
        }
    }
    // The masks alone decide membership only for a fully-extracted,
    // fully-vectorized predicate; otherwise survivors re-run the full
    // row-wise evaluator (the masks stay sound as necessary conditions).
    let residual = if pred.exact && all_vectorized {
        None
    } else {
        filter
    };
    out.swept = block.n_valid() as u64;
    let valid = block.valid_words();
    for (w, &word) in valid.iter().enumerate().take(BLOCK_WORDS) {
        let mut m = word;
        for &(col, lo, hi) in &vec_ranges {
            if m == 0 {
                break;
            }
            m &= range_mask(col, w, lo, hi);
        }
        while m != 0 {
            let off = w * 64 + m.trailing_zeros() as usize;
            m &= m - 1;
            // Frozen rows are below the GC watermark, so visibility holds
            // for every live snapshot; the check is defensive.
            let Some(row) = block.row_visible(off, read_ts) else {
                continue;
            };
            if let Some(ev) = residual {
                if !ev.eval_bool(row)? {
                    continue;
                }
            }
            out.emitted += 1;
            out.bytes += tuple_size_bytes(row) as u64;
            emit(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Schema};
    use mb2_storage::SHARD_UNIT_SLOTS;

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn col_lit(op: BinOp, c: usize, v: i64) -> BoundExpr {
        bin(op, BoundExpr::Col(c), BoundExpr::Lit(Value::Int(v)))
    }

    #[test]
    fn extracts_conjunctions_of_int_comparisons() {
        let e = bin(
            BinOp::And,
            col_lit(BinOp::GtEq, 0, 10),
            bin(
                BinOp::And,
                col_lit(BinOp::Lt, 0, 20),
                col_lit(BinOp::Eq, 2, 7),
            ),
        );
        let p = BlockPredicate::extract(Some(&e));
        assert!(p.exact);
        assert_eq!(
            p.ranges,
            vec![
                ColRange {
                    col: 0,
                    lo: 10,
                    hi: 19
                },
                ColRange {
                    col: 2,
                    lo: 7,
                    hi: 7
                },
            ]
        );
        assert!(!p.unsatisfiable());
    }

    #[test]
    fn mirrored_literal_first_comparisons_extract() {
        // 5 < col0  ⇒  col0 > 5  ⇒  [6, MAX]
        let e = bin(BinOp::Lt, BoundExpr::Lit(Value::Int(5)), BoundExpr::Col(0));
        let p = BlockPredicate::extract(Some(&e));
        assert!(p.exact);
        assert_eq!(
            p.ranges,
            vec![ColRange {
                col: 0,
                lo: 6,
                hi: i64::MAX
            }]
        );
    }

    #[test]
    fn non_extractable_terms_keep_necessary_intervals_but_lose_exactness() {
        let e = bin(
            BinOp::And,
            col_lit(BinOp::Gt, 1, 0),
            col_lit(BinOp::NotEq, 1, 3),
        );
        let p = BlockPredicate::extract(Some(&e));
        assert!(!p.exact);
        assert_eq!(
            p.ranges,
            vec![ColRange {
                col: 1,
                lo: 1,
                hi: i64::MAX
            }]
        );
        // OR is not a conjunction: nothing extractable, still sound.
        let e = bin(
            BinOp::Or,
            col_lit(BinOp::Eq, 0, 1),
            col_lit(BinOp::Eq, 0, 2),
        );
        let p = BlockPredicate::extract(Some(&e));
        assert!(!p.exact);
        assert!(p.ranges.is_empty());
    }

    #[test]
    fn contradictory_intervals_are_unsatisfiable() {
        let e = bin(
            BinOp::And,
            col_lit(BinOp::Gt, 0, 10),
            col_lit(BinOp::Lt, 0, 5),
        );
        let p = BlockPredicate::extract(Some(&e));
        assert!(p.exact);
        assert!(p.unsatisfiable());
        // Overflow edges: nothing is < i64::MIN.
        let p = BlockPredicate::extract(Some(&col_lit(BinOp::Lt, 0, i64::MIN)));
        assert!(p.unsatisfiable());
    }

    fn block(rows: impl IntoIterator<Item = (usize, i64)>) -> SealedBlock {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("s", DataType::Varchar),
        ]);
        let mut entries: Vec<Option<(Arc<Tuple>, Ts)>> =
            (0..SHARD_UNIT_SLOTS).map(|_| None).collect();
        for (off, v) in rows {
            entries[off] = Some((
                Arc::new(vec![Value::Int(v), Value::Varchar(format!("r{v}"))]),
                Ts(5),
            ));
        }
        SealedBlock::build(&schema, entries)
    }

    #[test]
    fn kernel_matches_rows_in_offset_order_with_late_materialization() {
        let b = block([(1, 10), (63, 99), (64, 15), (300, 10)]);
        let pred = BlockPredicate::extract(Some(&col_lit(BinOp::LtEq, 0, 20)));
        let mut got = Vec::new();
        let out = scan_block(&b, &pred, None, Ts(100), |row| {
            got.push(Arc::clone(row));
        })
        .unwrap();
        assert_eq!(out.swept, 4);
        assert_eq!(out.emitted, 3);
        assert!(!out.zone_skipped);
        let vals: Vec<i64> = got
            .iter()
            .map(|r| match r[0] {
                Value::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![10, 15, 10]);
    }

    #[test]
    fn zone_map_skips_without_sweeping() {
        let b = block([(0, 1), (1, 2), (2, 3)]);
        let pred = BlockPredicate::extract(Some(&col_lit(BinOp::Gt, 0, 100)));
        let out = scan_block(&b, &pred, None, Ts(100), |_| panic!("no rows")).unwrap();
        assert!(out.zone_skipped);
        assert_eq!(out.swept, 0);
        assert_eq!(out.emitted, 0);
    }

    #[test]
    fn inexact_predicates_run_the_residual_on_survivors() {
        let b = block([(0, 1), (1, 2), (2, 3), (3, 4)]);
        // col0 > 1 AND col0 != 3: interval [2, MAX] prefilters, residual
        // drops the 3.
        let e = bin(
            BinOp::And,
            col_lit(BinOp::Gt, 0, 1),
            col_lit(BinOp::NotEq, 0, 3),
        );
        let pred = BlockPredicate::extract(Some(&e));
        let ev = Evaluator::new(&e, true);
        let mut got = Vec::new();
        let out = scan_block(&b, &pred, Some(&ev), Ts(100), |row| {
            got.push(row[0].clone());
        })
        .unwrap();
        assert_eq!(out.emitted, 2);
        assert_eq!(got, vec![Value::Int(2), Value::Int(4)]);
    }

    #[test]
    fn predicate_on_non_int_column_falls_back_to_residual() {
        let b = block([(0, 1), (5, 2)]);
        // col1 is a Varchar: extraction can't see types, the kernel can.
        let e = bin(
            BinOp::Eq,
            BoundExpr::Col(1),
            BoundExpr::Lit(Value::Varchar("r2".into())),
        );
        let pred = BlockPredicate::extract(Some(&e));
        assert!(!pred.exact);
        let ev = Evaluator::new(&e, true);
        let mut got = Vec::new();
        let out = scan_block(&b, &pred, Some(&ev), Ts(100), |row| {
            got.push(row[0].clone());
        })
        .unwrap();
        assert_eq!(out.swept, 2);
        assert_eq!(got, vec![Value::Int(2)]);
    }
}
