//! The OU translator (paper §6.1): extract OUs + model features from query
//! and action plans. The same translator serves offline training-data
//! collection and runtime inference (Fig. 2 / Fig. 3).

use mb2_common::{OuKind, Prng};
use mb2_engine::Knobs;
use mb2_exec::subtree_size;
use mb2_sql::PlanNode;

use crate::features::OuInstance;

/// Translator configuration.
#[derive(Debug, Clone, Default)]
pub struct TranslatorConfig {
    /// Append the CPU frequency (GHz) to every OU's features (paper §8.6).
    pub include_hw_context: bool,
    /// Gaussian noise injected into the tuple-count and cardinality features
    /// as `(relative std-dev, seed)` — the paper's §8.5 robustness study.
    pub cardinality_noise: Option<(f64, u64)>,
}

/// Extracts OUs and features from plans.
#[derive(Default)]
pub struct OuTranslator {
    pub config: TranslatorConfig,
}

impl OuTranslator {
    pub fn new(config: TranslatorConfig) -> OuTranslator {
        OuTranslator { config }
    }

    /// Translate a plan into its OU instances, numbered identically to the
    /// executor (pre-order DFS).
    pub fn translate_plan(&self, plan: &PlanNode, knobs: &Knobs) -> Vec<OuInstance> {
        let mut out = Vec::new();
        self.walk(plan, 0, knobs, &mut out);
        if let Some((sigma, seed)) = self.config.cardinality_noise {
            let mut rng = Prng::new(seed);
            for inst in &mut out {
                if let Some(i) = crate::features::normalization_feature(inst.ou) {
                    inst.features[i] = (inst.features[i] * (1.0 + sigma * rng.gaussian())).max(1.0);
                }
                if let Some(i) = crate::features::cardinality_feature(inst.ou) {
                    inst.features[i] = (inst.features[i] * (1.0 + sigma * rng.gaussian())).max(1.0);
                }
            }
        }
        out
    }

    fn push(
        &self,
        out: &mut Vec<OuInstance>,
        node_id: u32,
        ou: OuKind,
        mut features: Vec<f64>,
        knobs: &Knobs,
    ) {
        // Behavior knobs are appended here, uniformly, so the per-node
        // `walk` arms only build the base (work-shape) features. Matches
        // the trailing knob names in `feature_names`.
        match ou {
            OuKind::SeqScan
            | OuKind::IdxScan
            | OuKind::JoinHashBuild
            | OuKind::JoinHashProbe
            | OuKind::AggBuild
            | OuKind::AggProbe
            | OuKind::SortBuild
            | OuKind::SortIter
            | OuKind::InsertTuple
            | OuKind::UpdateTuple
            | OuKind::DeleteTuple
            | OuKind::OutputResult
            | OuKind::BlockScan => {
                features.push(knobs.batch_size.max(1) as f64);
                features.push(knobs.parallelism.max(1) as f64);
                features.push(knobs.shard_count.max(1) as f64);
            }
            OuKind::ArithmeticFilter => {
                features.push(knobs.batch_size.max(1) as f64);
                features.push(knobs.parallelism.max(1) as f64);
            }
            _ => {}
        }
        debug_assert_eq!(features.len(), crate::features::feature_width(ou));
        if self.config.include_hw_context {
            features.push(knobs.hw.cpu_freq_ghz);
        }
        out.push(OuInstance {
            node_id,
            ou,
            features,
        });
    }

    fn walk(&self, node: &PlanNode, id: u32, knobs: &Knobs, out: &mut Vec<OuInstance>) {
        self.walk_inner(node, id, knobs, false, out);
    }

    /// `victim` marks the scan child of an UPDATE/DELETE: the executor runs
    /// those through the slot-tracking row path (it must hold the version
    /// chain to latch the victim), so they never take the block fast path
    /// and must not be priced with a Block/Scan OU.
    fn walk_inner(
        &self,
        node: &PlanNode,
        id: u32,
        knobs: &Knobs,
        victim: bool,
        out: &mut Vec<OuInstance>,
    ) {
        let mode = knobs.execution_mode.as_feature();
        match node {
            PlanNode::SeqScan { filter, est, .. } => {
                self.push(
                    out,
                    id,
                    OuKind::SeqScan,
                    vec![
                        est.rows_in,
                        est.n_cols as f64,
                        est.width,
                        est.rows_in,
                        0.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                if knobs.columnar_enabled && !victim {
                    // The block path sweeps the same tuples the row scan
                    // would; selectivity drives how much late
                    // materialization the survivors cost.
                    let selectivity = if est.rows_in > 0.0 {
                        (est.rows_out / est.rows_in).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    self.push(
                        out,
                        id,
                        OuKind::BlockScan,
                        vec![est.rows_in, selectivity, est.n_cols as f64],
                        knobs,
                    );
                }
                if let Some(f) = filter {
                    self.push(
                        out,
                        id,
                        OuKind::ArithmeticFilter,
                        vec![est.rows_in, f.op_count() as f64, mode],
                        knobs,
                    );
                }
            }
            PlanNode::IndexScan {
                filter, est, range, ..
            } => {
                self.push(
                    out,
                    id,
                    OuKind::IdxScan,
                    vec![
                        est.rows_in,
                        est.n_cols as f64,
                        est.width,
                        est.rows_in.max(1.0),
                        range.lo.len() as f64,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                if let Some(f) = filter {
                    self.push(
                        out,
                        id,
                        OuKind::ArithmeticFilter,
                        vec![est.rows_in, f.op_count() as f64, mode],
                        knobs,
                    );
                }
            }
            PlanNode::HashJoin {
                build,
                probe,
                filter,
                est,
                build_keys,
                ..
            } => {
                let build_id = id + 1;
                let probe_id = id + 1 + subtree_size(build);
                self.walk_inner(build, build_id, knobs, false, out);
                self.walk_inner(probe, probe_id, knobs, false, out);
                let b = build.est();
                let p = probe.est();
                self.push(
                    out,
                    id,
                    OuKind::JoinHashBuild,
                    vec![
                        b.rows_out.max(1.0),
                        b.n_cols as f64,
                        b.width,
                        est.cardinality.max(1.0),
                        b.width + build_keys.len() as f64 * 16.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                self.push(
                    out,
                    id,
                    OuKind::JoinHashProbe,
                    vec![
                        p.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.rows_out.max(1.0),
                        est.width,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                if let Some(f) = filter {
                    self.push(
                        out,
                        id,
                        OuKind::ArithmeticFilter,
                        vec![est.rows_out.max(1.0), f.op_count() as f64, mode],
                        knobs,
                    );
                }
            }
            PlanNode::NestedLoopJoin {
                outer,
                inner,
                filter,
                ..
            } => {
                let outer_id = id + 1;
                let inner_id = id + 1 + subtree_size(outer);
                self.walk_inner(outer, outer_id, knobs, false, out);
                self.walk_inner(inner, inner_id, knobs, false, out);
                let pairs = outer.est().rows_out.max(1.0) * inner.est().rows_out.max(1.0);
                let ops = filter.as_ref().map_or(0, |f| f.op_count()) as f64;
                self.push(
                    out,
                    id,
                    OuKind::ArithmeticFilter,
                    vec![pairs, ops, mode],
                    knobs,
                );
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
                est,
            } => {
                self.walk_inner(input, id + 1, knobs, false, out);
                let i = input.est();
                let payload = (group_by.len() + aggs.len()) as f64 * 16.0;
                self.push(
                    out,
                    id,
                    OuKind::AggBuild,
                    vec![
                        i.rows_out.max(1.0),
                        i.n_cols as f64,
                        i.width,
                        est.cardinality.max(1.0),
                        payload,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                self.push(
                    out,
                    id,
                    OuKind::AggProbe,
                    vec![
                        est.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.cardinality.max(1.0),
                        payload,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::Sort { input, keys, est } => {
                self.walk_inner(input, id + 1, knobs, false, out);
                let i = input.est();
                self.push(
                    out,
                    id,
                    OuKind::SortBuild,
                    vec![
                        i.rows_out.max(1.0),
                        i.n_cols as f64,
                        i.width,
                        est.cardinality.max(1.0),
                        keys.len() as f64 * 16.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
                self.push(
                    out,
                    id,
                    OuKind::SortIter,
                    vec![
                        est.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.cardinality.max(1.0),
                        keys.len() as f64 * 16.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::Filter {
                input,
                predicate,
                est,
            } => {
                self.walk_inner(input, id + 1, knobs, false, out);
                self.push(
                    out,
                    id,
                    OuKind::ArithmeticFilter,
                    vec![est.rows_in.max(1.0), predicate.op_count() as f64, mode],
                    knobs,
                );
            }
            PlanNode::Project { input, exprs, est } => {
                self.walk_inner(input, id + 1, knobs, false, out);
                let ops: usize = exprs.iter().map(|e| e.op_count()).sum();
                self.push(
                    out,
                    id,
                    OuKind::ArithmeticFilter,
                    vec![est.rows_in.max(1.0), ops.max(1) as f64, mode],
                    knobs,
                );
            }
            PlanNode::Limit { input, .. } => {
                self.walk_inner(input, id + 1, knobs, false, out);
            }
            PlanNode::Output { input, est, .. } => {
                self.walk_inner(input, id + 1, knobs, false, out);
                self.push(
                    out,
                    id,
                    OuKind::OutputResult,
                    vec![
                        est.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.rows_out.max(1.0),
                        0.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::Insert { est, .. } => {
                self.push(
                    out,
                    id,
                    OuKind::InsertTuple,
                    vec![
                        est.rows_in.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.rows_in.max(1.0),
                        0.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::Update {
                scan,
                est,
                assignments,
                ..
            } => {
                self.walk_inner(scan, id + 1, knobs, true, out);
                self.push(
                    out,
                    id,
                    OuKind::UpdateTuple,
                    vec![
                        est.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.rows_out.max(1.0),
                        assignments.len() as f64,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::Delete { scan, est, .. } => {
                self.walk_inner(scan, id + 1, knobs, true, out);
                self.push(
                    out,
                    id,
                    OuKind::DeleteTuple,
                    vec![
                        est.rows_out.max(1.0),
                        est.n_cols as f64,
                        est.width,
                        est.rows_out.max(1.0),
                        0.0,
                        0.0,
                        mode,
                    ],
                    knobs,
                );
            }
            PlanNode::CreateIndex {
                columns,
                threads,
                est,
                ..
            } => {
                self.push(
                    out,
                    id,
                    OuKind::IndexBuild,
                    vec![
                        est.rows_in.max(1.0),
                        columns.len() as f64,
                        est.width,
                        est.cardinality.max(1.0),
                        *threads as f64,
                    ],
                    knobs,
                );
            }
        }
    }

    // --------------------------------------------------------------
    // Non-plan OUs: features derived from forecast-level quantities.
    // --------------------------------------------------------------

    /// Log Record Serialize OU features for a batch of records.
    pub fn log_serialize_features(
        &self,
        total_bytes: f64,
        n_records: f64,
        knobs: &Knobs,
    ) -> OuInstance {
        let n_buffers = (total_bytes / mb2_engine::wal::LOG_BUFFER_CAPACITY as f64)
            .ceil()
            .max(1.0);
        let avg = if n_records > 0.0 {
            total_bytes / n_records
        } else {
            0.0
        };
        self.finish_util(
            OuKind::LogSerialize,
            vec![total_bytes, n_records, n_buffers, avg],
            knobs,
        )
    }

    /// Log Record Flush OU features for one forecast interval.
    pub fn log_flush_features(&self, total_bytes: f64, knobs: &Knobs) -> OuInstance {
        let n_buffers = (total_bytes / mb2_engine::wal::LOG_BUFFER_CAPACITY as f64)
            .ceil()
            .max(1.0);
        self.finish_util(
            OuKind::LogFlush,
            vec![
                total_bytes,
                n_buffers,
                knobs.wal_flush_interval.as_millis() as f64,
            ],
            knobs,
        )
    }

    /// Garbage Collection OU features.
    pub fn gc_features(
        &self,
        n_versions: f64,
        n_slots: f64,
        interval_ms: f64,
        knobs: &Knobs,
    ) -> OuInstance {
        self.finish_util(
            OuKind::GarbageCollection,
            vec![n_versions, n_slots, interval_ms],
            knobs,
        )
    }

    /// Compaction OU features: frozen tuples a pass would seal, blocks it
    /// would produce, and the cadence knob that sets how often it pays
    /// that cost.
    pub fn compaction_features(
        &self,
        n_sealed: f64,
        n_blocks: f64,
        interval_ms: f64,
        knobs: &Knobs,
    ) -> OuInstance {
        self.finish_util(
            OuKind::Compaction,
            vec![n_sealed, n_blocks, interval_ms],
            knobs,
        )
    }

    /// Transaction Begin / Commit OU features.
    pub fn txn_features(
        &self,
        ou: OuKind,
        arrival_rate: f64,
        active_txns: f64,
        knobs: &Knobs,
    ) -> OuInstance {
        debug_assert!(matches!(ou, OuKind::TxnBegin | OuKind::TxnCommit));
        self.finish_util(ou, vec![arrival_rate, active_txns], knobs)
    }

    /// Index Build OU features for an action outside a plan.
    pub fn index_build_features(
        &self,
        n_tuples: f64,
        n_key_cols: f64,
        key_size: f64,
        cardinality: f64,
        threads: f64,
        knobs: &Knobs,
    ) -> OuInstance {
        self.finish_util(
            OuKind::IndexBuild,
            vec![n_tuples, n_key_cols, key_size, cardinality, threads],
            knobs,
        )
    }

    fn finish_util(&self, ou: OuKind, mut features: Vec<f64>, knobs: &Knobs) -> OuInstance {
        // Commit-lock striping and the per-shard GC cadence scale with the
        // table shard count, so the txn and GC OUs carry it as a knob.
        if matches!(
            ou,
            OuKind::GarbageCollection | OuKind::TxnBegin | OuKind::TxnCommit | OuKind::Compaction
        ) {
            features.push(knobs.shard_count.max(1) as f64);
        }
        debug_assert_eq!(features.len(), crate::features::feature_width(ou));
        if self.config.include_hw_context {
            features.push(knobs.hw.cpu_freq_ghz);
        }
        OuInstance {
            node_id: 0,
            ou,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_engine::Database;

    fn db_with_data() -> Database {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT, c FLOAT)")
            .unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {}, 1.5)", i % 10))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        db
    }

    #[test]
    fn translation_matches_execution_ous() {
        // Every (node_id, OU) emitted by the translator must be measured by
        // the executor, and vice versa.
        use parking_lot::Mutex;
        struct Rec(Mutex<Vec<(u32, OuKind)>>);
        impl mb2_exec::OuRecorder for Rec {
            fn record(&self, id: u32, ou: OuKind, _: mb2_common::Metrics) {
                self.0.lock().push((id, ou));
            }
        }

        let db = db_with_data();
        let sqls = [
            "SELECT * FROM t WHERE a < 50",
            "SELECT b, COUNT(*), SUM(c) FROM t GROUP BY b ORDER BY b",
            "SELECT a + b * 2 FROM t ORDER BY a + b * 2 LIMIT 5",
            "INSERT INTO t VALUES (999, 9, 9.9)",
            "UPDATE t SET c = c + 1.0 WHERE a = 3",
            "DELETE FROM t WHERE a = 999",
        ];
        let translator = OuTranslator::default();
        for sql in sqls {
            let plan = db.prepare(sql).unwrap();
            let expected: Vec<(u32, OuKind)> = translator
                .translate_plan(&plan, &db.knobs())
                .into_iter()
                .map(|i| (i.node_id, i.ou))
                .collect();
            let rec = Rec(Mutex::new(Vec::new()));
            db.execute_plan(&plan, Some(&rec)).unwrap();
            let mut measured = rec.0.into_inner();
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            measured.sort();
            assert_eq!(expected_sorted, measured, "OU mismatch for {sql}");
        }
    }

    #[test]
    fn columnar_translation_matches_execution_ous() {
        // With the columnar knob on, the translator must emit a Block/Scan
        // instance exactly where the executor opens one: every sequential
        // scan except the slot-tracking victim scans under UPDATE/DELETE.
        use parking_lot::Mutex;
        struct Rec(Mutex<Vec<(u32, OuKind)>>);
        impl mb2_exec::OuRecorder for Rec {
            fn record(&self, id: u32, ou: OuKind, _: mb2_common::Metrics) {
                self.0.lock().push((id, ou));
            }
        }

        let db = db_with_data();
        db.set_columnar_enabled(true);
        db.compact_now();
        let translator = OuTranslator::default();
        for sql in [
            "SELECT * FROM t WHERE a < 50",
            "SELECT b, COUNT(*), SUM(c) FROM t GROUP BY b ORDER BY b",
            "UPDATE t SET c = c + 1.0 WHERE a = 3",
            "DELETE FROM t WHERE a = 42",
        ] {
            let plan = db.prepare(sql).unwrap();
            let mut expected: Vec<(u32, OuKind)> = translator
                .translate_plan(&plan, &db.knobs())
                .into_iter()
                .map(|i| (i.node_id, i.ou))
                .collect();
            let has_block_scan = expected.iter().any(|(_, ou)| *ou == OuKind::BlockScan);
            assert_eq!(
                has_block_scan,
                sql.starts_with("SELECT"),
                "victim scans must not be priced as Block/Scan: {sql}"
            );
            let rec = Rec(Mutex::new(Vec::new()));
            db.execute_plan(&plan, Some(&rec)).unwrap();
            let mut measured = rec.0.into_inner();
            expected.sort();
            measured.sort();
            assert_eq!(expected, measured, "OU mismatch for {sql}");
        }
    }

    #[test]
    fn translated_tuple_features_match_measured_work() {
        // On an ANALYZEd table with exact-cardinality queries (no filters),
        // the translator's leading tuple-count feature must equal the tuple
        // work the batch executor actually accounts per (node, OU) — the
        // feature/label join the OU models train on.
        use parking_lot::Mutex;
        use std::collections::HashMap;
        struct Rec(Mutex<HashMap<(u32, OuKind), u64>>);
        impl mb2_exec::OuRecorder for Rec {
            fn record(&self, _: u32, _: OuKind, _: mb2_common::Metrics) {}
            fn record_work(&self, id: u32, ou: OuKind, w: mb2_exec::WorkCounts) {
                *self.0.lock().entry((id, ou)).or_insert(0) += w.tuples;
            }
        }

        let db = db_with_data();
        let translator = OuTranslator::default();
        for sql in [
            "SELECT * FROM t",
            "SELECT a FROM t ORDER BY a",
            "SELECT COUNT(*) FROM t",
        ] {
            let plan = db.prepare(sql).unwrap();
            let rec = Rec(Mutex::new(HashMap::new()));
            db.execute_plan(&plan, Some(&rec)).unwrap();
            let measured = rec.0.into_inner();
            for inst in translator.translate_plan(&plan, &db.knobs()) {
                let got = measured.get(&(inst.node_id, inst.ou)).copied().unwrap_or(0);
                assert_eq!(
                    got as f64, inst.features[0],
                    "tuple feature mismatch for {sql}, node {} {:?}",
                    inst.node_id, inst.ou
                );
            }
        }
    }

    #[test]
    fn feature_vectors_have_declared_width() {
        let db = db_with_data();
        let plan = db.prepare("SELECT b, COUNT(*) FROM t GROUP BY b").unwrap();
        for inst in OuTranslator::default().translate_plan(&plan, &db.knobs()) {
            assert_eq!(inst.features.len(), crate::features::feature_width(inst.ou));
        }
    }

    #[test]
    fn hw_context_appends_one_feature() {
        let db = db_with_data();
        let plan = db.prepare("SELECT * FROM t").unwrap();
        let translator = OuTranslator::new(TranslatorConfig {
            include_hw_context: true,
            cardinality_noise: None,
        });
        for inst in translator.translate_plan(&plan, &db.knobs()) {
            assert_eq!(
                inst.features.len(),
                crate::features::feature_width(inst.ou) + 1
            );
            assert_eq!(*inst.features.last().unwrap(), db.knobs().hw.cpu_freq_ghz);
        }
    }

    #[test]
    fn noise_perturbs_tuple_and_cardinality_features() {
        let db = db_with_data();
        let plan = db.prepare("SELECT b, COUNT(*) FROM t GROUP BY b").unwrap();
        let clean = OuTranslator::default().translate_plan(&plan, &db.knobs());
        let noisy = OuTranslator::new(TranslatorConfig {
            include_hw_context: false,
            cardinality_noise: Some((0.3, 42)),
        })
        .translate_plan(&plan, &db.knobs());
        let mut changed = 0;
        for (c, n) in clean.iter().zip(&noisy) {
            assert_eq!(c.ou, n.ou);
            if c.features != n.features {
                changed += 1;
            }
        }
        assert!(changed > 0, "noise must perturb at least one OU");
    }

    #[test]
    fn knob_features_track_knob_changes() {
        let db = db_with_data();
        let plan = db.prepare("SELECT * FROM t WHERE a < 50").unwrap();
        db.set_batch_size(7);
        db.set_parallelism(3);
        db.set_shard_count(5);
        let t = OuTranslator::default();
        let knobs = db.knobs();
        let insts = t.translate_plan(&plan, &knobs);
        assert!(!insts.is_empty());
        for inst in &insts {
            let tail = &inst.features[inst.features.len().saturating_sub(3)..];
            match inst.ou {
                OuKind::SeqScan | OuKind::OutputResult => {
                    assert_eq!(tail, &[7.0, 3.0, 5.0], "{:?}", inst.ou);
                }
                OuKind::ArithmeticFilter => {
                    assert_eq!(&tail[1..], &[7.0, 3.0], "{:?}", inst.ou);
                }
                _ => {}
            }
        }
        assert_eq!(
            *t.txn_features(OuKind::TxnCommit, 1.0, 1.0, &knobs)
                .features
                .last()
                .unwrap(),
            5.0
        );
        assert_eq!(
            *t.gc_features(1.0, 1.0, 1.0, &knobs)
                .features
                .last()
                .unwrap(),
            5.0
        );
    }

    #[test]
    fn util_features_shapes() {
        let t = OuTranslator::default();
        let knobs = Knobs::default();
        assert_eq!(
            t.log_serialize_features(8192.0, 100.0, &knobs)
                .features
                .len(),
            4
        );
        assert_eq!(t.log_flush_features(8192.0, &knobs).features.len(), 3);
        assert_eq!(t.gc_features(10.0, 100.0, 5.0, &knobs).features.len(), 4);
        assert_eq!(
            t.txn_features(OuKind::TxnBegin, 100.0, 4.0, &knobs)
                .features
                .len(),
            3
        );
        assert_eq!(
            t.index_build_features(1000.0, 2.0, 16.0, 500.0, 4.0, &knobs)
                .features
                .len(),
            5
        );
        assert_eq!(
            t.compaction_features(512.0, 1.0, 100.0, &knobs)
                .features
                .len(),
            4
        );
    }
}
