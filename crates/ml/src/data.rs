//! Dataset utilities: splits, folds, and feature standardization.

use mb2_common::Prng;

/// A supervised dataset: row-major features plus multi-output targets.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    pub x: Vec<Vec<f64>>,
    pub y: Vec<Vec<f64>>,
}

impl Dataset {
    pub fn new(x: Vec<Vec<f64>>, y: Vec<Vec<f64>>) -> Dataset {
        assert_eq!(x.len(), y.len(), "feature/target row count mismatch");
        Dataset { x, y }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    pub fn n_outputs(&self) -> usize {
        self.y.first().map_or(0, Vec::len)
    }

    pub fn push(&mut self, x: Vec<f64>, y: Vec<f64>) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        self.x.extend(other.x);
        self.y.extend(other.y);
    }

    /// Select rows by index.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i].clone()).collect(),
        }
    }

    /// Deterministically shuffle rows in place.
    pub fn shuffle(&mut self, rng: &mut Prng) {
        for i in (1..self.len()).rev() {
            let j = rng.range_usize(0, i + 1);
            self.x.swap(i, j);
            self.y.swap(i, j);
        }
    }
}

/// Split a dataset into train/test with the given train fraction, after a
/// deterministic shuffle. MB2 uses 80/20 (paper §6.4).
pub fn train_test_split(data: &Dataset, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!((0.0..=1.0).contains(&train_fraction));
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = Prng::new(seed);
    rng.shuffle(&mut indices);
    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    let (train_idx, test_idx) = indices.split_at(cut.min(data.len()));
    (data.select(train_idx), data.select(test_idx))
}

/// Produce `k` (train, validation) folds for cross-validation.
pub fn k_folds(data: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "need at least 2 folds");
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = Prng::new(seed);
    rng.shuffle(&mut indices);
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let val: Vec<usize> = indices.iter().copied().skip(fold).step_by(k).collect();
        let train: Vec<usize> = indices
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, i)| i)
            .collect();
        folds.push((data.select(&train), data.select(&val)));
    }
    folds
}

/// Per-feature standardization to zero mean / unit variance. Constant
/// features get scale 1 so they pass through unchanged (minus their mean).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    pub means: Vec<f64>,
    pub scales: Vec<f64>,
}

impl StandardScaler {
    pub fn fit(x: &[Vec<f64>]) -> StandardScaler {
        let n = x.len().max(1) as f64;
        let d = x.first().map_or(0, Vec::len);
        let mut means = vec![0.0; d];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in x {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let dlt = v - m;
                *s += dlt * dlt;
            }
        }
        let scales = vars
            .iter()
            .map(|&v| {
                let sd = (v / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        StandardScaler { means, scales }
    }

    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.scales)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let y: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn split_preserves_rows() {
        let d = toy(100);
        let (train, test) = train_test_split(&d, 0.8, 42);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        // Every y value appears exactly once across the two splits.
        let mut seen: Vec<f64> = train.y.iter().chain(test.y.iter()).map(|r| r[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let (a, _) = train_test_split(&d, 0.8, 7);
        let (b, _) = train_test_split(&d, 0.8, 7);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn folds_partition_data() {
        let d = toy(30);
        let folds = k_folds(&d, 5, 1);
        assert_eq!(folds.len(), 5);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, 30);
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 30);
        }
    }

    #[test]
    fn scaler_standardizes() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        // First feature: mean 3, sd sqrt(8/3).
        assert!((t[0][0] + t[2][0]).abs() < 1e-12);
        assert!(t[1][0].abs() < 1e-12);
        // Constant feature maps to zero with scale 1 (no division blowup).
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn select_and_extend() {
        let mut d = toy(5);
        let s = d.select(&[4, 0]);
        assert_eq!(s.y[0][0], 4.0);
        assert_eq!(s.y[1][0], 0.0);
        d.extend(s);
        assert_eq!(d.len(), 7);
    }
}
