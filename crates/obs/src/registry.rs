//! The metrics registry: named handles, idempotent registration, and the
//! global enable switch.
//!
//! Subsystems register metrics once (at construction) and keep the returned
//! `Arc` handle; the hot path touches only the handle's atomics, never the
//! registry lock. Registering the same name (and labels) again returns the
//! *same* handle, so two components describing the same series share it
//! instead of clobbering each other. Registering a name under a different
//! metric type is a programming error and panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::counter::{Counter, FloatGauge, Gauge};
use crate::histogram::Histogram;
use crate::span::SpanTimer;

/// A typed handle stored in the registry.
#[derive(Debug, Clone)]
pub enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

impl MetricHandle {
    fn type_name(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::FloatGauge(_) => "float gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: MetricHandle,
}

/// One registered metric as seen by a scrape.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric family name (without labels), e.g. `mb2_txn_commits_total`.
    pub family: String,
    /// Label pairs in registration order (may be empty).
    pub labels: Vec<(String, String)>,
    /// Help text supplied at registration.
    pub help: String,
    /// Live handle (values read at exposition time).
    pub handle: MetricHandle,
}

/// The system-wide metrics registry. Cheap to share (`Arc`), cheap to
/// consult (`is_enabled` is one relaxed load).
pub struct MetricsRegistry {
    enabled: AtomicBool,
    metrics: RwLock<BTreeMap<String, Entry>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("metrics", &self.metrics.read().len())
            .finish()
    }
}

fn render_key(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{family}{{{}}}", rendered.join(","))
}

fn validate_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name '{name}' (use [a-zA-Z0-9_:])"
    );
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            metrics: RwLock::new(BTreeMap::new()),
        }
    }

    /// A fresh registry behind an `Arc` (the shape every consumer wants).
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Whether span timing is on. Counters and histograms attached to
    /// handles keep working regardless — the switch gates *clock reads*,
    /// the expensive part of instrumentation.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span timing on or off at runtime (the paper's
    /// "turn off the tracker" mode).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// A timer that is live only while the registry is enabled.
    #[inline]
    pub fn span(&self) -> SpanTimer {
        if self.is_enabled() {
            SpanTimer::started()
        } else {
            SpanTimer::disabled()
        }
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            MetricHandle::Counter(Arc::new(Counter::new()))
        }) {
            MetricHandle::Counter(c) => c,
            other => panic!(
                "metric '{name}' already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || {
            MetricHandle::Gauge(Arc::new(Gauge::new()))
        }) {
            MetricHandle::Gauge(g) => g,
            other => panic!(
                "metric '{name}' already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Register (or fetch) an unlabeled floating-point gauge (renders as a
    /// Prometheus gauge).
    pub fn float_gauge(&self, name: &str, help: &str) -> Arc<FloatGauge> {
        match self.register(name, &[], help, || {
            MetricHandle::FloatGauge(Arc::new(FloatGauge::new()))
        }) {
            MetricHandle::FloatGauge(g) => g,
            other => panic!(
                "metric '{name}' already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, || {
            MetricHandle::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!(
                "metric '{name}' already registered as {}",
                other.type_name()
            ),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        validate_name(name);
        let key = render_key(name, labels);
        // Fast path: already registered.
        if let Some(entry) = self.metrics.read().get(&key) {
            return entry.handle.clone();
        }
        let mut metrics = self.metrics.write();
        metrics
            .entry(key)
            .or_insert_with(|| Entry {
                family: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                help: help.to_string(),
                handle: make(),
            })
            .handle
            .clone()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered series in stable (sorted-key) order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.metrics
            .read()
            .values()
            .map(|e| MetricSnapshot {
                family: e.family.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                handle: e.handle.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("mb2_test_total", "a test counter");
        let b = r.counter("mb2_test_total", "a test counter");
        a.inc();
        assert_eq!(b.get(), 1, "same handle must be shared");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_create_distinct_series() {
        let r = MetricsRegistry::new();
        let sel = r.counter_with("mb2_stmt_total", &[("kind", "select")], "statements");
        let ins = r.counter_with("mb2_stmt_total", &[("kind", "insert")], "statements");
        sel.inc();
        assert_eq!(ins.get(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("mb2_conflict", "as counter");
        r.gauge("mb2_conflict", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("has space", "nope");
    }

    #[test]
    fn disable_kills_span_timing() {
        let r = MetricsRegistry::new();
        assert!(r.span().is_live());
        r.set_enabled(false);
        assert!(!r.span().is_live());
        r.set_enabled(true);
        assert!(r.span().is_live());
    }
}
