//! The length-prefixed wire protocol spoken between `mb2-server` and the
//! bundled client.
//!
//! Every frame on the wire is `[u32 LE payload length][payload]`, where the
//! payload is `[u8 frame type][frame body]`. The protocol is deliberately
//! small: a handshake pair, a query frame, streamed row batches, a
//! terminator carrying the row count, a typed error frame mapping
//! [`DbError`], and a typed **busy** frame for admission-control rejections
//! (the server sheds load instead of queueing it).
//!
//! Values are encoded with a one-byte tag per column; strings are
//! `u32 length + UTF-8 bytes`. All integers are little-endian.

use std::io::{ErrorKind, Read, Write};

use mb2_common::{DbError, DbResult, Value};

/// Handshake magic: the first bytes a client sends.
pub const MAGIC: [u8; 4] = *b"MB2\0";

/// Wire protocol version, negotiated at handshake. Version 2 adds a
/// tenant/tier field to `ClientHello` and a `retry_after_ms` hint to
/// `Busy`; both are version-gated so v1 peers see byte-identical frames.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest client protocol version the server still speaks.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a single frame's payload; larger length prefixes are
/// treated as a protocol violation (protects the peer from unbounded
/// allocation on a corrupt or hostile stream).
pub const MAX_FRAME_LEN: usize = 64 << 20;

const T_CLIENT_HELLO: u8 = 1;
const T_SERVER_HELLO: u8 = 2;
const T_QUERY: u8 = 3;
const T_ROW_BATCH: u8 = 4;
const T_DONE: u8 = 5;
const T_ERROR: u8 = 6;
const T_BUSY: u8 = 7;

/// Why an admission-control rejection happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The bounded in-flight query semaphore is exhausted.
    Queries,
    /// The connection limit (`max_connections`) is reached.
    Connections,
    /// The server is draining for shutdown.
    Draining,
    /// The scheduler's bounded wait queue is full.
    QueueFull,
    /// The query waited in the scheduler queue past its tier deadline.
    DeadlineExceeded,
    /// The tenant is over its concurrent-query quota.
    Quota,
    /// A reason code this client version does not know. Carried verbatim
    /// so newer servers never strand older clients (forward compat).
    Other(u8),
}

impl BusyReason {
    fn code(self) -> u8 {
        match self {
            BusyReason::Queries => 0,
            BusyReason::Connections => 1,
            BusyReason::Draining => 2,
            BusyReason::QueueFull => 3,
            BusyReason::DeadlineExceeded => 4,
            BusyReason::Quota => 5,
            BusyReason::Other(c) => c,
        }
    }

    /// Total: unknown codes map to [`BusyReason::Other`] instead of a hard
    /// `DbError`, so a newer server adding reasons never disconnects an
    /// older client (the message string still tells the operator why).
    fn from_code(c: u8) -> BusyReason {
        match c {
            0 => BusyReason::Queries,
            1 => BusyReason::Connections,
            2 => BusyReason::Draining,
            3 => BusyReason::QueueFull,
            4 => BusyReason::DeadlineExceeded,
            5 => BusyReason::Quota,
            other => BusyReason::Other(other),
        }
    }

    /// Stable lowercase label for metrics and logs.
    pub fn label(self) -> &'static str {
        match self {
            BusyReason::Queries => "queries",
            BusyReason::Connections => "connections",
            BusyReason::Draining => "draining",
            BusyReason::QueueFull => "queue_full",
            BusyReason::DeadlineExceeded => "deadline",
            BusyReason::Quota => "quota",
            BusyReason::Other(_) => "other",
        }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: magic + requested protocol version. From v2 the
    /// hello also names the tenant and its scheduling tier (0 = highest
    /// priority); v1 clients omit both and are treated as the default
    /// tenant on the lowest-priority tier.
    ClientHello {
        version: u16,
        tenant: String,
        tier: u8,
    },
    /// Server → client: accepted protocol version.
    ServerHello { version: u16 },
    /// Client → server: one SQL statement.
    Query { sql: String },
    /// Server → client: a batch of result rows (zero or more per query).
    RowBatch { rows: Vec<Vec<Value>> },
    /// Server → client: query finished; rows streamed or rows affected.
    Done { rows: u64 },
    /// Server → client: the query failed.
    Error { error: DbError },
    /// Server → client: admission control rejected the request. The query
    /// (or connection) was never started; retry with backoff.
    /// `retry_after_ms` (v2+; 0 = no hint) is the server's estimate of when
    /// capacity frees up — v1 peers receive the frame without it.
    Busy {
        reason: BusyReason,
        message: String,
        retry_after_ms: u64,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u64(buf, f.to_bits());
        }
        Value::Varchar(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.push(5);
            put_u64(buf, *t as u64);
        }
    }
}

/// `DbError` → stable wire code. Codes are part of the protocol; add new
/// variants at the end.
fn error_code(e: &DbError) -> u8 {
    match e {
        DbError::Parse(_) => 1,
        DbError::Catalog(_) => 2,
        DbError::Plan(_) => 3,
        DbError::Execution(_) => 4,
        DbError::WriteConflict { .. } => 5,
        DbError::TxnClosed => 6,
        DbError::Wal(_) => 7,
        DbError::WalUnavailable(_) => 8,
        DbError::Storage(_) => 9,
        DbError::Model(_) => 10,
        DbError::ServerBusy(_) => 11,
        DbError::Net(_) => 12,
    }
}

fn error_detail(e: &DbError) -> String {
    match e {
        DbError::Parse(m)
        | DbError::Catalog(m)
        | DbError::Plan(m)
        | DbError::Execution(m)
        | DbError::Wal(m)
        | DbError::WalUnavailable(m)
        | DbError::Storage(m)
        | DbError::Model(m)
        | DbError::ServerBusy(m)
        | DbError::Net(m) => m.clone(),
        DbError::WriteConflict { table } => table.clone(),
        DbError::TxnClosed => String::new(),
    }
}

fn error_from_wire(code: u8, detail: String) -> DbError {
    match code {
        1 => DbError::Parse(detail),
        2 => DbError::Catalog(detail),
        3 => DbError::Plan(detail),
        4 => DbError::Execution(detail),
        5 => DbError::WriteConflict { table: detail },
        6 => DbError::TxnClosed,
        7 => DbError::Wal(detail),
        8 => DbError::WalUnavailable(detail),
        9 => DbError::Storage(detail),
        10 => DbError::Model(detail),
        11 => DbError::ServerBusy(detail),
        12 => DbError::Net(detail),
        other => DbError::Net(format!("unknown error code {other}: {detail}")),
    }
}

/// Encode a frame payload (type byte + body), without the length prefix,
/// in the dialect the peer negotiated. `peer_version` gates the v2 field
/// extensions so a v1 peer receives byte-identical v1 frames (its decoder
/// rejects trailing bytes).
fn encode_payload(frame: &Frame, peer_version: u16) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match frame {
        Frame::ClientHello {
            version,
            tenant,
            tier,
        } => {
            buf.push(T_CLIENT_HELLO);
            buf.extend_from_slice(&MAGIC);
            put_u16(&mut buf, *version);
            if *version >= 2 {
                put_str(&mut buf, tenant);
                buf.push(*tier);
            }
        }
        Frame::ServerHello { version } => {
            buf.push(T_SERVER_HELLO);
            put_u16(&mut buf, *version);
        }
        Frame::Query { sql } => {
            buf.push(T_QUERY);
            put_str(&mut buf, sql);
        }
        Frame::RowBatch { rows } => {
            buf.push(T_ROW_BATCH);
            put_u32(&mut buf, rows.len() as u32);
            for row in rows {
                put_u16(&mut buf, row.len() as u16);
                for v in row {
                    put_value(&mut buf, v);
                }
            }
        }
        Frame::Done { rows } => {
            buf.push(T_DONE);
            put_u64(&mut buf, *rows);
        }
        Frame::Error { error } => {
            buf.push(T_ERROR);
            buf.push(error_code(error));
            put_str(&mut buf, &error_detail(error));
        }
        Frame::Busy {
            reason,
            message,
            retry_after_ms,
        } => {
            buf.push(T_BUSY);
            buf.push(reason.code());
            put_str(&mut buf, message);
            if peer_version >= 2 {
                put_u64(&mut buf, *retry_after_ms);
            }
        }
    }
    buf
}

/// Write one frame (length prefix + payload) to the stream in the current
/// protocol dialect. Use [`write_frame_v`] when the peer negotiated an
/// older version.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> DbResult<()> {
    write_frame_v(w, frame, PROTOCOL_VERSION)
}

/// Write one frame in the dialect of `peer_version` (v2 field extensions
/// are dropped for v1 peers).
pub fn write_frame_v(w: &mut impl Write, frame: &Frame, peer_version: u16) -> DbResult<()> {
    let payload = encode_payload(frame, peer_version);
    let mut msg = Vec::with_capacity(4 + payload.len());
    msg.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    msg.extend_from_slice(&payload);
    w.write_all(&msg)
        .and_then(|_| w.flush())
        .map_err(|e| DbError::Net(format!("write: {e}")))
}

/// A byte cursor over a received payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DbError::Net("truncated frame".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DbResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> DbResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> DbResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> DbResult<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| DbError::Net("invalid UTF-8 in frame".into()))
    }

    fn value(&mut self) -> DbResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Varchar(self.string()?),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Timestamp(self.u64()? as i64),
            tag => return Err(DbError::Net(format!("unknown value tag {tag}"))),
        })
    }
}

/// Decode one received payload (type byte + body) into a frame.
pub fn decode_payload(payload: &[u8]) -> DbResult<Frame> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let frame = match c.u8()? {
        T_CLIENT_HELLO => {
            let magic = c.take(4)?;
            if magic != MAGIC {
                return Err(DbError::Net("bad handshake magic".into()));
            }
            let version = c.u16()?;
            // v1 hellos end here; v2 adds tenant + tier.
            let (tenant, tier) = if c.pos < payload.len() {
                (c.string()?, c.u8()?)
            } else {
                (String::new(), u8::MAX)
            };
            Frame::ClientHello {
                version,
                tenant,
                tier,
            }
        }
        T_SERVER_HELLO => Frame::ServerHello { version: c.u16()? },
        T_QUERY => Frame::Query { sql: c.string()? },
        T_ROW_BATCH => {
            let n = c.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let cols = c.u16()? as usize;
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(c.value()?);
                }
                rows.push(row);
            }
            Frame::RowBatch { rows }
        }
        T_DONE => Frame::Done { rows: c.u64()? },
        T_ERROR => {
            let code = c.u8()?;
            let detail = c.string()?;
            Frame::Error {
                error: error_from_wire(code, detail),
            }
        }
        T_BUSY => {
            let reason = BusyReason::from_code(c.u8()?);
            let message = c.string()?;
            // v1 busy frames end here; v2 adds the retry hint.
            let retry_after_ms = if c.pos < payload.len() { c.u64()? } else { 0 };
            Frame::Busy {
                reason,
                message,
                retry_after_ms,
            }
        }
        t => return Err(DbError::Net(format!("unknown frame type {t}"))),
    };
    if c.pos != payload.len() {
        return Err(DbError::Net("trailing bytes in frame".into()));
    }
    Ok(frame)
}

/// Result of one non-blocking-ish read attempt on a [`FrameReader`].
#[derive(Debug)]
pub enum ReadPoll {
    /// A complete frame was assembled.
    Frame(Frame),
    /// The read timed out (or would block) before the frame completed;
    /// partial progress is retained — call again.
    Pending,
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
}

/// Incremental frame reader that survives read timeouts: partial header or
/// body bytes are retained across calls, so a socket with a short read
/// timeout can be polled without losing protocol framing. This is what lets
/// a server worker wait for the next request while staying responsive to
/// the shutdown flag.
#[derive(Default)]
pub struct FrameReader {
    hdr: [u8; 4],
    hdr_got: usize,
    body: Vec<u8>,
    body_len: Option<usize>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether a frame is partially received (an EOF or shutdown now would
    /// tear it).
    pub fn mid_frame(&self) -> bool {
        self.hdr_got > 0 || self.body_len.is_some()
    }

    /// Attempt to make progress; see [`ReadPoll`].
    pub fn poll_read(&mut self, r: &mut impl Read) -> DbResult<ReadPoll> {
        loop {
            if self.body_len.is_none() {
                // Read the 4-byte length prefix.
                match r.read(&mut self.hdr[self.hdr_got..]) {
                    Ok(0) => {
                        return if self.hdr_got == 0 {
                            Ok(ReadPoll::Eof)
                        } else {
                            Err(DbError::Net("eof inside frame header".into()))
                        };
                    }
                    Ok(n) => {
                        self.hdr_got += n;
                        if self.hdr_got < 4 {
                            continue;
                        }
                        let len = u32::from_le_bytes(self.hdr) as usize;
                        if len == 0 || len > MAX_FRAME_LEN {
                            return Err(DbError::Net(format!("bad frame length {len}")));
                        }
                        self.body_len = Some(len);
                        self.body.clear();
                        self.body.reserve(len.min(1 << 20));
                    }
                    Err(e) if would_block(&e) => return Ok(ReadPoll::Pending),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(DbError::Net(format!("read: {e}"))),
                }
            }
            let len = self.body_len.unwrap_or(0);
            while self.body.len() < len {
                let mut chunk = [0u8; 8192];
                let want = (len - self.body.len()).min(chunk.len());
                match r.read(&mut chunk[..want]) {
                    Ok(0) => return Err(DbError::Net("eof inside frame body".into())),
                    Ok(n) => self.body.extend_from_slice(&chunk[..n]),
                    Err(e) if would_block(&e) => return Ok(ReadPoll::Pending),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(DbError::Net(format!("read: {e}"))),
                }
            }
            let frame = decode_payload(&self.body)?;
            self.hdr_got = 0;
            self.body_len = None;
            self.body.clear();
            return Ok(ReadPoll::Frame(frame));
        }
    }

    /// Block until a complete frame arrives. Clean EOF maps to an error
    /// naming the closed connection (used by the client, which has no
    /// polling loop of its own).
    pub fn read_frame_blocking(&mut self, r: &mut impl Read) -> DbResult<Frame> {
        loop {
            match self.poll_read(r)? {
                ReadPoll::Frame(f) => return Ok(f),
                ReadPoll::Pending => continue,
                ReadPoll::Eof => return Err(DbError::Net("connection closed by peer".into())),
            }
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut reader = FrameReader::new();
        let got = reader.read_frame_blocking(&mut &buf[..]).unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::ClientHello {
            version: PROTOCOL_VERSION,
            tenant: "acme".into(),
            tier: 1,
        });
        roundtrip(Frame::ServerHello {
            version: PROTOCOL_VERSION,
        });
        roundtrip(Frame::Query {
            sql: "SELECT * FROM t WHERE a = 'x''y'".into(),
        });
        roundtrip(Frame::RowBatch {
            rows: vec![
                vec![
                    Value::Null,
                    Value::Int(-7),
                    Value::Float(3.25),
                    Value::Varchar("héllo".into()),
                    Value::Bool(true),
                    Value::Timestamp(1_700_000_000),
                ],
                vec![Value::Int(i64::MIN), Value::Int(i64::MAX)],
            ],
        });
        roundtrip(Frame::Done { rows: u64::MAX });
        roundtrip(Frame::Busy {
            reason: BusyReason::Queries,
            message: "8 queries in flight".into(),
            retry_after_ms: 25,
        });
        roundtrip(Frame::Busy {
            reason: BusyReason::QueueFull,
            message: "queue full".into(),
            retry_after_ms: 0,
        });
        roundtrip(Frame::Busy {
            reason: BusyReason::DeadlineExceeded,
            message: "deadline".into(),
            retry_after_ms: 9,
        });
    }

    #[test]
    fn v1_dialect_drops_v2_fields() {
        // A v1 hello carries no tenant/tier bytes on the wire...
        let hello = Frame::ClientHello {
            version: 1,
            tenant: String::new(),
            tier: u8::MAX,
        };
        let payload = encode_payload(&hello, 1);
        assert_eq!(payload.len(), 1 + 4 + 2, "v1 hello gained bytes");
        assert_eq!(decode_payload(&payload).unwrap(), hello);

        // ...and a Busy written for a v1 peer carries no retry hint, but
        // still decodes (hint defaults to 0).
        let busy = Frame::Busy {
            reason: BusyReason::Queries,
            message: "2 queries in flight (limit 2)".into(),
            retry_after_ms: 17,
        };
        let mut v1_bytes = Vec::new();
        write_frame_v(&mut v1_bytes, &busy, 1).unwrap();
        let mut v2_bytes = Vec::new();
        write_frame_v(&mut v2_bytes, &busy, 2).unwrap();
        assert_eq!(v2_bytes.len(), v1_bytes.len() + 8);
        let mut reader = FrameReader::new();
        match reader.read_frame_blocking(&mut &v1_bytes[..]).unwrap() {
            Frame::Busy {
                reason,
                retry_after_ms,
                ..
            } => {
                assert_eq!(reason, BusyReason::Queries);
                assert_eq!(retry_after_ms, 0);
            }
            other => panic!("expected busy, got {other:?}"),
        }
    }

    #[test]
    fn unknown_busy_reason_maps_to_other_not_error() {
        // A future server sends reason code 42: the client must decode it
        // as Other(42) and keep the connection, not hard-error.
        let mut payload = vec![T_BUSY, 42];
        let msg = "mystery future reason";
        payload.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        payload.extend_from_slice(msg.as_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        let frame = decode_payload(&payload).unwrap();
        assert_eq!(
            frame,
            Frame::Busy {
                reason: BusyReason::Other(42),
                message: msg.into(),
                retry_after_ms: 7,
            }
        );
        assert_eq!(BusyReason::Other(42).label(), "other");
    }

    #[test]
    fn errors_roundtrip_typed() {
        for e in [
            DbError::Parse("bad token".into()),
            DbError::Catalog("no such table".into()),
            DbError::Plan("arity".into()),
            DbError::Execution("division by zero".into()),
            DbError::WriteConflict {
                table: "accounts".into(),
            },
            DbError::TxnClosed,
            DbError::Wal("io".into()),
            DbError::WalUnavailable("poisoned".into()),
            DbError::Storage("bad slot".into()),
            DbError::Model("singular".into()),
            DbError::ServerBusy("overload".into()),
            DbError::Net("broken pipe".into()),
        ] {
            roundtrip(Frame::Error { error: e });
        }
    }

    #[test]
    fn split_reads_reassemble() {
        // Feed a frame one byte at a time through a reader that returns
        // WouldBlock between bytes — the FrameReader must keep partial
        // progress and finish the frame.
        let mut buf = Vec::new();
        let frame = Frame::Query {
            sql: "SELECT 1".into(),
        };
        write_frame(&mut buf, &frame).unwrap();

        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            parity: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.parity = !self.parity;
                if self.parity {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "wait"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                out[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut src = Trickle {
            data: buf,
            pos: 0,
            parity: false,
        };
        let mut reader = FrameReader::new();
        let mut pendings = 0;
        loop {
            match reader.poll_read(&mut src).unwrap() {
                ReadPoll::Frame(f) => {
                    assert_eq!(f, frame);
                    break;
                }
                ReadPoll::Pending => pendings += 1,
                ReadPoll::Eof => panic!("unexpected eof"),
            }
        }
        assert!(pendings > 0, "trickle source must have blocked");
        assert!(!reader.mid_frame());
    }

    #[test]
    fn oversized_and_garbage_frames_rejected() {
        // Length prefix above the cap.
        let mut msg = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        msg.push(T_QUERY);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame_blocking(&mut &msg[..]),
            Err(DbError::Net(_))
        ));
        // Unknown frame type.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xEE, 0x00]);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame_blocking(&mut &buf[..]),
            Err(DbError::Net(_))
        ));
        // Truncated body → eof inside frame.
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame_blocking(&mut &buf[..]),
            Err(DbError::Net(_))
        ));
    }
}
