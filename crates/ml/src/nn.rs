//! Neural networks: dense layers with ReLU activations, Adam optimization,
//! and an `MlpRegressor` implementing [`Regressor`].
//!
//! The layer machinery (`Dense`, `Mlp`) exposes explicit forward caches and
//! gradient accumulation so the QPPNet baseline can compose per-operator
//! networks into plan trees and backpropagate through the tree structure.

use mb2_common::{DbError, DbResult, Prng};

use crate::data::StandardScaler;
use crate::Regressor;

/// One fully connected layer with accumulated gradients and Adam state.
#[derive(Debug, Clone)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    /// Row-major `out_dim × in_dim` weights.
    pub(crate) w: Vec<f64>,
    pub(crate) b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    /// He-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Prng) -> Dense {
        let scale = (2.0 / in_dim.max(1) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gaussian() * scale)
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        (0..self.out_dim)
            .map(|o| {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                self.b[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
            })
            .collect()
    }

    /// Accumulate gradients for one sample; returns dL/dx.
    pub fn backward(&mut self, x: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, &g) in grad_out.iter().enumerate().take(self.out_dim) {
            if g == 0.0 {
                continue;
            }
            self.gb[o] += g;
            let row = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row + i] += g * x[i];
                grad_in[i] += g * self.w[row + i];
            }
        }
        grad_in
    }

    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Adam update with bias correction; `t` is the 1-based step count.
    pub fn adam_step(&mut self, lr: f64, t: usize, batch: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let corr1 = 1.0 - B1.powi(t as i32);
        let corr2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            let g = self.gw[i] / batch;
            self.mw[i] = B1 * self.mw[i] + (1.0 - B1) * g;
            self.vw[i] = B2 * self.vw[i] + (1.0 - B2) * g * g;
            self.w[i] -= lr * (self.mw[i] / corr1) / ((self.vw[i] / corr2).sqrt() + EPS);
        }
        for i in 0..self.b.len() {
            let g = self.gb[i] / batch;
            self.mb[i] = B1 * self.mb[i] + (1.0 - B1) * g;
            self.vb[i] = B2 * self.vb[i] + (1.0 - B2) * g * g;
            self.b[i] -= lr * (self.mb[i] / corr1) / ((self.vb[i] / corr2).sqrt() + EPS);
        }
    }

    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Rebuild a layer from saved weights (fresh optimizer state).
    pub(crate) fn from_params(
        in_dim: usize,
        out_dim: usize,
        w: Vec<f64>,
        b: Vec<f64>,
    ) -> mb2_common::DbResult<Dense> {
        if w.len() != in_dim * out_dim || b.len() != out_dim {
            return Err(mb2_common::DbError::Model(
                "dense layer shape mismatch".into(),
            ));
        }
        Ok(Dense {
            in_dim,
            out_dim,
            gw: vec![0.0; w.len()],
            gb: vec![0.0; b.len()],
            mw: vec![0.0; w.len()],
            vw: vec![0.0; w.len()],
            mb: vec![0.0; b.len()],
            vb: vec![0.0; b.len()],
            w,
            b,
        })
    }
}

/// Forward-pass cache for backprop: layer inputs and pre-activations.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    inputs: Vec<Vec<f64>>,
    preacts: Vec<Vec<f64>>,
}

/// A multi-layer perceptron with ReLU on all hidden layers and a linear
/// output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[8, 25, 25, 9]`.
    pub fn new(sizes: &[usize], rng: &mut Prng) -> Mlp {
        assert!(sizes.len() >= 2);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if li != last {
                h.iter_mut().for_each(|v| *v = v.max(0.0));
            }
        }
        h
    }

    /// Forward with cached intermediates for a later `backward` call.
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut cache = MlpCache::default();
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            cache.inputs.push(h.clone());
            let pre = layer.forward(&h);
            cache.preacts.push(pre.clone());
            h = pre;
            if li != last {
                h.iter_mut().for_each(|v| *v = v.max(0.0));
            }
        }
        (h, cache)
    }

    /// Accumulate gradients for one sample given dL/d(output); returns
    /// dL/d(input) for upstream composition (QPPNet plan trees).
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &[f64]) -> Vec<f64> {
        let mut grad = grad_out.to_vec();
        let last = self.layers.len() - 1;
        for li in (0..self.layers.len()).rev() {
            if li != last {
                // ReLU derivative on the pre-activations.
                for (g, &pre) in grad.iter_mut().zip(&cache.preacts[li]) {
                    if pre <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[li].backward(&cache.inputs[li], &grad);
        }
        grad
    }

    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Dense::zero_grad);
    }

    pub fn adam_step(&mut self, lr: f64, t: usize, batch: f64) {
        self.layers
            .iter_mut()
            .for_each(|l| l.adam_step(lr, t, batch));
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }
}

/// MLP regressor with the paper's default topology (two hidden layers of 25
/// neurons) and internal input/target standardization.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub seed: u64,
    pub(crate) net: Option<Mlp>,
    pub(crate) x_scaler: StandardScaler,
    pub(crate) y_means: Vec<f64>,
    pub(crate) y_scales: Vec<f64>,
}

impl MlpRegressor {
    pub fn new(hidden: Vec<usize>, epochs: usize) -> MlpRegressor {
        MlpRegressor {
            hidden,
            epochs,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 13,
            net: None,
            x_scaler: StandardScaler::default(),
            y_means: Vec::new(),
            y_scales: Vec::new(),
        }
    }
}

impl Default for MlpRegressor {
    fn default() -> Self {
        MlpRegressor::new(vec![25, 25], 200)
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model("mlp: empty training set".into()));
        }
        let n = x.len();
        let n_outputs = y[0].len();
        self.x_scaler = StandardScaler::fit(x);
        let xs = self.x_scaler.transform(x);
        self.y_means = vec![0.0; n_outputs];
        self.y_scales = vec![1.0; n_outputs];
        for j in 0..n_outputs {
            let col: Vec<f64> = y.iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            self.y_means[j] = mean;
            self.y_scales[j] = var.sqrt().max(1e-9);
        }
        let ys: Vec<Vec<f64>> = y
            .iter()
            .map(|r| {
                (0..n_outputs)
                    .map(|j| (r[j] - self.y_means[j]) / self.y_scales[j])
                    .collect()
            })
            .collect();

        let mut rng = Prng::new(self.seed);
        let mut sizes = vec![xs[0].len()];
        sizes.extend_from_slice(&self.hidden);
        sizes.push(n_outputs);
        let mut net = Mlp::new(&sizes, &mut rng);

        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0usize;
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.batch_size) {
                net.zero_grad();
                for &i in chunk {
                    let (out, cache) = net.forward_cached(&xs[i]);
                    // Squared-error gradient: 2 * (pred - target) / n_outputs.
                    let grad: Vec<f64> = out
                        .iter()
                        .zip(&ys[i])
                        .map(|(p, t)| 2.0 * (p - t) / n_outputs as f64)
                        .collect();
                    net.backward(&cache, &grad);
                }
                step += 1;
                net.adam_step(self.learning_rate, step, chunk.len() as f64);
            }
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let net = self.net.as_ref().expect("predict before fit");
        let out = net.forward(&self.x_scaler.transform_row(x));
        out.iter()
            .enumerate()
            .map(|(j, v)| v * self.y_scales[j] + self.y_means[j])
            .collect()
    }

    fn name(&self) -> &'static str {
        "neural_network"
    }

    fn size_bytes(&self) -> usize {
        self.net.as_ref().map_or(0, |n| n.param_count() * 8)
            + self.x_scaler.means.len() * 16
            + self.y_means.len() * 16
    }

    fn save_text(&self) -> DbResult<String> {
        if self.net.is_none() {
            return Err(DbError::Model("cannot save an untrained mlp".into()));
        }
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mean_relative_error;

    #[test]
    fn dense_backward_matches_numeric_gradient() {
        let mut rng = Prng::new(2);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = vec![0.5, -1.0, 2.0];
        let grad_out = vec![1.0, -0.5];
        layer.zero_grad();
        let _ = layer.backward(&x, &grad_out);
        // Numeric check for w[0][1]: loss = sum(grad_out * out).
        let base: f64 = layer
            .forward(&x)
            .iter()
            .zip(&grad_out)
            .map(|(o, g)| o * g)
            .sum();
        let eps = 1e-6;
        let idx = 1; // w[out=0][in=1]
        layer.w[idx] += eps;
        let bumped: f64 = layer
            .forward(&x)
            .iter()
            .zip(&grad_out)
            .map(|(o, g)| o * g)
            .sum();
        layer.w[idx] -= eps;
        let numeric = (bumped - base) / eps;
        assert!(
            (layer.gw[idx] - numeric).abs() < 1e-4,
            "analytic {} numeric {}",
            layer.gw[idx],
            numeric
        );
    }

    #[test]
    fn mlp_backward_returns_input_gradient() {
        let mut rng = Prng::new(3);
        let mut net = Mlp::new(&[2, 8, 1], &mut rng);
        let x = vec![0.3, -0.7];
        let (out, cache) = net.forward_cached(&x);
        net.zero_grad();
        let gin = net.backward(&cache, &[1.0]);
        // Numeric input gradient for x[0].
        let eps = 1e-6;
        let bumped = net.forward(&[x[0] + eps, x[1]])[0];
        let numeric = (bumped - out[0]) / eps;
        assert!(
            (gin[0] - numeric).abs() < 1e-4,
            "analytic {} numeric {numeric}",
            gin[0]
        );
    }

    #[test]
    fn learns_nonlinear_target() {
        let mut rng = Prng::new(4);
        let x: Vec<Vec<f64>> = (0..600)
            .map(|_| vec![rng.next_f64() * 2.0 - 1.0, rng.next_f64() * 2.0 - 1.0])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![r[0] * r[0] + r[1] * 0.5 + 1.0])
            .collect();
        let mut m = MlpRegressor::new(vec![16, 16], 150);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x[..100]);
        let err = mean_relative_error(&y[..100], &preds);
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn multi_output_heads() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![2.0 * r[0], -r[0] + 1.0]).collect();
        let mut m = MlpRegressor::new(vec![16], 200);
        m.fit(&x, &y).unwrap();
        let p = m.predict_one(&[1.0]);
        assert!((p[0] - 2.0).abs() < 0.2, "{p:?}");
        assert!((p[1] - 0.0).abs() < 0.2, "{p:?}");
    }

    #[test]
    fn empty_fit_is_error() {
        let mut m = MlpRegressor::default();
        assert!(m.fit(&[], &[]).is_err());
    }
}
