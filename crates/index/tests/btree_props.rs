//! Property tests: the B+Tree must behave like a sorted multimap.

use std::collections::BTreeMap;

use mb2_common::Value;
use mb2_index::BPlusTree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u32),
    Remove(i64),
    Get(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-50i64..50, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (-50i64..50).prop_map(Op::Remove),
        (-50i64..50).prop_map(Op::Get),
    ]
}

fn key(k: i64) -> Vec<Value> {
    vec![Value::Int(k)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence keeps the tree consistent with a model multimap.
    #[test]
    fn behaves_like_model_multimap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(key(k), v);
                    model.entry(k).or_default().push(v);
                }
                Op::Remove(k) => {
                    let removed = tree.remove(&key(k), |_| true);
                    let expected = model.remove(&k).map_or(0, |v| v.len());
                    prop_assert_eq!(removed, expected);
                }
                Op::Get(k) => {
                    let mut got = tree.get(&key(k));
                    got.sort_unstable();
                    let mut expected = model.get(&k).cloned().unwrap_or_default();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected);
                }
            }
            let model_len: usize = model.values().map(Vec::len).sum();
            prop_assert_eq!(tree.len(), model_len);
        }
        // Full range scan returns the model's flattened, key-ordered content.
        let mut scanned: Vec<(i64, u32)> = Vec::new();
        tree.range(&key(i64::MIN), &key(i64::MAX), |k, &v| {
            scanned.push((k[0].as_i64().unwrap(), v));
            true
        });
        let keys_in_order: Vec<i64> = scanned.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys_in_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&keys_in_order, &sorted);
        let expected_len: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(scanned.len(), expected_len);
    }

    /// Range queries agree with model filtering.
    #[test]
    fn range_matches_model(
        entries in proptest::collection::vec((-100i64..100, any::<u16>()), 1..200),
        lo in -100i64..100,
        delta in 0i64..80,
    ) {
        let hi = lo + delta;
        let mut tree = BPlusTree::new();
        for &(k, v) in &entries {
            tree.insert(key(k), v);
        }
        let mut got = 0usize;
        tree.range(&key(lo), &key(hi), |_, _| {
            got += 1;
            true
        });
        let expected = entries.iter().filter(|(k, _)| (lo..=hi).contains(k)).count();
        prop_assert_eq!(got, expected);
    }

    /// Bulk load and incremental insertion are observationally equivalent.
    #[test]
    fn bulk_load_equals_incremental(mut entries in proptest::collection::vec((-50i64..50, any::<u16>()), 1..200)) {
        let mut incremental = BPlusTree::new();
        for &(k, v) in &entries {
            incremental.insert(key(k), v);
        }
        entries.sort_by_key(|(k, _)| *k);
        let bulk = BPlusTree::bulk_load(entries.iter().map(|&(k, v)| (key(k), v)).collect());
        prop_assert_eq!(incremental.len(), bulk.len());
        for k in -50i64..50 {
            let mut a = incremental.get(&key(k));
            let mut b = bulk.get(&key(k));
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "key {}", k);
        }
    }
}
