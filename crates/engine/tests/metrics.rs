//! End-to-end observability: run real SQL against a [`Database`] and assert
//! the Prometheus text output and JSON snapshot reflect it.

use mb2_engine::{Database, DatabaseConfig};

fn sample_value(text: &str, sample: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(sample) && l.as_bytes().get(sample.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("sample {sample} missing from:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn prometheus_scrape_reflects_executed_statements() {
    let db = Database::open();
    db.execute("CREATE TABLE t (a INT, b VARCHAR(8))").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'v')"))
            .unwrap();
    }
    db.execute("UPDATE t SET a = a + 1 WHERE a < 5").unwrap();
    db.execute("DELETE FROM t WHERE a > 18").unwrap();
    db.execute("SELECT COUNT(*) FROM t").unwrap();
    db.execute("CREATE INDEX idx_a ON t (a)").unwrap();
    // Division by zero fails at execution time, so it is counted (a plan
    // error would never reach the executor and would go uncounted).
    assert!(db.execute("SELECT a / (a - a) FROM t").is_err());

    let text = db.metrics_prometheus();

    // Statement families, by kind.
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"insert\"}"), 20);
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"update\"}"), 1);
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"delete\"}"), 1);
    // Two selects: the COUNT(*) and the failing projection.
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"select\"}"), 2);
    // Two DDLs: CREATE TABLE (bypasses the planner) + CREATE INDEX.
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"ddl\"}"), 2);
    assert_eq!(
        sample_value(&text, "mb2_stmt_errors_total{kind=\"select\"}"),
        1
    );
    // Latency histograms record successes only.
    assert_eq!(
        sample_value(&text, "mb2_stmt_latency_us_count{kind=\"insert\"}"),
        20
    );
    assert_eq!(
        sample_value(&text, "mb2_stmt_latency_us_count{kind=\"select\"}"),
        1
    );

    // Subsystem families are present and plausible.
    assert!(sample_value(&text, "mb2_txn_commits_total") >= 23);
    assert!(sample_value(&text, "mb2_txn_aborts_total") >= 1);
    assert!(sample_value(&text, "mb2_wal_records_serialized_total") > 0);
    assert_eq!(sample_value(&text, "mb2_index_builds_total"), 1);
    assert!(sample_value(&text, "mb2_index_build_entries_total") > 0);

    // Exposition-format invariants: one HELP/TYPE header per family, and
    // every histogram ends with a +Inf bucket.
    assert_eq!(
        text.matches("# TYPE mb2_stmt_latency_us histogram").count(),
        1
    );
    assert!(text.contains("mb2_stmt_latency_us_bucket{kind=\"insert\",le=\"+Inf\"} 20"));
}

#[test]
fn ou_recorder_populates_runtime_histograms() {
    let db = Database::open();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let recorder = db.obs_recorder().clone();
    db.execute_recorded("SELECT * FROM t WHERE a < 5", Some(recorder.as_ref()))
        .unwrap();

    let text = db.metrics_prometheus();
    assert!(sample_value(&text, "mb2_ou_invocations_total{ou=\"seq_scan\"}") >= 1);
    assert!(sample_value(&text, "mb2_ou_elapsed_us_count{ou=\"seq_scan\"}") >= 1);
}

#[test]
fn json_snapshot_parses_shape() {
    let db = Database::open();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    let json = db.metrics_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"name\":\"mb2_stmt_total\""));
    assert!(json.contains("\"labels\":{\"kind\":\"insert\"}"));
    assert!(json.contains("\"type\":\"counter\""));
    assert!(json.contains("\"type\":\"histogram\""));
}

#[test]
fn sessions_and_disabled_tracker_still_count() {
    let db = Database::new(DatabaseConfig {
        metrics_enabled: false,
        ..DatabaseConfig::default()
    })
    .unwrap();
    assert!(!db.metrics().is_enabled());

    let mut s = db.session();
    s.execute("CREATE TABLE t (a INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    drop(s);

    let text = db.metrics_prometheus();
    // Counters survive the tracker being off...
    assert_eq!(sample_value(&text, "mb2_sessions_total"), 1);
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"insert\"}"), 1);
    // ...but no latency samples were taken (spans were dead).
    assert_eq!(
        sample_value(&text, "mb2_stmt_latency_us_count{kind=\"insert\"}"),
        0
    );

    db.set_metrics_enabled(true);
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let text = db.metrics_prometheus();
    assert_eq!(
        sample_value(&text, "mb2_stmt_latency_us_count{kind=\"insert\"}"),
        1
    );
}

#[test]
fn shared_registry_scrapes_two_databases() {
    let registry = mb2_engine::obs::MetricsRegistry::shared();
    let a = Database::new(DatabaseConfig {
        metrics: Some(registry.clone()),
        ..DatabaseConfig::default()
    })
    .unwrap();
    let b = Database::new(DatabaseConfig {
        metrics: Some(registry.clone()),
        ..DatabaseConfig::default()
    })
    .unwrap();
    a.execute("CREATE TABLE t (a INT)").unwrap();
    b.execute("CREATE TABLE u (a INT)").unwrap();

    let text = registry.prometheus_text();
    assert_eq!(sample_value(&text, "mb2_stmt_total{kind=\"ddl\"}"), 2);
}

#[test]
fn plan_cache_hits_misses_and_ddl_invalidation() {
    let db = Database::open();
    db.execute("CREATE TABLE pc (a INT)").unwrap();
    db.execute("INSERT INTO pc VALUES (1)").unwrap();

    let sql = "SELECT a FROM pc WHERE a = 1";
    let p1 = db.prepare_cached(sql).unwrap();
    let p2 = db.prepare_cached(sql).unwrap();
    assert!(std::sync::Arc::ptr_eq(&p1, &p2), "second lookup must hit");
    let text = db.metrics_prometheus();
    assert_eq!(sample_value(&text, "mb2_plan_cache_hits_total"), 1);
    assert_eq!(sample_value(&text, "mb2_plan_cache_misses_total"), 1);

    // DDL (an index build) invalidates: the next lookup re-plans, and the
    // fresh plan must use the new index rather than the cached seq scan.
    db.execute("CREATE INDEX idx_pc_a ON pc (a)").unwrap();
    let p3 = db.prepare_cached(sql).unwrap();
    assert!(!std::sync::Arc::ptr_eq(&p1, &p3), "DDL must invalidate");
    let text = db.metrics_prometheus();
    assert_eq!(sample_value(&text, "mb2_plan_cache_misses_total"), 2);

    // Cached plans execute correctly.
    let result = db.execute_plan(&p3, None).unwrap();
    assert_eq!(result.rows.len(), 1);
}
