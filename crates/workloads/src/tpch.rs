//! TPC-H \[61\]: eight tables and analytical queries.
//!
//! Scales are miniaturized (scale 1.0 ≈ 1% of true TPC-H row counts) so the
//! full modeling pipeline runs in CI time; the paper's generalization axis —
//! train on one scale, test on 0.1× and 10× — is preserved because scales
//! here are relative. Dates are day numbers (INT). Queries are simplified
//! to this engine's SQL subset while preserving the operator mix of their
//! TPC-H counterparts (scan/filter widths, join fan-in, aggregation and
//! sort cardinalities).

use mb2_common::{DbResult, Prng};
use mb2_engine::Database;

use crate::{insert_batch, Workload};

/// Day-number range covering the TPC-H 1992-1998 window.
pub const MAX_DATE: usize = 2556;

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT", "5-LOW"];
const FLAGS: [&str; 3] = ["A", "N", "R"];
const STATUSES: [&str; 2] = ["F", "O"];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"];

/// TPC-H configuration.
#[derive(Debug, Clone)]
pub struct Tpch {
    /// Relative scale: 1.0 ≈ 60k lineitem rows.
    pub scale: f64,
    pub seed: u64,
}

impl Default for Tpch {
    fn default() -> Self {
        Tpch {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl Tpch {
    pub fn with_scale(scale: f64) -> Tpch {
        Tpch {
            scale,
            ..Tpch::default()
        }
    }

    fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(10)
    }

    pub fn lineitem_rows(&self) -> usize {
        self.rows(60_000)
    }

    fn orders_rows(&self) -> usize {
        self.rows(15_000)
    }

    fn customer_rows(&self) -> usize {
        self.rows(1500)
    }

    fn part_rows(&self) -> usize {
        self.rows(2000)
    }

    fn supplier_rows(&self) -> usize {
        self.rows(100)
    }
}

impl Workload for Tpch {
    fn name(&self) -> &'static str {
        "tpch"
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        db.execute("CREATE TABLE region (r_regionkey INT, r_name VARCHAR(12))")?;
        db.execute("CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(16), n_regionkey INT)")?;
        db.execute(
            "CREATE TABLE supplier (s_suppkey INT, s_name VARCHAR(18), s_nationkey INT, \
             s_acctbal FLOAT)",
        )?;
        db.execute(
            "CREATE TABLE h_customer (c_custkey INT, c_name VARCHAR(18), c_nationkey INT, \
             c_acctbal FLOAT, c_mktsegment VARCHAR(12))",
        )?;
        db.execute(
            "CREATE TABLE h_orders (o_orderkey INT, o_custkey INT, o_orderstatus VARCHAR(1), \
             o_totalprice FLOAT, o_orderdate INT, o_orderpriority VARCHAR(12))",
        )?;
        db.execute(
            "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, \
             l_linenumber INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, \
             l_tax FLOAT, l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), \
             l_shipdate INT, l_commitdate INT, l_receiptdate INT, l_shipmode VARCHAR(8))",
        )?;
        db.execute("CREATE TABLE part (p_partkey INT, p_name VARCHAR(24), p_type VARCHAR(16), p_retailprice FLOAT)")?;
        db.execute(
            "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, \
             ps_supplycost FLOAT)",
        )?;

        let mut rng = Prng::new(self.seed);
        insert_batch(db, "region", 5, |i| format!("({i}, '{}')", REGIONS[i]))?;
        insert_batch(db, "nation", 25, |i| {
            format!("({i}, 'nation_{i}', {})", i % 5)
        })?;
        let suppliers = self.supplier_rows();
        insert_batch(db, "supplier", suppliers, |i| {
            format!("({i}, 'supp_{i}', {}, {}.5)", i % 25, i % 1000)
        })?;
        let customers = self.customer_rows();
        insert_batch(db, "h_customer", customers, |i| {
            format!(
                "({i}, 'cust_{i}', {}, {}.25, '{}')",
                i % 25,
                i % 5000,
                SEGMENTS[i % 5]
            )
        })?;
        let orders = self.orders_rows();
        {
            let rng = &mut rng;
            insert_batch(db, "h_orders", orders, |i| {
                format!(
                    "({i}, {}, '{}', {}.75, {}, '{}')",
                    rng.range_usize(0, customers),
                    STATUSES[i % 2],
                    1000 + i % 90_000,
                    rng.range_usize(0, MAX_DATE),
                    PRIORITIES[i % 5]
                )
            })?;
        }
        let lineitems = self.lineitem_rows();
        {
            let rng = &mut rng;
            let parts = self.part_rows();
            insert_batch(db, "lineitem", lineitems, |i| {
                let ship = rng.range_usize(0, MAX_DATE);
                format!(
                    "({}, {}, {}, {}, {}.0, {}.5, 0.0{}, 0.0{}, '{}', '{}', {ship}, {}, {}, '{}')",
                    rng.range_usize(0, orders),
                    rng.range_usize(0, parts),
                    rng.range_usize(0, suppliers),
                    i % 7,
                    1 + rng.range_usize(0, 50),
                    900 + rng.range_usize(0, 10_000),
                    rng.range_usize(1, 10),
                    rng.range_usize(1, 8),
                    FLAGS[i % 3],
                    STATUSES[i % 2],
                    ship + 10,
                    ship + 20,
                    ["MAIL", "SHIP", "RAIL", "TRUCK", "AIR"][i % 5],
                )
            })?;
        }
        let parts = self.part_rows();
        insert_batch(db, "part", parts, |i| {
            format!(
                "({i}, 'part_{i}', 'type_{}', {}.99)",
                i % 20,
                900 + i % 1000
            )
        })?;
        insert_batch(db, "partsupp", parts * 4, |k| {
            format!(
                "({}, {}, {}, {}.5)",
                k / 4,
                k % suppliers,
                100 + k % 900,
                10 + k % 90
            )
        })?;

        db.execute("CREATE INDEX h_orders_pk ON h_orders (o_orderkey)")?;
        db.execute("CREATE INDEX h_customer_pk ON h_customer (c_custkey)")?;
        db.analyze_all();
        Ok(())
    }

    fn template_names(&self) -> Vec<&'static str> {
        vec!["q1", "q3", "q5", "q6", "q10", "q11", "q12", "q14", "q18"]
    }

    fn sample_transaction(&self, template: &str, rng: &mut Prng) -> Vec<String> {
        vec![self.query(template, rng)]
    }
}

impl Tpch {
    /// Generate one parameterized query instance.
    pub fn query(&self, template: &str, rng: &mut Prng) -> String {
        match template {
            // Q1: pricing summary report (scan + wide aggregation + sort).
            "q1" => {
                let delta = 60 + rng.range_usize(0, 60);
                format!(
                    "SELECT l_returnflag, l_linestatus, SUM(l_quantity), \
                     SUM(l_extendedprice), AVG(l_discount), COUNT(*) \
                     FROM lineitem WHERE l_shipdate <= {} \
                     GROUP BY l_returnflag, l_linestatus \
                     ORDER BY l_returnflag, l_linestatus",
                    MAX_DATE - delta
                )
            }
            // Q3: shipping priority (3-way join + agg + top-k sort).
            "q3" => {
                let seg = rng.choose(&SEGMENTS);
                let date = MAX_DATE / 2 + rng.range_usize(0, 200);
                format!(
                    "SELECT l_orderkey, SUM(l_extendedprice) AS revenue, o_orderdate \
                     FROM h_customer, h_orders, lineitem \
                     WHERE c_mktsegment = '{seg}' AND c_custkey = o_custkey \
                     AND l_orderkey = o_orderkey AND o_orderdate < {date} \
                     AND l_shipdate > {date} \
                     GROUP BY l_orderkey, o_orderdate \
                     ORDER BY revenue DESC LIMIT 10"
                )
            }
            // Q5: local supplier volume (6-way join + agg + sort).
            "q5" => {
                let region = rng.range_usize(0, 5);
                let start = rng.range_usize(0, MAX_DATE - 400);
                format!(
                    "SELECT n_name, SUM(l_extendedprice) AS revenue \
                     FROM h_customer, h_orders, lineitem, supplier, nation, region \
                     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                     AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
                     AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                     AND r_regionkey = {region} \
                     AND o_orderdate >= {start} AND o_orderdate < {} \
                     GROUP BY n_name ORDER BY revenue DESC",
                    start + 365
                )
            }
            // Q6: forecasting revenue change (pure scan + scalar agg).
            "q6" => {
                let start = rng.range_usize(0, MAX_DATE - 400);
                let qty = 24 + rng.range_usize(0, 8);
                format!(
                    "SELECT SUM(l_extendedprice * l_discount) \
                     FROM lineitem WHERE l_shipdate >= {start} AND l_shipdate < {} \
                     AND l_discount BETWEEN 0.02 AND 0.09 AND l_quantity < {qty}",
                    start + 365
                )
            }
            // Q10: returned-item reporting (4-way join + agg + top-k).
            "q10" => {
                let start = rng.range_usize(0, MAX_DATE - 120);
                format!(
                    "SELECT c_custkey, c_name, SUM(l_extendedprice) AS revenue, n_name \
                     FROM h_customer, h_orders, lineitem, nation \
                     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                     AND o_orderdate >= {start} AND o_orderdate < {} \
                     AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
                     GROUP BY c_custkey, c_name, n_name \
                     ORDER BY revenue DESC LIMIT 20",
                    start + 90
                )
            }
            // Q11: important stock identification (2-way join + group +
            // HAVING over an aggregate).
            "q11" => {
                let nation = rng.range_usize(0, 25);
                let threshold = 5000 + rng.range_usize(0, 20_000);
                format!(
                    "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS total_value \
                     FROM partsupp, supplier \
                     WHERE ps_suppkey = s_suppkey AND s_nationkey = {nation} \
                     GROUP BY ps_partkey \
                     HAVING SUM(ps_supplycost * ps_availqty) > {threshold}.0 \
                     ORDER BY total_value DESC LIMIT 20"
                )
            }
            // Q12: shipping modes and order priority (join + agg).
            "q12" => {
                let mode = rng.choose(&["MAIL", "SHIP"]);
                let start = rng.range_usize(0, MAX_DATE - 400);
                format!(
                    "SELECT o_orderpriority, COUNT(*) \
                     FROM h_orders, lineitem \
                     WHERE o_orderkey = l_orderkey AND l_shipmode = '{mode}' \
                     AND l_receiptdate >= {start} AND l_receiptdate < {} \
                     GROUP BY o_orderpriority ORDER BY o_orderpriority",
                    start + 365
                )
            }
            // Q14: promotion effect (join + scalar agg).
            "q14" => {
                let start = rng.range_usize(0, MAX_DATE - 60);
                format!(
                    "SELECT SUM(l_extendedprice * l_discount), COUNT(*) \
                     FROM lineitem, part \
                     WHERE l_partkey = p_partkey \
                     AND l_shipdate >= {start} AND l_shipdate < {}",
                    start + 30
                )
            }
            // Q18: large-volume customers (heavy aggregation + top-k on an
            // aggregate expression).
            "q18" => format!(
                "SELECT l_orderkey, SUM(l_quantity) AS total_qty \
                 FROM lineitem GROUP BY l_orderkey \
                 ORDER BY total_qty DESC LIMIT {}",
                50 + rng.range_usize(0, 51)
            ),
            other => panic!("unknown tpch template '{other}'"),
        }
    }

    /// Fixed-parameter query instances (deterministic across runs), used
    /// when an experiment needs identical queries on several databases.
    pub fn fixed_queries(&self) -> Vec<(String, String)> {
        let mut rng = Prng::new(777);
        self.template_names()
            .into_iter()
            .map(|t| (t.to_string(), self.query(t, &mut rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tpch {
        Tpch {
            scale: 0.02,
            seed: 9,
        }
    }

    #[test]
    fn loads_with_expected_row_counts() {
        let t = tiny();
        let db = Database::open();
        t.load(&db).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(r.rows[0][0].as_i64().unwrap(), t.lineitem_rows() as i64);
        let r = db.execute("SELECT COUNT(*) FROM region").unwrap();
        assert_eq!(r.rows[0][0].as_i64().unwrap(), 5);
    }

    #[test]
    fn all_queries_execute() {
        let t = tiny();
        let db = Database::open();
        t.load(&db).unwrap();
        let mut rng = Prng::new(3);
        for template in t.template_names() {
            let sql = t.query(template, &mut rng);
            let r = db.execute(&sql);
            assert!(r.is_ok(), "{template} failed: {:?}\n{sql}", r.err());
        }
    }

    #[test]
    fn q1_groups_by_flag_and_status() {
        let t = tiny();
        let db = Database::open();
        t.load(&db).unwrap();
        let mut rng = Prng::new(4);
        let r = db.execute(&t.query("q1", &mut rng)).unwrap();
        // At most 3 flags × 2 statuses.
        assert!(!r.rows.is_empty() && r.rows.len() <= 6, "{}", r.rows.len());
    }

    #[test]
    fn q5_six_way_join_produces_nation_rows() {
        let t = tiny();
        let db = Database::open();
        t.load(&db).unwrap();
        let mut rng = Prng::new(5);
        let r = db.execute(&t.query("q5", &mut rng)).unwrap();
        assert!(r.rows.len() <= 25);
    }

    #[test]
    fn fixed_queries_are_deterministic() {
        let t = tiny();
        assert_eq!(t.fixed_queries(), t.fixed_queries());
        assert_eq!(t.fixed_queries().len(), 9);
    }

    #[test]
    fn scale_changes_row_counts() {
        assert!(Tpch::with_scale(0.1).lineitem_rows() < Tpch::with_scale(1.0).lineitem_rows());
    }
}
