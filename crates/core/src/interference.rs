//! The interference model (paper §5).
//!
//! OU-models predict behavior in isolation; concurrent OUs compete for CPU,
//! caches, and memory bandwidth. Rather than modeling the exponential space
//! of OU combinations, MB2 exploits that all OU-models share the same output
//! labels: the interference model's inputs are the *target OU's predicted
//! labels* plus *summary statistics* (sum-per-thread mean and variance) of
//! the predicted labels of everything forecast to run in the same interval,
//! all normalized by the target's predicted elapsed time (§5.1). Outputs are
//! element-wise ratios actual/predicted, ≥ 1 by construction (§5.2) —
//! which makes the model agnostic to absolute OU durations.

use mb2_common::{DbError, DbResult, Metrics, METRIC_COUNT};
use mb2_ml::{Algorithm, Dataset, ModelSelector, Regressor};

/// Number of interference-model input features: 9 self labels per elapsed,
/// 9 mean per-thread totals per elapsed, 9 std-devs of per-thread totals
/// per elapsed, the thread count, and the aggregate demand (total predicted
/// busy time per wall-clock µs — the oversubscription signal that dominates
/// on small core counts).
pub const INTERFERENCE_FEATURE_COUNT: usize = 3 * METRIC_COUNT + 2;

/// Helper namespace for building interference feature vectors.
pub struct InterferenceInputs;

impl InterferenceInputs {
    /// Build the input features for one target OU given the per-thread
    /// predicted totals of everything running in the interval and the
    /// interval length in µs.
    pub fn features(self_pred: &Metrics, thread_totals: &[Metrics], window_us: f64) -> Vec<f64> {
        let elapsed = self_pred.elapsed_us().max(1.0);
        let n = thread_totals.len().max(1) as f64;
        let mut mean = Metrics::ZERO;
        for t in thread_totals {
            mean += *t;
        }
        let mean = mean.scale(1.0 / n);
        let mut var = Metrics::ZERO;
        for t in thread_totals {
            for i in 0..METRIC_COUNT {
                let d = t[i] - mean[i];
                var[i] += d * d;
            }
        }
        let var = var.scale(1.0 / n);

        let mut f = Vec::with_capacity(INTERFERENCE_FEATURE_COUNT);
        for i in 0..METRIC_COUNT {
            f.push(self_pred[i] / elapsed);
        }
        for i in 0..METRIC_COUNT {
            f.push(mean[i] / elapsed);
        }
        for i in 0..METRIC_COUNT {
            f.push(var[i].sqrt() / elapsed);
        }
        f.push(thread_totals.len() as f64);
        let demand: f64 = thread_totals.iter().map(|t| t.cpu_us()).sum();
        f.push(demand / window_us.max(1.0));
        f
    }

    /// Ratio labels for training: element-wise actual / predicted (zero
    /// where the prediction is zero).
    pub fn ratio_labels(actual: &Metrics, predicted: &Metrics) -> Vec<f64> {
        actual.div_elementwise(predicted).as_slice().to_vec()
    }
}

/// The trained interference model.
pub struct InterferenceModel {
    model: Box<dyn Regressor>,
    pub chosen: Algorithm,
    pub validation_error: f64,
}

impl InterferenceModel {
    /// Train from a dataset of interference features → ratio labels.
    /// The paper found the neural network performs best for this model
    /// (§8.4); we still run selection across NN and the tree ensembles.
    /// Ratios are heavy-tailed under oversubscription, so extreme labels
    /// are winsorized before fitting (the conditional mean stays the
    /// prediction target — that is what the runtime-increment evaluation
    /// compares).
    pub fn train(data: &Dataset, seed: u64) -> DbResult<InterferenceModel> {
        if data.is_empty() {
            return Err(DbError::Model(
                "interference model: no training data".into(),
            ));
        }
        const RATIO_CAP: f64 = 100.0;
        let capped = Dataset::new(
            data.x.clone(),
            data.y
                .iter()
                .map(|row| row.iter().map(|&r| r.clamp(0.0, RATIO_CAP)).collect())
                .collect(),
        );
        let selector = ModelSelector {
            candidates: vec![
                Algorithm::NeuralNetwork,
                Algorithm::RandomForest,
                Algorithm::GradientBoosting,
            ],
            train_fraction: 0.8,
            seed,
        };
        let report = selector.select(&capped)?;
        Ok(InterferenceModel {
            chosen: report.chosen,
            validation_error: report
                .error_of(report.chosen)
                .expect("chosen candidate evaluated"),
            model: report.model,
        })
    }

    /// Predict adjustment ratios (clamped to ≥ 1: concurrency never makes
    /// an OU faster, §5.2).
    pub fn predict_ratios(
        &self,
        self_pred: &Metrics,
        thread_totals: &[Metrics],
        window_us: f64,
    ) -> Metrics {
        let f = InterferenceInputs::features(self_pred, thread_totals, window_us);
        let ratios: Metrics = self.model.predict_one(&f).into_iter().collect();
        ratios.clamp_min(1.0)
    }

    /// Adjust an isolated OU prediction for the concurrent environment.
    pub fn adjust(
        &self,
        self_pred: &Metrics,
        thread_totals: &[Metrics],
        window_us: f64,
    ) -> Metrics {
        self_pred.mul_elementwise(&self.predict_ratios(self_pred, thread_totals, window_us))
    }

    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::metrics::idx;
    use mb2_common::Prng;

    fn metrics(elapsed: f64, cpu: f64) -> Metrics {
        let mut m = Metrics::ZERO;
        m[idx::ELAPSED_US] = elapsed;
        m[idx::CPU_US] = cpu;
        m[idx::CYCLES] = cpu * 3100.0;
        m
    }

    #[test]
    fn feature_vector_shape_and_normalization() {
        let target = metrics(100.0, 90.0);
        let totals = vec![metrics(1000.0, 900.0), metrics(2000.0, 1800.0)];
        let f = InterferenceInputs::features(&target, &totals, 1_000_000.0);
        assert_eq!(f.len(), INTERFERENCE_FEATURE_COUNT);
        // Self elapsed / elapsed == 1.
        assert!((f[idx::ELAPSED_US] - 1.0).abs() < 1e-12);
        // Mean thread total elapsed = 1500 / 100 = 15.
        assert!((f[METRIC_COUNT + idx::ELAPSED_US] - 15.0).abs() < 1e-12);
        assert_eq!(f[f.len() - 2], 2.0);
        // Demand: (900 + 1800) cpu-us over a 1s window.
        assert!((f[f.len() - 1] - 2700.0 / 1_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_labels_elementwise() {
        let actual = metrics(200.0, 90.0);
        let pred = metrics(100.0, 90.0);
        let r = InterferenceInputs::ratio_labels(&actual, &pred);
        assert!((r[idx::ELAPSED_US] - 2.0).abs() < 1e-12);
        assert!((r[idx::CPU_US] - 1.0).abs() < 1e-12);
    }

    /// Train on a synthetic law — slowdown grows with total concurrent CPU
    /// demand — and check the model recovers it for unseen thread counts
    /// (the Fig. 8 generalization axis).
    #[test]
    fn learns_synthetic_contention_law() {
        let mut rng = Prng::new(9);
        let mut data = Dataset::default();
        let make_case = |threads: usize, rng: &mut Prng| {
            let self_elapsed = 50.0 + rng.next_f64() * 500.0;
            let self_pred = metrics(self_elapsed, self_elapsed * 0.9);
            let totals: Vec<Metrics> = (0..threads)
                .map(|_| {
                    let e = 1000.0 + rng.next_f64() * 1000.0;
                    metrics(e, e * 0.9)
                })
                .collect();
            // Ground truth: ratio = 1 + 0.1 * (threads - 1).
            let ratio = 1.0 + 0.1 * (threads as f64 - 1.0);
            (self_pred, totals, ratio)
        };
        for _ in 0..300 {
            // Train on odd thread counts only (paper §8.4 protocol).
            let threads = *rng.choose(&[1usize, 3, 5, 7, 9]);
            let (self_pred, totals, ratio) = make_case(threads, &mut rng);
            let f = InterferenceInputs::features(&self_pred, &totals, 500_000.0);
            let actual = self_pred.scale(ratio);
            data.push(f, InterferenceInputs::ratio_labels(&actual, &self_pred));
        }
        let model = InterferenceModel::train(&data, 3).unwrap();
        // Test on even thread counts.
        for threads in [2usize, 4, 8] {
            let (self_pred, totals, truth) = make_case(threads, &mut rng);
            let ratios = model.predict_ratios(&self_pred, &totals, 500_000.0);
            let err = (ratios[idx::ELAPSED_US] - truth).abs() / truth;
            assert!(
                err < 0.15,
                "threads {threads}: pred {} truth {truth}",
                ratios[idx::ELAPSED_US]
            );
        }
    }

    #[test]
    fn ratios_clamped_to_one() {
        let mut data = Dataset::default();
        // All labels say "0.5× faster" — physically impossible; the clamp
        // must floor predictions at 1.
        for i in 0..50 {
            let self_pred = metrics(100.0 + i as f64, 90.0);
            let totals = vec![metrics(500.0, 450.0)];
            let f = InterferenceInputs::features(&self_pred, &totals, 500_000.0);
            data.push(f, vec![0.5; METRIC_COUNT]);
        }
        let model = InterferenceModel::train(&data, 5).unwrap();
        let ratios =
            model.predict_ratios(&metrics(100.0, 90.0), &[metrics(500.0, 450.0)], 500_000.0);
        assert!(ratios.as_slice().iter().all(|&r| r >= 1.0));
    }

    #[test]
    fn empty_training_data_is_error() {
        assert!(InterferenceModel::train(&Dataset::default(), 1).is_err());
    }
}
