//! Chaos load workers: each worker drives SmallBank transactions over its
//! own connection, reconnecting through injected tears and drains, and
//! keeps an ordered log of what the server acknowledged — the input to the
//! harness's replay oracle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;
use std::time::Duration;

use mb2_common::{DbError, Prng};
use mb2_server::Client;
use mb2_workloads::smallbank::SmallBank;

/// What the client learned about one transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// COMMIT was acknowledged: the transaction MUST survive every fault.
    Committed,
    /// The transaction definitely did not commit: an in-band error rolled
    /// it back, or the connection tore before COMMIT was sent (the server
    /// aborts a session's open transaction when the connection drops).
    Aborted,
    /// The connection tore while COMMIT was in flight: the server may or
    /// may not have committed. Resolved later by probing the transaction's
    /// ledger marker.
    Uncertain,
}

/// One logged write transaction: its statements (including the ledger
/// marker insert) and how the attempt ended.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub statements: Vec<String>,
    pub marker: u64,
    pub outcome: TxnOutcome,
}

/// State a worker carries across phases: its private account range, its
/// deterministic RNG, and the ordered log of write transactions.
#[derive(Debug)]
pub struct WorkerState {
    pub id: usize,
    pub range: (usize, usize),
    pub rng: Prng,
    pub next_seq: u64,
    pub log: Vec<LogEntry>,
    pub committed: u64,
    pub aborted: u64,
    pub uncertain: u64,
}

impl WorkerState {
    pub fn new(id: usize, range: (usize, usize), seed: u64) -> WorkerState {
        WorkerState {
            id,
            range,
            // Offset keeps worker streams disjoint while staying a pure
            // function of the plan seed.
            rng: Prng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (id as u64 + 1)),
            next_seq: 0,
            log: Vec::new(),
            committed: 0,
            aborted: 0,
            uncertain: 0,
        }
    }
}

/// Aggregated per-worker counters, for progress assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    pub committed: u64,
    pub aborted: u64,
    pub uncertain: u64,
}

/// Shared control surface between the harness and its workers. The address
/// is mutable because a kill-and-recover restarts the server on a new port.
pub struct WorkerShared {
    pub addr: RwLock<String>,
    pub stop: AtomicBool,
}

impl WorkerShared {
    pub fn addr(&self) -> String {
        self.addr.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Run one transaction attempt over an established connection.
///
/// The outcome classification is the heart of the data-loss invariant:
/// only a torn connection *after* COMMIT was sent is ambiguous. Everything
/// else is definite — in-band errors roll back (with a best-effort
/// ROLLBACK to free the session), and a connection torn earlier takes the
/// open transaction down with the server-side session.
fn run_txn(client: &mut Client, statements: &[String]) -> (TxnOutcome, bool) {
    // (outcome, connection_still_usable)
    match client.query("BEGIN") {
        Ok(_) => {}
        Err(DbError::Net(_)) | Err(DbError::ServerBusy(_)) => return (TxnOutcome::Aborted, false),
        Err(_) => return (TxnOutcome::Aborted, true),
    }
    for sql in statements {
        match client.query(sql) {
            Ok(_) => {}
            Err(DbError::Net(_)) => return (TxnOutcome::Aborted, false),
            Err(DbError::ServerBusy(_)) => {
                // Draining or shedding: the statement never ran; the close
                // that follows aborts the open transaction.
                return (TxnOutcome::Aborted, false);
            }
            Err(_) => {
                let usable = client.query("ROLLBACK").is_ok();
                return (TxnOutcome::Aborted, usable);
            }
        }
    }
    match client.query("COMMIT") {
        Ok(_) => (TxnOutcome::Committed, true),
        Err(DbError::Net(_)) => (TxnOutcome::Uncertain, false),
        Err(DbError::ServerBusy(_)) => (TxnOutcome::Aborted, false),
        Err(_) => {
            let usable = client.query("ROLLBACK").is_ok();
            (TxnOutcome::Aborted, usable)
        }
    }
}

/// Drive `attempts` transaction attempts against whatever server the
/// shared address currently points at, reconnecting as needed.
pub fn run_worker(
    shared: &WorkerShared,
    workload: &SmallBank,
    mut state: WorkerState,
    attempts: usize,
) -> WorkerState {
    let templates = [
        "balance",
        "deposit_checking",
        "transact_savings",
        "amalgamate",
        "write_check",
    ];
    let mut client: Option<Client> = None;
    for _ in 0..attempts {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(shared.addr()) {
                Ok(c) => {
                    let _ = c.set_read_timeout(Some(Duration::from_secs(10)));
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    // Server down or shedding; burn the attempt and retry.
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            },
        };

        let template = *state.rng.choose(&templates);
        let (lo, hi) = state.range;
        let mut statements = workload.sample_transaction_in(template, &mut state.rng, lo, hi);
        let is_write = template != "balance";
        let marker = state.id as u64 * 1_000_000 + state.next_seq;
        if is_write {
            state.next_seq += 1;
            statements.push(format!("INSERT INTO sb_ledger VALUES ({marker})"));
        }

        let (outcome, usable) = run_txn(c, &statements);
        match outcome {
            TxnOutcome::Committed => {
                state.committed += 1;
                if is_write {
                    state.log.push(LogEntry {
                        statements,
                        marker,
                        outcome,
                    });
                }
            }
            TxnOutcome::Aborted => state.aborted += 1,
            TxnOutcome::Uncertain => {
                state.uncertain += 1;
                if is_write {
                    state.log.push(LogEntry {
                        statements,
                        marker,
                        outcome,
                    });
                }
            }
        }
        if !usable {
            client = None;
        }
    }
    state
}
