//! Background version garbage collection — the **Garbage Collection** batch
//! OU. Each invocation prunes version chains across all registered tables,
//! one storage shard at a time, recomputing the transaction manager's
//! watermark per shard pass so long chains on one shard never starve
//! pruning on another.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mb2_common::{fault, FaultInjector};
use mb2_obs::{Counter, Histogram, MetricsRegistry};
use mb2_storage::Table;

use crate::manager::TxnManager;

/// Result of one GC invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcReport {
    pub versions_reclaimed: usize,
    pub slots_scanned: usize,
    pub elapsed: Duration,
}

/// The garbage collector. Runs on demand (`run_once`) or on a background
/// thread with a configurable interval (a behavior knob).
pub struct GarbageCollector {
    txn_mgr: Arc<TxnManager>,
    tables: Mutex<Vec<Arc<Table>>>,
    /// Versions reclaimed over the collector's lifetime
    /// (`mb2_gc_versions_reclaimed_total`).
    pub total_reclaimed: Arc<Counter>,
    /// Collection passes run (`mb2_gc_invocations_total`).
    pub invocations: Arc<Counter>,
    /// Duration of one collection pass in microseconds (`mb2_gc_pause_us`).
    pub pause_us: Arc<Histogram>,
    /// Passes skipped by an injected `gc.cycle` fault
    /// (`mb2_gc_cycles_starved_total`).
    pub starved: Arc<Counter>,
    /// Registry the per-shard storage gauges (`mb2_storage_*{table,shard}`)
    /// publish into after each pass; the GC pass is the natural cadence for
    /// refreshing storage occupancy without adding hot-path counters.
    registry: Arc<MetricsRegistry>,
    /// Fault injection for chaos tests (`gc.cycle` point); `None` in
    /// production.
    faults: Mutex<Option<Arc<FaultInjector>>>,
    stop: Arc<AtomicBool>,
    /// Interruptible-sleep channel for the background thread: `shutdown`
    /// flips the flag under the lock and notifies, so a worker parked in
    /// `wait_timeout` wakes immediately instead of finishing its interval.
    wakeup: Arc<(StdMutex<bool>, Condvar)>,
    /// Inter-pass interval in microseconds, re-read by the worker before
    /// each wait so [`GarbageCollector::set_interval`] (the GC-cadence
    /// behavior knob) takes effect on a running thread.
    interval_us: Arc<AtomicU64>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl GarbageCollector {
    pub fn new(txn_mgr: Arc<TxnManager>) -> Arc<GarbageCollector> {
        GarbageCollector::with_metrics(txn_mgr, &MetricsRegistry::shared())
    }

    /// Like [`GarbageCollector::new`], but publishing counters and the pause
    /// histogram into the given registry instead of a private one.
    pub fn with_metrics(
        txn_mgr: Arc<TxnManager>,
        registry: &Arc<MetricsRegistry>,
    ) -> Arc<GarbageCollector> {
        Arc::new(GarbageCollector {
            txn_mgr,
            tables: Mutex::new(Vec::new()),
            total_reclaimed: registry.counter(
                "mb2_gc_versions_reclaimed_total",
                "MVCC versions reclaimed by garbage collection.",
            ),
            invocations: registry
                .counter("mb2_gc_invocations_total", "Garbage collection passes run."),
            pause_us: registry.histogram(
                "mb2_gc_pause_us",
                "Duration of one garbage collection pass in microseconds.",
            ),
            starved: registry.counter(
                "mb2_gc_cycles_starved_total",
                "Garbage collection passes skipped by an injected gc.cycle fault.",
            ),
            registry: registry.clone(),
            faults: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
            wakeup: Arc::new((StdMutex::new(false), Condvar::new())),
            interval_us: Arc::new(AtomicU64::new(0)),
            worker: Mutex::new(None),
        })
    }

    /// Register a table for collection.
    pub fn register(&self, table: Arc<Table>) {
        self.tables.lock().push(table);
    }

    /// Attach (or detach) a fault injector consulted at the start of each
    /// pass (`gc.cycle`): a failure starves the pass (it is skipped and
    /// counted), a delay stalls it.
    pub fn set_faults(&self, faults: Option<Arc<FaultInjector>>) {
        *self.faults.lock() = faults;
    }

    /// Run one collection pass up to the current watermark.
    pub fn run_once(&self) -> GcReport {
        let started = Instant::now();
        let faults = self.faults.lock().clone();
        if let Some(inj) = faults {
            if inj.check(fault::points::GC_CYCLE).is_some() {
                self.starved.inc();
                return GcReport {
                    versions_reclaimed: 0,
                    slots_scanned: 0,
                    elapsed: started.elapsed(),
                };
            }
        }
        let tables: Vec<Arc<Table>> = self.tables.lock().clone();
        let mut reclaimed = 0usize;
        let mut scanned = 0usize;
        for table in tables {
            scanned += table.num_slots();
            // Per-shard passes with a *fresh watermark each*: a shard whose
            // chains are long (hot) cannot starve pruning elsewhere, and a
            // snapshot that retired while an earlier shard was being pruned
            // already benefits the later shards in the same invocation.
            for shard in 0..table.shard_count() {
                let watermark = self.txn_mgr.watermark();
                reclaimed += table.gc_shard(shard, watermark);
            }
            self.publish_shard_metrics(&table);
        }
        self.total_reclaimed.add(reclaimed as u64);
        self.invocations.inc();
        let elapsed = started.elapsed();
        self.pause_us.record_duration(elapsed);
        GcReport {
            versions_reclaimed: reclaimed,
            slots_scanned: scanned,
            elapsed,
        }
    }

    /// Refresh the per-shard storage gauges for one table. `register` is
    /// register-or-fetch, so repeated passes reuse the same handles; the
    /// pruned counter reconciles against the shard's monotonic total so it
    /// stays a true counter across passes.
    fn publish_shard_metrics(&self, table: &Table) {
        for s in table.shard_stats() {
            let shard = s.shard.to_string();
            let labels = [("table", table.name.as_str()), ("shard", shard.as_str())];
            self.registry
                .gauge_with(
                    "mb2_storage_tuples",
                    &labels,
                    "Live (committed, undeleted) tuples per storage shard.",
                )
                .set(s.live_tuples as i64);
            self.registry
                .gauge_with(
                    "mb2_storage_versions",
                    &labels,
                    "MVCC version records per storage shard.",
                )
                .set(s.versions as i64);
            let pruned = self.registry.counter_with(
                "mb2_storage_gc_pruned_total",
                &labels,
                "MVCC versions pruned by garbage collection per storage shard.",
            );
            let published = pruned.get();
            if s.gc_pruned > published {
                pruned.add(s.gc_pruned - published);
            }
        }
    }

    /// Start the background GC thread with the given interval knob. The
    /// inter-pass wait is interruptible: `shutdown` wakes the thread
    /// immediately rather than letting it sleep out the interval, so
    /// engine shutdown latency is bounded by one GC *pass*, not one GC
    /// *interval*.
    pub fn start_background(self: &Arc<Self>, interval: Duration) {
        self.interval_us.store(
            interval.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
        let me = self.clone();
        let stop = self.stop.clone();
        let wakeup = self.wakeup.clone();
        let interval_us = self.interval_us.clone();
        let handle = std::thread::spawn(move || loop {
            let (lock, cvar) = &*wakeup;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                // Re-read the cadence knob each pass under the lock: a
                // `set_interval` nudge ends the current wait (not timed
                // out) and the next one adopts the new interval.
                let interval = Duration::from_micros(interval_us.load(Ordering::Acquire));
                let (guard, timed_out) = match cvar.wait_timeout(stopped, interval) {
                    Ok((g, t)) => (g, t.timed_out()),
                    Err(_) => return,
                };
                stopped = guard;
                if timed_out {
                    break;
                }
            }
            if *stopped || stop.load(Ordering::Acquire) {
                return;
            }
            drop(stopped);
            me.run_once();
        });
        *self.worker.lock() = Some(handle);
    }

    /// Change the background collection interval at runtime (the GC-cadence
    /// behavior knob). Wakes a worker parked in its old (possibly much
    /// longer) wait so the new cadence applies immediately. A no-op until
    /// `start_background` has been called.
    pub fn set_interval(&self, interval: Duration) {
        self.interval_us.store(
            interval.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
        let (lock, cvar) = &*self.wakeup;
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        cvar.notify_all();
    }

    /// The current background collection interval.
    pub fn interval(&self) -> Duration {
        Duration::from_micros(self.interval_us.load(Ordering::Acquire))
    }

    /// Stop the background thread, if running. Wakes a parked worker
    /// immediately; returns once the thread has been joined.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let (lock, cvar) = &*self.wakeup;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GarbageCollector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let (lock, cvar) = &*self.wakeup;
        if let Ok(mut stopped) = lock.lock() {
            *stopped = true;
        }
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Schema, Value};
    use mb2_storage::TableId;

    fn table() -> Arc<Table> {
        Arc::new(Table::new(
            TableId(1),
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        ))
    }

    #[test]
    fn gc_reclaims_after_updates() {
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        let t = table();
        gc.register(t.clone());

        let mut setup = mgr.begin();
        let slot = setup.insert(&t, vec![Value::Int(0)]).unwrap();
        setup.commit().unwrap();
        for i in 1..=10 {
            let mut txn = mgr.begin();
            txn.update(&t, slot, vec![Value::Int(i)]).unwrap();
            txn.commit().unwrap();
        }
        let before = t.version_count();
        let report = gc.run_once();
        assert!(report.versions_reclaimed >= 9, "{report:?}");
        assert!(t.version_count() < before);
        // Latest value still readable.
        let reader = mgr.begin();
        assert_eq!(reader.read(&t, slot).unwrap()[0], Value::Int(10));
    }

    #[test]
    fn gc_respects_active_snapshots() {
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        let t = table();
        gc.register(t.clone());

        let mut setup = mgr.begin();
        let slot = setup.insert(&t, vec![Value::Int(0)]).unwrap();
        setup.commit().unwrap();
        let holder = mgr.begin(); // pins the watermark
        for i in 1..=5 {
            let mut txn = mgr.begin();
            txn.update(&t, slot, vec![Value::Int(i)]).unwrap();
            txn.commit().unwrap();
        }
        gc.run_once();
        // Holder still reads its snapshot value.
        assert_eq!(holder.read(&t, slot).unwrap()[0], Value::Int(0));
        drop(holder);
        let report = gc.run_once();
        assert!(report.versions_reclaimed >= 4, "{report:?}");
    }

    /// Regression: `TxnManager::begin` must read the clock *while holding*
    /// the active-set lock. When it read first and registered after, a
    /// commit + GC pass could land in the gap — the watermark saw no
    /// active snapshots, took the advanced clock, and pruned the version
    /// the still-unregistered snapshot was pinned to, making the row
    /// vanish from its reads.
    #[test]
    fn begin_registration_is_atomic_against_gc_watermark() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};

        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        let t = table();
        gc.register(t.clone());
        let mut setup = mgr.begin();
        let slot = setup.insert(&t, vec![Value::Int(0)]).unwrap();
        setup.commit().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (mgr, gc, t, stop) = (mgr.clone(), gc.clone(), t.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let mut txn = mgr.begin();
                    txn.update(&t, slot, vec![Value::Int(i)]).unwrap();
                    txn.commit().unwrap();
                    gc.run_once();
                }
            })
        };

        // Every snapshot must see *some* version of the slot, no matter
        // where in the update/GC churn its begin landed.
        let deadline = Instant::now() + Duration::from_millis(300);
        let mut reads = 0u64;
        while Instant::now() < deadline {
            let reader = mgr.begin();
            assert!(
                reader.read(&t, slot).is_some(),
                "snapshot at {:?} found no visible version after {reads} reads",
                reader.read_ts()
            );
            reads += 1;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(reads > 0);
    }

    #[test]
    fn sharded_table_gc_prunes_every_shard() {
        use mb2_storage::{TableId, SHARD_UNIT_SLOTS};
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        let t = Arc::new(Table::with_shards(
            TableId(2),
            "sharded",
            Schema::new(vec![Column::new("a", DataType::Int)]),
            3,
        ));
        gc.register(t.clone());
        // Three shard units of rows, then update one row per shard to
        // leave garbage on each.
        let mut setup = mgr.begin();
        let slots: Vec<_> = (0..3 * SHARD_UNIT_SLOTS)
            .map(|i| setup.insert(&t, vec![Value::Int(i as i64)]).unwrap())
            .collect();
        setup.commit().unwrap();
        for s in 0..3 {
            let mut txn = mgr.begin();
            txn.update(&t, slots[s * SHARD_UNIT_SLOTS], vec![Value::Int(-1)])
                .unwrap();
            txn.commit().unwrap();
        }
        let report = gc.run_once();
        assert_eq!(report.versions_reclaimed, 3, "{report:?}");
        let stats = t.shard_stats();
        for s in &stats {
            assert_eq!(s.gc_pruned, 1, "{stats:?}");
            assert!(s.last_gc_watermark > 0, "{stats:?}");
        }
    }

    #[test]
    fn background_gc_runs() {
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr.clone());
        gc.register(table());
        gc.start_background(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(20));
        gc.shutdown();
        assert!(gc.invocations.get() > 0);
    }

    #[test]
    fn interval_is_runtime_tunable() {
        // The autopilot tunes GC cadence on a live engine: a collector
        // started with a 30s interval must adopt a 1ms one without a
        // restart, visible as passes running.
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr);
        gc.register(table());
        gc.start_background(Duration::from_secs(30));
        assert_eq!(gc.interval(), Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(20));
        let before = gc.invocations.get();
        gc.set_interval(Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        while gc.invocations.get() <= before {
            assert!(
                Instant::now() < deadline,
                "worker did not adopt the tuned 1ms interval"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        gc.shutdown();
    }

    #[test]
    fn shutdown_interrupts_interval_sleep() {
        // Regression: the worker used to sleep the whole interval before
        // re-checking stop, so shutdown with a long interval blocked for
        // the full interval. The condvar wait must wake promptly.
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr);
        gc.register(table());
        gc.start_background(Duration::from_secs(30));
        // Give the worker a moment to park in its wait.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        gc.shutdown();
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "shutdown took {:?} against a 30s interval",
            t0.elapsed()
        );
    }

    #[test]
    fn empty_gc_is_cheap_noop() {
        let mgr = TxnManager::new(None);
        let gc = GarbageCollector::new(mgr);
        let report = gc.run_once();
        assert_eq!(report.versions_reclaimed, 0);
        assert_eq!(report.slots_scanned, 0);
    }
}
