//! # MB2: Decomposed Behavior Modeling for Self-Driving DBMSs
//!
//! A from-scratch Rust reproduction of *"MB2: Decomposed Behavior Modeling
//! for Self-Driving Database Management Systems"* (Ma et al., SIGMOD 2021),
//! including the in-memory MVCC DBMS substrate it instruments (the
//! NoisePage analog), the ML library behind its models, the four benchmark
//! workloads, and the QPPNet-style baseline.
//!
//! ## Quickstart
//!
//! ```
//! use mb2::engine::Database;
//!
//! let db = Database::open();
//! db.execute("CREATE TABLE t (a INT, b VARCHAR(8))").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let result = db.execute("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(result.rows[0][0].as_i64().unwrap(), 2);
//! ```
//!
//! The MB2 pipeline end to end (see `examples/quickstart.rs` for a
//! narrated version):
//!
//! 1. Run OU-runners ([`framework::runners`]) against a scratch database to
//!    collect per-OU training data.
//! 2. Train one model per OU ([`framework::training::train_all`]).
//! 3. Run concurrent runners and train the interference model.
//! 4. Predict workload/action behavior ([`framework::BehaviorModels`]) and
//!    let the oracle planner ([`framework::planner`]) pick actions.

pub use mb2_baselines as baselines;
pub use mb2_common as common;
pub use mb2_core as framework;
pub use mb2_engine as engine;
pub use mb2_ml as ml;
pub use mb2_obs as obs;
pub use mb2_pilot as pilot;
pub use mb2_server as server;
pub use mb2_workloads as workloads;
