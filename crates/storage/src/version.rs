//! MVCC version chains.
//!
//! Each table slot owns a [`VersionChain`]: a newest-first list of tuple
//! versions. The chain implements snapshot-isolation visibility and
//! first-updater-wins write-write conflict detection (NoisePage's MVCC
//! protocol family \[71\]).

use std::sync::Arc;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult};

use crate::ts::Ts;

/// One tuple version. `data == None` is a delete tombstone.
#[derive(Debug, Clone)]
pub struct Version {
    /// Commit timestamp of the writing transaction, or its txn id while the
    /// write is uncommitted.
    pub begin: Ts,
    /// Timestamp at which this version was superseded ([`Ts::INF`] if live).
    pub end: Ts,
    pub data: Option<Arc<Tuple>>,
}

/// What a chain looks like to the compactor at a given watermark: either it
/// is *frozen* (no version newer than the watermark can ever become visible
/// to a current or future snapshot, so the slot can be served from an
/// immutable sealed block) or it is still *hot*.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenState {
    /// Exactly one committed live version with `begin <= watermark`: the
    /// row is identical for every snapshot at or above the watermark.
    Row(Arc<Tuple>, Ts),
    /// Empty chain: a hole (fault-tripped insert, aborted insert) or a slot
    /// already evicted into a sealed block.
    Empty,
    /// A lone committed tombstone with `begin <= watermark`: deleted for
    /// every snapshot at or above the watermark.
    Deleted,
    /// Anything else — uncommitted writes, multiple versions, or a newest
    /// version above the watermark. Not sealable this pass.
    Hot,
}

/// Newest-first version chain for one slot.
#[derive(Debug, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Create a chain whose first version was installed by `txn`.
    pub fn new_insert(data: Tuple, txn: Ts) -> VersionChain {
        debug_assert!(txn.is_txn());
        VersionChain {
            versions: vec![Version {
                begin: txn,
                end: Ts::INF,
                data: Some(Arc::new(data)),
            }],
        }
    }

    /// Re-seed an empty chain from a sealed block row: one committed live
    /// version carrying its original commit timestamp. Used when a writer
    /// touches a slot whose row was evicted into a block — the chain becomes
    /// authoritative again and the normal install path proceeds on top.
    pub fn revive(&mut self, data: Arc<Tuple>, begin: Ts) {
        debug_assert!(begin.is_committed());
        debug_assert!(self.versions.is_empty());
        self.versions.push(Version {
            begin,
            end: Ts::INF,
            data: Some(data),
        });
    }

    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Approximate heap size of the chain in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.versions
            .iter()
            .map(|v| 48 + v.data.as_ref().map_or(0, |d| tuple_size_bytes(d)))
            .sum()
    }

    /// Return the version visible to a reader with snapshot `read_ts` that
    /// belongs to transaction `own` (own uncommitted writes are visible).
    /// `None` means no visible version (never existed, or deleted).
    pub fn visible(&self, read_ts: Ts, own: Ts) -> Option<&Arc<Tuple>> {
        debug_assert!(read_ts.is_committed());
        for v in &self.versions {
            let visible = if v.begin.is_txn() {
                v.begin == own
            } else {
                v.begin <= read_ts
            };
            if visible {
                return v.data.as_ref();
            }
        }
        None
    }

    /// Install a new version written by `txn` (update, or delete when
    /// `data == None`). Enforces first-updater-wins: fails if the newest
    /// version is an uncommitted write of another transaction, or was
    /// committed after the writer's snapshot `read_ts`.
    ///
    /// Returns the data of the previously newest version (for undo logging).
    pub fn install(
        &mut self,
        data: Option<Tuple>,
        txn: Ts,
        read_ts: Ts,
    ) -> DbResult<Option<Arc<Tuple>>> {
        debug_assert!(txn.is_txn());
        let newest = self
            .versions
            .first_mut()
            .ok_or_else(|| DbError::Storage("install on empty version chain".into()))?;
        if newest.begin.is_txn() {
            if newest.begin != txn {
                return Err(DbError::WriteConflict {
                    table: String::new(),
                });
            }
            // Same transaction re-writes the slot: collapse into its own
            // uncommitted version.
            let old = newest.data.clone();
            newest.data = data.map(Arc::new);
            return Ok(old);
        }
        if newest.begin > read_ts {
            // Committed by someone who serialized after our snapshot.
            return Err(DbError::WriteConflict {
                table: String::new(),
            });
        }
        if newest.data.is_none() {
            return Err(DbError::Storage("update of deleted tuple".into()));
        }
        let old = newest.data.clone();
        newest.end = txn;
        self.versions.insert(
            0,
            Version {
                begin: txn,
                end: Ts::INF,
                data: data.map(Arc::new),
            },
        );
        Ok(old)
    }

    /// Stamp this chain's uncommitted version owned by `txn` with
    /// `commit_ts`. No-op if the transaction doesn't own the newest version
    /// (it may have been collapsed by an abort already).
    pub fn commit(&mut self, txn: Ts, commit_ts: Ts) {
        debug_assert!(commit_ts.is_committed());
        if let Some(newest) = self.versions.first_mut() {
            if newest.begin == txn {
                newest.begin = commit_ts;
            }
        }
        if let Some(next) = self.versions.get_mut(1) {
            if next.end == txn {
                next.end = commit_ts;
            }
        }
    }

    /// Remove the uncommitted version owned by `txn`, restoring the prior
    /// newest version. Returns true if the chain is now empty (aborted
    /// insert) and the slot can be reused.
    pub fn abort(&mut self, txn: Ts) -> bool {
        if let Some(newest) = self.versions.first() {
            if newest.begin == txn {
                self.versions.remove(0);
                if let Some(prior) = self.versions.first_mut() {
                    if prior.end == txn {
                        prior.end = Ts::INF;
                    }
                }
            }
        }
        self.versions.is_empty()
    }

    /// Prune versions no longer visible to any transaction with snapshot
    /// `>= watermark`. Returns the number of versions reclaimed.
    ///
    /// A version can go once a *newer committed* version exists whose begin
    /// timestamp is `<= watermark` (every live reader will see that newer
    /// version instead). Tombstone chains whose newest committed tombstone is
    /// below the watermark collapse entirely.
    pub fn prune(&mut self, watermark: Ts) -> usize {
        self.prune_impl(watermark, true)
    }

    /// Prune like [`VersionChain::prune`], but never collapse a lone
    /// committed tombstone to an empty chain. Used for slots inside sealed
    /// units: an empty chain there means "serve the sealed block row", so
    /// collapsing a tombstone would resurrect the deleted row. The tombstone
    /// stays until compaction rebuilds the block without the row.
    pub fn prune_sealed(&mut self, watermark: Ts) -> usize {
        self.prune_impl(watermark, false)
    }

    fn prune_impl(&mut self, watermark: Ts, collapse_tombstone: bool) -> usize {
        debug_assert!(watermark.is_committed());
        // Find the newest committed version visible at the watermark.
        let mut cutoff = None;
        for (i, v) in self.versions.iter().enumerate() {
            if v.begin.is_committed() && v.begin <= watermark {
                cutoff = Some(i);
                break;
            }
        }
        let Some(cut) = cutoff else { return 0 };
        let mut reclaimed = self.versions.len().saturating_sub(cut + 1);
        self.versions.truncate(cut + 1);
        // If the surviving watermark-visible version is a tombstone and it is
        // the only version left, the whole chain is dead.
        if collapse_tombstone
            && cut == 0
            && self.versions.len() == 1
            && self.versions[0].data.is_none()
        {
            self.versions.clear();
            reclaimed += 1;
        }
        reclaimed
    }

    /// Classify this chain for the compactor's freeze rule at `watermark`.
    /// See [`FrozenState`]; anything not provably stable is `Hot`.
    pub fn frozen(&self, watermark: Ts) -> FrozenState {
        debug_assert!(watermark.is_committed());
        match self.versions.len() {
            0 => FrozenState::Empty,
            1 => {
                let v = &self.versions[0];
                if !v.begin.is_committed() || v.begin > watermark {
                    return FrozenState::Hot;
                }
                match &v.data {
                    Some(data) => FrozenState::Row(Arc::clone(data), v.begin),
                    None => FrozenState::Deleted,
                }
            }
            _ => FrozenState::Hot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    fn tup(v: i64) -> Tuple {
        vec![Value::Int(v)]
    }

    #[test]
    fn own_uncommitted_write_visible_only_to_owner() {
        let chain = VersionChain::new_insert(tup(1), Ts::txn(7));
        assert!(chain.visible(Ts(100), Ts::txn(7)).is_some());
        assert!(chain.visible(Ts(100), Ts::txn(8)).is_none());
    }

    #[test]
    fn committed_version_visible_at_or_after_commit() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(7));
        chain.commit(Ts::txn(7), Ts(10));
        assert!(chain.visible(Ts(9), Ts::txn(9)).is_none());
        assert!(chain.visible(Ts(10), Ts::txn(9)).is_some());
    }

    #[test]
    fn snapshot_reads_old_version_during_concurrent_update() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        // Reader with snapshot 6 sees the old value; snapshot 8 the new one.
        assert_eq!(chain.visible(Ts(6), Ts::txn(9)).unwrap()[0], Value::Int(1));
        assert_eq!(chain.visible(Ts(8), Ts::txn(9)).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        let err = chain.install(Some(tup(3)), Ts::txn(3), Ts(6));
        assert!(matches!(err, Err(DbError::WriteConflict { .. })));
    }

    #[test]
    fn stale_snapshot_update_conflicts() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        // Txn with snapshot 6 tries to update after commit at 8.
        let err = chain.install(Some(tup(3)), Ts::txn(3), Ts(6));
        assert!(matches!(err, Err(DbError::WriteConflict { .. })));
    }

    #[test]
    fn same_txn_rewrites_collapse() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        chain.install(Some(tup(3)), Ts::txn(2), Ts(6)).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.visible(Ts(6), Ts::txn(2)).unwrap()[0], Value::Int(3));
    }

    #[test]
    fn abort_restores_prior_version() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        let empty = chain.abort(Ts::txn(2));
        assert!(!empty);
        assert_eq!(chain.visible(Ts(10), Ts::txn(9)).unwrap()[0], Value::Int(1));
        // The restored version is live again (end == INF), so a new update
        // succeeds.
        chain.install(Some(tup(5)), Ts::txn(4), Ts(10)).unwrap();
    }

    #[test]
    fn aborted_insert_empties_chain() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        assert!(chain.abort(Ts::txn(1)));
    }

    #[test]
    fn delete_then_read_sees_tombstone() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(None, Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        assert!(chain.visible(Ts(8), Ts::txn(9)).is_none());
        assert!(chain.visible(Ts(7), Ts::txn(9)).is_some());
    }

    #[test]
    fn update_of_deleted_tuple_fails() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(None, Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        assert!(chain.install(Some(tup(2)), Ts::txn(3), Ts(9)).is_err());
    }

    #[test]
    fn prune_reclaims_superseded_versions() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        for (i, ts) in [(2u64, 10u64), (3, 15), (4, 20)] {
            chain
                .install(Some(tup(i as i64)), Ts::txn(i), Ts(ts - 1))
                .unwrap();
            chain.commit(Ts::txn(i), Ts(ts));
        }
        assert_eq!(chain.len(), 4);
        // Watermark 15: version committed at 15 is the oldest needed.
        let reclaimed = chain.prune(Ts(15));
        assert_eq!(reclaimed, 2);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.visible(Ts(15), Ts::txn(9)).unwrap()[0], Value::Int(3));
        assert_eq!(chain.visible(Ts(20), Ts::txn(9)).unwrap()[0], Value::Int(4));
    }

    #[test]
    fn prune_keeps_versions_needed_by_watermark() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(Some(tup(2)), Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(10));
        // Watermark 7: a reader at 7 still needs the version from t5.
        assert_eq!(chain.prune(Ts(7)), 0);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn prune_collapses_dead_tombstone_chain() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(None, Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        let reclaimed = chain.prune(Ts(9));
        assert_eq!(reclaimed, 2);
        assert!(chain.is_empty());
    }

    #[test]
    fn prune_ignores_uncommitted_chains() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        assert_eq!(chain.prune(Ts(100)), 0);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn prune_sealed_keeps_lone_tombstone() {
        let mut chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        chain.install(None, Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        // Regular prune would collapse this chain to empty; the sealed
        // variant must leave the tombstone so the slot does not fall back
        // to a sealed block row.
        let reclaimed = chain.prune_sealed(Ts(9));
        assert_eq!(reclaimed, 1);
        assert_eq!(chain.len(), 1);
        assert!(chain.visible(Ts(10), Ts::txn(9)).is_none());
        assert!(matches!(chain.frozen(Ts(9)), FrozenState::Deleted));
    }

    #[test]
    fn frozen_classifies_chain_states() {
        // Empty chain.
        let chain = VersionChain::default();
        assert_eq!(chain.frozen(Ts(10)), FrozenState::Empty);
        // Uncommitted: hot.
        let chain = VersionChain::new_insert(tup(1), Ts::txn(1));
        assert_eq!(chain.frozen(Ts(10)), FrozenState::Hot);
        // Committed below watermark: frozen row with its commit ts.
        let mut chain = VersionChain::new_insert(tup(7), Ts::txn(1));
        chain.commit(Ts::txn(1), Ts(5));
        match chain.frozen(Ts(10)) {
            FrozenState::Row(data, begin) => {
                assert_eq!(data[0], Value::Int(7));
                assert_eq!(begin, Ts(5));
            }
            other => panic!("expected frozen row, got {other:?}"),
        }
        // Committed above watermark: hot.
        assert_eq!(chain.frozen(Ts(4)), FrozenState::Hot);
        // Two versions (garbage not yet pruned): hot.
        chain.install(Some(tup(8)), Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(7));
        assert_eq!(chain.frozen(Ts(10)), FrozenState::Hot);
    }

    #[test]
    fn revive_restores_committed_row() {
        let mut chain = VersionChain::default();
        chain.revive(Arc::new(tup(3)), Ts(5));
        assert_eq!(chain.visible(Ts(5), Ts::txn(9)).unwrap()[0], Value::Int(3));
        // A normal update stacks on the revived base.
        chain.install(Some(tup(4)), Ts::txn(2), Ts(6)).unwrap();
        chain.commit(Ts::txn(2), Ts(8));
        assert_eq!(chain.visible(Ts(7), Ts::txn(9)).unwrap()[0], Value::Int(3));
        assert_eq!(chain.visible(Ts(8), Ts::txn(9)).unwrap()[0], Value::Int(4));
    }
}
