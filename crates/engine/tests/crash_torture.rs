//! Crash-point recovery torture.
//!
//! Build a log from a mixed DDL/DML workload whose state obeys simple
//! invariants (atomic group inserts, sum-conserving transfers), then
//! simulate a crash at *every* record boundary by truncating the log and
//! recovering. Every prefix must recover to a consistent database with no
//! partially-applied transactions. On top of the clean truncations we also
//! torture with torn tails (partial trailing record — tolerated) and
//! bit-flipped records (mid-file corruption — rejected strictly, salvaged
//! on request).

use std::path::PathBuf;

use mb2_common::DbError;
use mb2_engine::{recover, recover_with, Database, DatabaseConfig, RecoveryOptions};

/// Rows per atomic insert group; every consistent state has COUNT % GROUP == 0.
const GROUP: i64 = 3;
const GROUPS: i64 = 6;
const BAL: i64 = 100;

fn temp_log(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mb2_torture_{}_{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Run the torture workload against a WAL at `path` and return the final
/// log image.
///
/// The workload mixes DDL and DML so every record kind shows up in the log:
/// - `GROUPS` atomic multi-row inserts of `GROUP` rows, each with bal=BAL
///   (invariant: row count divisible by GROUP, sum == BAL * count);
/// - five explicit transfer transactions moving 10 between accounts
///   (sum-conserving; a torn one must vanish entirely);
/// - a CREATE INDEX;
/// - a scratch table created, filled, and dropped;
/// - a rolled-back update (must never surface);
/// - a single-statement DELETE of one whole untouched group.
fn build_workload(path: &std::path::Path) -> Vec<u8> {
    let db = Database::new(DatabaseConfig {
        wal_enabled: true,
        wal_path: Some(path.to_path_buf()),
        ..DatabaseConfig::default()
    })
    .unwrap();

    db.execute("CREATE TABLE accts (id INT, bal INT, grp INT)")
        .unwrap();
    for g in 0..GROUPS {
        let rows: Vec<String> = (0..GROUP)
            .map(|i| format!("({}, {BAL}, {g})", g * GROUP + i))
            .collect();
        db.execute(&format!("INSERT INTO accts VALUES {}", rows.join(", ")))
            .unwrap();
    }

    // Transfers touch only ids 0..=10, leaving the last group untouched.
    for i in 0..5 {
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute(&format!("UPDATE accts SET bal = bal - 10 WHERE id = {i}"))
            .unwrap();
        s.execute(&format!(
            "UPDATE accts SET bal = bal + 10 WHERE id = {}",
            i + 6
        ))
        .unwrap();
        s.execute("COMMIT").unwrap();
    }

    db.execute("CREATE INDEX accts_id ON accts (id)").unwrap();

    db.execute("CREATE TABLE scratch (x INT)").unwrap();
    db.execute("INSERT INTO scratch VALUES (1), (2)").unwrap();
    db.execute("DROP TABLE scratch").unwrap();

    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE accts SET bal = 0 WHERE id = 0").unwrap();
    s.execute("ROLLBACK").unwrap();
    drop(s);

    // Delete an entire group that no transfer touched: count stays divisible
    // by GROUP and the sum invariant survives.
    db.execute(&format!("DELETE FROM accts WHERE grp = {}", GROUPS - 1))
        .unwrap();

    let (_, _) = db.wal().unwrap().flush_now().unwrap();
    drop(db);
    std::fs::read(path).unwrap()
}

/// Walk the v2 record framing (`[u32 len][u32 crc][body]`) and return every
/// record boundary offset, including 0 and the file length.
fn record_boundaries(data: &[u8]) -> Vec<usize> {
    let mut bounds = vec![0usize];
    let mut off = 0usize;
    while off < data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= data.len(), "workload log ends mid-record");
        bounds.push(off);
    }
    bounds
}

fn count(db: &Database, table: &str) -> Option<i64> {
    match db.execute(&format!("SELECT COUNT(*) FROM {table}")) {
        Ok(r) => Some(r.rows[0][0].as_i64().unwrap()),
        Err(DbError::Catalog(_)) => None,
        Err(e) => panic!("unexpected error counting {table}: {e}"),
    }
}

/// The workload invariants that must hold at *every* crash point.
fn assert_consistent(db: &Database, ctx: &str) {
    if let Some(n) = count(db, "accts") {
        assert_eq!(
            n % GROUP,
            0,
            "{ctx}: partial insert group visible ({n} rows)"
        );
        if n > 0 {
            let sum = db.execute("SELECT SUM(bal) FROM accts").unwrap().rows[0][0]
                .as_i64()
                .unwrap();
            assert_eq!(
                sum,
                BAL * n,
                "{ctx}: balance sum not conserved ({n} rows, sum {sum})"
            );
            let zeroed = db
                .execute("SELECT COUNT(*) FROM accts WHERE bal = 0")
                .unwrap()
                .rows[0][0]
                .as_i64()
                .unwrap();
            assert_eq!(zeroed, 0, "{ctx}: rolled-back update surfaced");
        }
    }
    if let Some(n) = count(db, "scratch") {
        assert!(
            n == 0 || n == 2,
            "{ctx}: partial scratch insert visible ({n} rows)"
        );
    }
}

fn recover_prefix(data: &[u8], name: &str) -> (Database, mb2_engine::RecoveryReport) {
    let p = temp_log(name);
    std::fs::write(&p, data).unwrap();
    let out = recover(
        &p,
        DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        },
    );
    let _ = std::fs::remove_file(&p);
    out.unwrap()
}

#[test]
fn every_record_boundary_recovers_consistently() {
    let path = temp_log("build_bounds");
    let data = build_workload(&path);
    let _ = std::fs::remove_file(&path);
    let bounds = record_boundaries(&data);
    assert!(
        bounds.len() > 40,
        "workload too small to be interesting: {}",
        bounds.len()
    );

    for (i, &b) in bounds.iter().enumerate() {
        let (db, report) = recover_prefix(&data[..b], "prefix");
        assert_eq!(
            report.torn_tail_bytes, 0,
            "boundary {i}: clean cut reported torn"
        );
        assert!(report.salvaged_corruption.is_none(), "boundary {i}");
        assert_consistent(&db, &format!("boundary {i} (offset {b})"));
    }

    // The full log recovers the exact final state: one group deleted, all
    // transfers committed, scratch gone, rollback invisible.
    let (db, report) = recover_prefix(&data, "full");
    assert_eq!(count(&db, "accts"), Some(GROUP * (GROUPS - 1)));
    assert_eq!(
        count(&db, "scratch"),
        None,
        "scratch table must stay dropped"
    );
    assert_eq!(
        report.transactions_discarded, 1,
        "only the explicit ROLLBACK discards"
    );
    assert_consistent(&db, "full log");
}

#[test]
fn torn_tails_recover_to_the_last_boundary() {
    let path = temp_log("build_torn");
    let data = build_workload(&path);
    let _ = std::fs::remove_file(&path);
    let bounds = record_boundaries(&data);

    // At every boundary, append a partial next record (half of it, and the
    // degenerate 1-byte and 7-byte cuts that can't even hold a header).
    for w in bounds.windows(2) {
        let (b, next) = (w[0], w[1]);
        let reference = recover_prefix(&data[..b], "torn_ref").1;
        for cut in [b + 1, b + 7.min(next - b - 1).max(1), (b + next) / 2] {
            let cut = cut.min(next - 1);
            if cut <= b {
                continue;
            }
            let (db, report) = recover_prefix(&data[..cut], "torn");
            assert_eq!(
                report.torn_tail_bytes,
                cut - b,
                "cut at {cut} inside record [{b}, {next})"
            );
            assert_eq!(
                report.records_read, reference.records_read,
                "torn tail changed what was replayed"
            );
            assert_consistent(&db, &format!("torn cut {cut} in [{b}, {next})"));
        }
    }
}

#[test]
fn bit_flips_fail_strict_recovery_and_salvage_to_the_boundary() {
    let path = temp_log("build_flip");
    let data = build_workload(&path);
    let _ = std::fs::remove_file(&path);
    let bounds = record_boundaries(&data);

    // Corrupt the record that starts at every 5th boundary (plus the very
    // first) by flipping one CRC bit: the record stays complete, so this is
    // mid-file corruption, not a torn tail.
    for &b in bounds[..bounds.len() - 1].iter().step_by(5) {
        let mut bad = data.clone();
        bad[b + 4] ^= 0x01;

        let p = temp_log("flip");
        std::fs::write(&p, &bad).unwrap();
        let cfg = || DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        };

        // Strict recovery refuses to silently drop committed work.
        match recover(&p, cfg()) {
            Err(DbError::Wal(m)) if m.contains("checksum") => {}
            Err(e) => panic!("offset {b}: wrong error {e}"),
            Ok(_) => panic!("offset {b}: strict recovery accepted corruption"),
        }

        // Salvage replays the valid prefix and reports what it dropped.
        let (db, report) = recover_with(&p, cfg(), RecoveryOptions { salvage: true }).unwrap();
        let c = report
            .salvaged_corruption
            .expect("salvage must report corruption");
        assert_eq!(
            c.offset, b,
            "corruption must be pinned to the flipped record"
        );
        assert_eq!(c.offset + c.dropped_bytes, bad.len());
        assert_eq!(report.torn_tail_bytes, 0);
        assert_consistent(&db, &format!("salvaged at offset {b}"));
        let _ = std::fs::remove_file(&p);
    }
}
