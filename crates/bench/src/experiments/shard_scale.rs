//! Sharded storage — commit throughput by shard count.
//!
//! Measures concurrent single-shard-footprint commit transactions against
//! the same table at shard_count 1, 2, and max(4, cores). Each committer
//! thread owns one 512-slot shard unit (the shard-map interleave granule)
//! and repeatedly range-updates its entire unit in one transaction, so at
//! shard_count 1 every commit stamps under the table's single commit-lock
//! stripe, while at higher shard counts the footprints land on distinct
//! stripes and stamp in parallel (only the ticket-ordered clock publish
//! remains serial). Result rows are commits/sec and stamped rows/sec.
//!
//! Acceptance gate for this reproduction: with shard_count >= 4 the commit
//! throughput must reach at least 1.5x the single-shard configuration —
//! enforced only on hosts with >= 4 cores (a 1- or 2-core host cannot
//! overlap stamping; the gate reports SKIPPED and passes).
//!
//! Emits `results/shard_scale.txt` and machine-readable
//! `results/BENCH_shard.json`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_engine::{Database, DatabaseConfig};

use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Required commit-throughput speedup (shard_count >= 4 vs 1), enforced at
/// >= [`GATE_MIN_CORES`] cores.
pub const SHARD_COMMIT_SPEEDUP_GATE: f64 = 1.5;

/// Minimum core count for the speedup gate to be meaningful.
pub const GATE_MIN_CORES: usize = 4;

/// Slots per shard-map unit; each committer thread owns exactly one unit
/// so its write set is always a single-shard footprint.
const UNIT: usize = 512;

/// One timed window: spawn `threads` committers, each churning its own
/// unit, and return (commits, stamped rows) over `run_for`.
fn commit_window(db: &Arc<Database>, threads: usize, run_for: Duration) -> (u64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let lo = t * UNIT;
                let hi = lo + UNIT;
                let plan = db
                    .prepare(&format!(
                        "UPDATE acct SET bal = bal + 1 WHERE id >= {lo} AND id < {hi}"
                    ))
                    .expect("prepare update");
                let mut commits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin();
                    db.execute_plan_in(&plan, &mut txn, None).expect("update");
                    txn.commit().expect("disjoint units never conflict");
                    commits += 1;
                }
                commits
            })
        })
        .collect();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    let commits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (commits, commits * UNIT as u64)
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Sharded storage — commit throughput by shard count\n\n");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Committer threads = the widest shard count tested, so every shard
    // has a dedicated committer at the top configuration.
    let threads = cores.clamp(4, 8);
    let mut shard_counts = vec![1usize, 2, threads];
    shard_counts.sort_unstable();
    shard_counts.dedup();

    let reps = scale.pick(2, 3);
    let window = Duration::from_millis(scale.pick(150, 400) as u64);
    let rows = threads * UNIT;

    // rates[i] = (median commits/sec, median rows/sec) at shard_counts[i].
    let mut rates = vec![(0f64, 0f64); shard_counts.len()];
    for (si, &shards) in shard_counts.iter().enumerate() {
        let mut cfg = DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::bench()
        };
        // Intra-query execution stays serial; the committer threads are
        // the concurrency under test.
        cfg.knobs.parallelism = 1;
        cfg.knobs.shard_count = shards;
        let db = Arc::new(Database::new(cfg).expect("database"));
        db.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
        let mut i = 0;
        while i < rows {
            let n = 256.min(rows - i);
            let vals: Vec<String> = (i..i + n).map(|j| format!("({j}, 0)")).collect();
            db.execute(&format!("INSERT INTO acct VALUES {}", vals.join(", ")))
                .unwrap();
            i += n;
        }

        let mut commit_rates = Vec::with_capacity(reps);
        let mut row_rates = Vec::with_capacity(reps);
        let mut total_commits = 0u64;
        for rep in 0..=reps {
            let t0 = Instant::now();
            let (commits, stamped) = commit_window(&db, threads, window);
            let secs = t0.elapsed().as_secs_f64();
            total_commits += commits;
            assert!(commits > 0, "no commits at shard_count={shards}");
            if rep > 0 {
                commit_rates.push(commits as f64 / secs);
                row_rates.push(stamped as f64 / secs);
            }
        }
        commit_rates.sort_by(|a, b| a.total_cmp(b));
        row_rates.sort_by(|a, b| a.total_cmp(b));
        rates[si] = (
            commit_rates[commit_rates.len() / 2],
            row_rates[row_rates.len() / 2],
        );

        // Atomicity audit: every committed range-update raised the sum of
        // its unit by exactly UNIT, so the quiesced total must match the
        // commit count — a torn or half-published commit breaks this.
        let total = db.execute("SELECT SUM(bal) FROM acct").unwrap();
        let expect = total_commits as i64 * UNIT as i64;
        assert_eq!(
            total.rows[0][0],
            mb2_common::Value::Int(expect),
            "commit atomicity drifted at shard_count={shards}"
        );
        db.shutdown();
    }

    let max_si = shard_counts.len() - 1;
    let mut table = Table::new(
        format!(
            "commits/sec, {threads} committers x {UNIT}-row write sets over {rows} rows \
             (median of {reps}, {cores} cores)"
        ),
        &["shard_count", "commits/s", "stamped rows/s", "vs 1 shard"],
    );
    for (si, &shards) in shard_counts.iter().enumerate() {
        table.row(&[
            shards.to_string(),
            fmt(rates[si].0),
            fmt(rates[si].1),
            format!("{:.2}x", rates[si].0 / rates[0].0),
        ]);
    }
    out.push_str(&table.render());

    let speedup = rates[max_si].0 / rates[0].0;
    let gated = cores >= GATE_MIN_CORES;
    let pass = !gated || speedup >= SHARD_COMMIT_SPEEDUP_GATE;
    let verdict = if !gated {
        format!("SKIPPED ({cores} cores < {GATE_MIN_CORES})")
    } else if pass {
        "PASS".to_string()
    } else {
        "FAIL".to_string()
    };
    let _ = writeln!(
        out,
        "\ncommit speedup at shard_count={} vs 1: {speedup:.2}x \
         (gate {SHARD_COMMIT_SPEEDUP_GATE:.1}x at >= {GATE_MIN_CORES} cores) — {verdict}",
        shard_counts[max_si]
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"shard_scale\",\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"committers\": {threads},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"commit_speedup_max_vs_1\": {speedup:.4},");
    let _ = writeln!(json, "  \"gate\": {SHARD_COMMIT_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"gate_min_cores\": {GATE_MIN_CORES},");
    let _ = writeln!(json, "  \"gate_enforced\": {gated},");
    let _ = writeln!(json, "  \"gate_pass\": {pass},");
    json.push_str("  \"results\": [\n");
    for (si, &shards) in shard_counts.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shard_count\": {shards}, \"commits_per_sec\": {:.1}, \
             \"rows_per_sec\": {:.1}}}",
            rates[si].0, rates[si].1
        );
        json.push_str(if si + 1 == shard_counts.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("BENCH_shard.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\njson: {}", path.display());
    }

    out
}
