//! Shared model-building pipeline for the experiments: run all runners,
//! train all OU-models, optionally train the interference model.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::DbResult;
use mb2_core::runners::concurrent::{run_concurrent_window, ConcurrentRunConfig};
use mb2_core::runners::execution::{run_execution_runners, ExecutionRunnerConfig};
use mb2_core::runners::txn::{run_txn_runner, TxnRunnerConfig};
use mb2_core::runners::util::{run_util_runners, UtilRunnerConfig};
use mb2_core::runners::RunnerConfig;
use mb2_core::training::{train_all, OuModelSet, TrainingConfig, TrainingReport};
use mb2_core::{BehaviorModels, InterferenceModel, QueryTemplate, TrainingRepo};
use mb2_engine::Database;
use mb2_ml::Algorithm;

use crate::Scale;

/// All runner + training configuration for one pipeline run.
#[derive(Clone)]
pub struct PipelineConfig {
    pub exec: ExecutionRunnerConfig,
    pub util: UtilRunnerConfig,
    pub txn: TxnRunnerConfig,
    pub training: TrainingConfig,
}

impl PipelineConfig {
    /// Scale-appropriate defaults. `standard` sweeps to 16k-row tables with
    /// the full 10-repetition/5-warm-up measurement protocol; `quick` is a
    /// smoke-test size.
    pub fn for_scale(scale: Scale) -> PipelineConfig {
        match scale {
            Scale::Standard => PipelineConfig {
                exec: ExecutionRunnerConfig {
                    max_rows: 32_768,
                    min_rows: 64,
                    measure: RunnerConfig {
                        repetitions: 7,
                        warmups: 3,
                        ..RunnerConfig::default()
                    },
                    ..ExecutionRunnerConfig::default()
                },
                util: UtilRunnerConfig {
                    max_batch: 2048,
                    max_index_rows: 32_768,
                    measure: RunnerConfig {
                        repetitions: 3,
                        warmups: 1,
                        ..RunnerConfig::default()
                    },
                    ..UtilRunnerConfig::default()
                },
                txn: TxnRunnerConfig::default(),
                training: TrainingConfig {
                    candidates: vec![
                        Algorithm::Linear,
                        Algorithm::Huber,
                        Algorithm::RandomForest,
                        Algorithm::GradientBoosting,
                    ],
                    ..TrainingConfig::default()
                },
            },
            Scale::Quick => PipelineConfig {
                exec: ExecutionRunnerConfig {
                    max_rows: 1024,
                    min_rows: 64,
                    measure: RunnerConfig {
                        repetitions: 3,
                        warmups: 1,
                        ..RunnerConfig::default()
                    },
                    ..ExecutionRunnerConfig::default()
                },
                util: UtilRunnerConfig {
                    max_batch: 256,
                    max_index_rows: 2048,
                    build_threads: vec![1, 2, 4],
                    measure: RunnerConfig {
                        repetitions: 2,
                        warmups: 0,
                        ..RunnerConfig::default()
                    },
                    ..UtilRunnerConfig::default()
                },
                txn: TxnRunnerConfig::smoke(),
                training: TrainingConfig {
                    candidates: vec![Algorithm::Linear, Algorithm::RandomForest],
                    ..TrainingConfig::default()
                },
            },
        }
    }
}

/// A fully built model set plus its provenance.
pub struct BuiltModels {
    pub repo: TrainingRepo,
    pub models: OuModelSet,
    pub report: TrainingReport,
    pub runner_time: Duration,
}

/// Run every runner family and train OU-models.
pub fn build_ou_models(cfg: &PipelineConfig) -> DbResult<BuiltModels> {
    let started = Instant::now();
    let mut repo = run_execution_runners(&cfg.exec)?;
    repo.merge(run_util_runners(&cfg.util)?);
    repo.merge(run_txn_runner(&cfg.txn)?);
    let runner_time = started.elapsed();
    let (models, report) = train_all(&repo, &cfg.training)?;
    Ok(BuiltModels {
        repo,
        models,
        report,
        runner_time,
    })
}

/// Train the interference model from concurrent windows over the given
/// templates (paper §6.3's grid: thread counts × arrival rates), consuming
/// the already-trained OU-models. Returns the model plus how long the
/// concurrent runners took and the number of training rows.
pub fn build_interference_model(
    db: &Arc<Database>,
    templates: &[QueryTemplate],
    models: &OuModelSet,
    thread_counts: &[usize],
    window: Duration,
    seed: u64,
) -> DbResult<(InterferenceModel, Duration, usize)> {
    let started = Instant::now();
    let mut data = mb2_ml::Dataset::default();
    for (i, &threads) in thread_counts.iter().enumerate() {
        for (j, rate) in [None, Some(20.0)].into_iter().enumerate() {
            let outcome = run_concurrent_window(
                db,
                templates,
                models,
                &ConcurrentRunConfig {
                    threads,
                    duration: window,
                    rate_per_thread: rate,
                    seed: seed + (i * 10 + j) as u64,
                },
            )?;
            data.extend(outcome.interference_rows);
        }
    }
    let rows = data.len();
    let model = InterferenceModel::train(&data, seed)?;
    Ok((model, started.elapsed(), rows))
}

/// Bundle OU-models (and optionally interference) into `BehaviorModels`.
pub fn behavior_models(
    models: OuModelSet,
    interference: Option<InterferenceModel>,
) -> BehaviorModels {
    BehaviorModels::new(models, interference)
}

/// Measure a plan's actual latency with warm-up + trimmed mean.
pub fn measure_latency_us(db: &Database, plan: &mb2_engine::sql::PlanNode, reps: usize) -> f64 {
    let _ = db.execute_plan(plan, None);
    let mut lat = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        let _ = db.execute_plan(plan, None);
        lat.push(started.elapsed().as_nanos() as f64 / 1000.0);
    }
    mb2_common::stats::trimmed_mean(&lat, 0.2)
}
