//! The "oracle" self-driving planner used by the paper's end-to-end
//! demonstration (§8.7): it evaluates candidate actions by comparing MB2's
//! predictions of their cost (how long the action takes), impact (how much
//! it slows the workload while running), and benefit (how much faster the
//! workload becomes afterwards).

use std::sync::Arc;

use mb2_common::{DbResult, OuKind};
use mb2_engine::index::Index;
use mb2_engine::storage::SlotId;
use mb2_engine::{Database, Knobs};
use mb2_exec::ExecutionMode;

use crate::forecast::WorkloadForecast;
use crate::inference::{ActionForecast, BehaviorModels};

/// A candidate self-driving action.
#[derive(Debug, Clone)]
pub enum Action {
    /// Change the execution-mode behavior knob.
    SetExecutionMode(ExecutionMode),
    /// Build an index with the given parallelism.
    BuildIndex {
        sql: String,
        table: String,
        index: String,
        columns: Vec<String>,
        threads: usize,
    },
}

/// Predicted consequences of an action (paper §2.1's four questions).
#[derive(Debug, Clone)]
pub struct ActionEvaluation {
    /// Average query runtime (µs) for the interval without the action.
    pub baseline_us: f64,
    /// Average query runtime while the action deploys (impact).
    pub during_us: f64,
    /// Average query runtime after the action is deployed (benefit).
    pub after_us: f64,
    /// How long the action itself takes (µs); 0 for knob flips.
    pub action_duration_us: f64,
    /// Predicted CPU time (µs) the action consumes.
    pub action_cpu_us: f64,
}

impl ActionEvaluation {
    /// Relative runtime reduction the action is predicted to deliver.
    pub fn predicted_gain(&self) -> f64 {
        if self.baseline_us <= 0.0 {
            return 0.0;
        }
        (self.baseline_us - self.after_us) / self.baseline_us
    }
}

/// Evaluates actions against forecasts with behavior models.
pub struct OraclePlanner<'a> {
    pub db: &'a Database,
    pub models: &'a BehaviorModels,
}

impl<'a> OraclePlanner<'a> {
    pub fn new(db: &'a Database, models: &'a BehaviorModels) -> OraclePlanner<'a> {
        OraclePlanner { db, models }
    }

    /// Evaluate an action against one forecast interval.
    pub fn evaluate(
        &self,
        action: &Action,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
    ) -> DbResult<ActionEvaluation> {
        let baseline = self
            .models
            .predict_interval(forecast, interval, knobs, None);
        let baseline_us = baseline.avg_query_runtime_us();
        match action {
            Action::SetExecutionMode(mode) => {
                // Knob flips change per-query cost directly; compare the
                // isolated predictions so interference-model noise does not
                // swamp the knob's (often modest) effect.
                let new_knobs = Knobs {
                    execution_mode: *mode,
                    ..*knobs
                };
                let after = self
                    .models
                    .predict_interval(forecast, interval, &new_knobs, None);
                Ok(ActionEvaluation {
                    baseline_us: baseline.avg_isolated_runtime_us(),
                    during_us: baseline_us, // knob flips deploy instantly
                    after_us: after.avg_isolated_runtime_us(),
                    action_duration_us: 0.0,
                    action_cpu_us: 0.0,
                })
            }
            Action::BuildIndex {
                sql,
                table,
                index,
                columns,
                threads,
            } => {
                // Cost + impact: predict the interval with the build running.
                let plan = self.db.prepare(sql)?;
                let action_fc = ActionForecast {
                    plan: plan.clone(),
                    threads: *threads,
                };
                let during =
                    self.models
                        .predict_interval(forecast, interval, knobs, Some(&action_fc));
                let (_, action_adjusted) = during.action_us.expect("action predicted");
                let action_pred = self.models.predict_plan(&plan, knobs);
                let action_cpu_us = action_pred.total_for(OuKind::IndexBuild).cpu_us();

                // Benefit: re-plan the forecast's queries with a hypothetical
                // (metadata-only) index and predict the new plans.
                let after_us = self.with_hypothetical_index(table, index, columns, || {
                    let replanned: DbResult<Vec<_>> = forecast
                        .templates
                        .iter()
                        .map(|t| self.db.prepare(&t.sql))
                        .collect();
                    let replanned = replanned?;
                    let mut fc = forecast.clone();
                    for (t, plan) in fc.templates.iter_mut().zip(replanned) {
                        t.plan = plan;
                    }
                    Ok(self
                        .models
                        .predict_interval(&fc, interval, knobs, None)
                        .avg_query_runtime_us())
                })?;
                Ok(ActionEvaluation {
                    baseline_us,
                    during_us: during.avg_query_runtime_us(),
                    after_us,
                    action_duration_us: action_adjusted,
                    action_cpu_us,
                })
            }
        }
    }

    /// Register an empty index (metadata only) so the query planner chooses
    /// index plans, run `f`, then remove it. This is how the planner reasons
    /// about indexes that do not exist yet.
    fn with_hypothetical_index<T>(
        &self,
        table: &str,
        index: &str,
        columns: &[String],
        f: impl FnOnce() -> DbResult<T>,
    ) -> DbResult<T> {
        let entry = self.db.catalog().get(table)?;
        let schema = entry.table.schema();
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<DbResult<_>>()?;
        let shadow: Arc<Index<SlotId>> = Arc::new(Index::new(index, positions));
        entry.add_index(shadow)?;
        let result = f();
        let _ = entry.drop_index(index);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{OuSample, TrainingRepo};
    use crate::forecast::QueryTemplate;
    use crate::training::{train_all, TrainingConfig};
    use crate::translate::OuTranslator;
    use mb2_common::metrics::idx;
    use mb2_common::Metrics;
    use mb2_ml::Algorithm;

    /// Models where index scans are predicted much cheaper than sequential
    /// scans, so index actions show a benefit.
    fn cost_models(db: &Database) -> BehaviorModels {
        let mut repo = TrainingRepo::new();
        let translator = OuTranslator::default();
        // Synthesize per-OU linear costs with SeqScan 10× IdxScan.
        let plans = [
            db.prepare("SELECT * FROM big WHERE pk = 1").unwrap(),
            db.prepare("SELECT * FROM big WHERE grp = 1").unwrap(),
            db.prepare("CREATE INDEX hyp ON big (grp) WITH (THREADS = 4)")
                .unwrap(),
        ];
        for plan in &plans {
            for inst in translator.translate_plan(plan, &db.knobs()) {
                for k in 1..=15 {
                    let mut f = inst.features.clone();
                    f[0] = (k * 50) as f64;
                    // Synthetic costs matching each OU's real complexity
                    // (index builds sort, so O(n log n)).
                    let cost = match inst.ou {
                        OuKind::SeqScan => 10.0 * f[0],
                        OuKind::IdxScan => 1.0 * f[0],
                        OuKind::IndexBuild => 5.0 * f[0] * f[0].log2(),
                        _ => 2.0 * f[0],
                    };
                    let mut labels = Metrics::ZERO;
                    labels[idx::ELAPSED_US] = cost;
                    labels[idx::CPU_US] = cost;
                    repo.add(OuSample {
                        ou: inst.ou,
                        features: f,
                        labels,
                    });
                }
            }
        }
        let (set, _) = train_all(
            &repo,
            &TrainingConfig {
                candidates: vec![Algorithm::Linear],
                ..TrainingConfig::default()
            },
        )
        .unwrap();
        BehaviorModels::new(set, None)
    }

    fn setup() -> Database {
        let db = Database::open();
        db.execute("CREATE TABLE big (pk INT, grp INT, v FLOAT)")
            .unwrap();
        for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
            let vals: Vec<String> = chunk
                .iter()
                .map(|i| format!("({i}, {}, 0.5)", i % 100))
                .collect();
            db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
                .unwrap();
        }
        db.execute("CREATE INDEX big_pk ON big (pk)").unwrap();
        db.execute("ANALYZE big").unwrap();
        db
    }

    #[test]
    fn index_action_shows_benefit_and_cost() {
        let db = setup();
        let models = cost_models(&db);
        let planner = OraclePlanner::new(&db, &models);
        let sql = "SELECT * FROM big WHERE grp = 7";
        let template = QueryTemplate {
            name: "grp_lookup".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![20.0]);
        let action = Action::BuildIndex {
            sql: "CREATE INDEX big_grp ON big (grp) WITH (THREADS = 4)".into(),
            table: "big".into(),
            index: "big_grp".into(),
            columns: vec!["grp".into()],
            threads: 4,
        };
        let eval = planner
            .evaluate(&action, &forecast, 0, &db.knobs())
            .unwrap();
        assert!(eval.after_us < eval.baseline_us, "{eval:?}");
        assert!(eval.predicted_gain() > 0.5, "{eval:?}");
        assert!(eval.action_duration_us > 0.0);
        // The hypothetical index must be gone afterwards.
        assert!(db
            .catalog()
            .get("big")
            .unwrap()
            .index_named("big_grp")
            .is_none());
    }

    #[test]
    fn knob_action_evaluates_instantly() {
        let db = setup();
        let models = cost_models(&db);
        let planner = OraclePlanner::new(&db, &models);
        let sql = "SELECT * FROM big WHERE grp = 7";
        let template = QueryTemplate {
            name: "q".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![5.0]);
        let eval = planner
            .evaluate(
                &Action::SetExecutionMode(ExecutionMode::Interpret),
                &forecast,
                0,
                &db.knobs(),
            )
            .unwrap();
        assert_eq!(eval.action_duration_us, 0.0);
        assert!(eval.baseline_us > 0.0);
    }
}
