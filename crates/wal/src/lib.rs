//! Write-ahead logging.
//!
//! Implements the two WAL operating units of paper Table 1:
//! * **Log Record Serialize** (batch OU) — encode logical log records into
//!   fixed-size log buffers.
//! * **Log Record Flush** (batch OU) — write filled buffers to stable
//!   storage; runs either synchronously (runners) or on a background flusher
//!   thread with a configurable flush interval (a behavior knob).

pub mod buffer;
pub mod manager;
pub mod reader;
pub mod record;

pub use buffer::{LogBuffer, LOG_BUFFER_CAPACITY};
pub use manager::{LogManager, LogManagerConfig, WalStats};
pub use reader::{read_log, read_log_with, scan_records, LogCorruption, LogReadReport};
pub use record::{LogRecord, LoggedColumn, MAX_RECORD_LEN, RECORD_HEADER_LEN};
