//! End-to-end executor tests: SQL → plan → execution over MVCC storage.

use std::sync::Arc;

use parking_lot::Mutex;

use mb2_catalog::Catalog;
use mb2_common::{Column, Metrics, OuKind, Schema, Value};
use mb2_exec::{execute, ExecContext, ExecutionMode, OuRecorder};
use mb2_sql::{parse, Planner, Statement};
use mb2_txn::TxnManager;

struct Harness {
    catalog: Catalog,
    txns: Arc<TxnManager>,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            catalog: Catalog::new(),
            txns: TxnManager::new(None),
        }
    }

    fn ddl(&self, sql: &str) {
        match parse(sql).unwrap() {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| {
                            let mut col = Column::new(c.name, c.ty);
                            if let Some(len) = c.varchar_len {
                                col = col.with_varchar_len(len);
                            }
                            col
                        })
                        .collect(),
                );
                self.catalog.create_table(&name, schema).unwrap();
            }
            other => panic!("not ddl: {other:?}"),
        }
    }

    fn run(&self, sql: &str) -> mb2_exec::QueryResult {
        self.run_mode(sql, ExecutionMode::Compiled)
    }

    fn run_mode(&self, sql: &str, mode: ExecutionMode) -> mb2_exec::QueryResult {
        let stmt = parse(sql).unwrap();
        let plan = Planner::new(&self.catalog).plan(&stmt).unwrap();
        let mut txn = self.txns.begin();
        let result = {
            let mut ctx = ExecContext::new(&self.catalog, &mut txn).with_mode(mode);
            execute(&plan, &mut ctx).unwrap()
        };
        txn.commit().unwrap();
        result
    }

    fn analyze(&self, table: &str) {
        let entry = self.catalog.get(table).unwrap();
        entry.analyze(self.txns.now());
    }
}

fn setup_orders(h: &Harness, n: i64) {
    h.ddl("CREATE TABLE orders (o_id INT, o_cust INT, o_total FLOAT)");
    h.ddl("CREATE TABLE customer (c_id INT, c_name VARCHAR(16))");
    for i in 0..n {
        h.run(&format!(
            "INSERT INTO orders VALUES ({i}, {}, {}.5)",
            i % 10,
            i * 2
        ));
    }
    for i in 0..10 {
        h.run(&format!("INSERT INTO customer VALUES ({i}, 'cust{i}')"));
    }
    h.analyze("orders");
    h.analyze("customer");
}

#[test]
fn insert_and_select_star() {
    let h = Harness::new();
    setup_orders(&h, 20);
    let r = h.run("SELECT * FROM orders");
    assert_eq!(r.rows.len(), 20);
    assert_eq!(r.rows[0].len(), 3);
}

#[test]
fn filter_pushdown_works() {
    let h = Harness::new();
    setup_orders(&h, 100);
    let r = h.run("SELECT o_id FROM orders WHERE o_cust = 3");
    assert_eq!(r.rows.len(), 10);
    assert!(r.rows.iter().all(|row| row[0].as_i64().unwrap() % 10 == 3));
}

#[test]
fn join_produces_matches() {
    let h = Harness::new();
    setup_orders(&h, 50);
    let r = h.run(
        "SELECT o.o_id, c.c_name FROM orders o, customer c WHERE o.o_cust = c.c_id AND o.o_id < 5",
    );
    assert_eq!(r.rows.len(), 5);
    for row in &r.rows {
        let oid = row[0].as_i64().unwrap();
        assert_eq!(row[1].as_str().unwrap(), format!("cust{}", oid % 10));
    }
}

#[test]
fn aggregation_with_group_by() {
    let h = Harness::new();
    setup_orders(&h, 100);
    let r =
        h.run("SELECT o_cust, COUNT(*), SUM(o_total) FROM orders GROUP BY o_cust ORDER BY o_cust");
    assert_eq!(r.rows.len(), 10);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Int(10));
    // Customers 0..9, orders i with o_total = 2i + 0.5, i ≡ cust (mod 10).
    let expected: f64 = (0..10).map(|k| (k * 10) as f64 * 2.0 + 0.5).sum();
    assert!((r.rows[0][2].as_f64().unwrap() - expected).abs() < 1e-9);
}

#[test]
fn scalar_aggregate_on_empty_input() {
    let h = Harness::new();
    h.ddl("CREATE TABLE empty_t (a INT)");
    let r = h.run("SELECT COUNT(*), SUM(a), MIN(a) FROM empty_t");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert!(r.rows[0][1].is_null());
    assert!(r.rows[0][2].is_null());
}

#[test]
fn order_by_desc_and_limit() {
    let h = Harness::new();
    setup_orders(&h, 30);
    let r = h.run("SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 3");
    let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![29, 28, 27]);
}

#[test]
fn update_changes_values_and_respects_filter() {
    let h = Harness::new();
    setup_orders(&h, 10);
    let r = h.run("UPDATE orders SET o_total = 0.0 WHERE o_id < 4");
    assert_eq!(r.rows_affected, 4);
    let r = h.run("SELECT COUNT(*) FROM orders WHERE o_total = 0.0");
    assert_eq!(r.rows[0][0], Value::Int(4));
}

#[test]
fn delete_removes_rows() {
    let h = Harness::new();
    setup_orders(&h, 10);
    let r = h.run("DELETE FROM orders WHERE o_cust = 0");
    assert_eq!(r.rows_affected, 1);
    let r = h.run("SELECT COUNT(*) FROM orders");
    assert_eq!(r.rows[0][0], Value::Int(9));
}

#[test]
fn create_index_then_point_lookup_uses_it() {
    let h = Harness::new();
    setup_orders(&h, 200);
    let r = h.run("CREATE INDEX o_cust_idx ON orders (o_cust) WITH (THREADS = 2)");
    assert_eq!(r.rows_affected, 200);
    h.analyze("orders");
    // Planner should now pick the index.
    let stmt = parse("SELECT * FROM orders WHERE o_cust = 7").unwrap();
    let plan = Planner::new(&h.catalog).plan(&stmt).unwrap();
    assert!(plan.explain().contains("IndexScan"), "{}", plan.explain());
    let r = h.run("SELECT * FROM orders WHERE o_cust = 7");
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn index_maintained_by_dml() {
    let h = Harness::new();
    setup_orders(&h, 50);
    h.run("CREATE INDEX o_cust_idx ON orders (o_cust)");
    h.analyze("orders");
    h.run("INSERT INTO orders VALUES (999, 7, 1.0)");
    h.run("UPDATE orders SET o_cust = 8 WHERE o_id = 999");
    let r = h.run("SELECT o_id FROM orders WHERE o_cust = 8");
    assert!(r.rows.iter().any(|row| row[0] == Value::Int(999)));
    h.run("DELETE FROM orders WHERE o_id = 999");
    let r = h.run("SELECT o_id FROM orders WHERE o_cust = 8");
    assert!(!r.rows.iter().any(|row| row[0] == Value::Int(999)));
}

#[test]
fn modes_agree_on_results() {
    let h = Harness::new();
    setup_orders(&h, 60);
    let sql = "SELECT o_cust, COUNT(*), AVG(o_total) FROM orders \
               WHERE o_id >= 10 GROUP BY o_cust ORDER BY o_cust";
    let a = h.run_mode(sql, ExecutionMode::Interpret);
    let b = h.run_mode(sql, ExecutionMode::Compiled);
    assert_eq!(a.rows, b.rows);
}

#[derive(Default)]
struct CollectingRecorder {
    records: Mutex<Vec<(u32, OuKind, Metrics)>>,
}

impl OuRecorder for CollectingRecorder {
    fn record(&self, node_id: u32, ou: OuKind, metrics: Metrics) {
        self.records.lock().push((node_id, ou, metrics));
    }
}

#[test]
fn recorder_sees_expected_ou_sequence() {
    let h = Harness::new();
    setup_orders(&h, 40);
    let stmt = parse(
        "SELECT o.o_id, c.c_name FROM orders o, customer c \
         WHERE o.o_cust = c.c_id ORDER BY o.o_id",
    )
    .unwrap();
    let plan = Planner::new(&h.catalog).plan(&stmt).unwrap();
    let recorder = CollectingRecorder::default();
    let mut txn = h.txns.begin();
    {
        let mut ctx = ExecContext::new(&h.catalog, &mut txn).with_recorder(&recorder);
        execute(&plan, &mut ctx).unwrap();
    }
    txn.commit().unwrap();
    let records = recorder.records.lock();
    let kinds: Vec<OuKind> = records.iter().map(|(_, k, _)| *k).collect();
    assert!(kinds.contains(&OuKind::SeqScan));
    assert!(kinds.contains(&OuKind::JoinHashBuild));
    assert!(kinds.contains(&OuKind::JoinHashProbe));
    assert!(kinds.contains(&OuKind::SortBuild));
    assert!(kinds.contains(&OuKind::SortIter));
    assert!(kinds.contains(&OuKind::OutputResult));
    // Build OU's tuple accounting should match the customer table size.
    let build = records
        .iter()
        .find(|(_, k, _)| *k == OuKind::JoinHashBuild)
        .unwrap();
    assert!(build.2.memory_bytes() > 0.0);
    // All metrics finite.
    assert!(records.iter().all(|(_, _, m)| !m.has_non_finite()));
}

#[test]
fn snapshot_isolation_across_queries() {
    let h = Harness::new();
    setup_orders(&h, 5);
    // Reader opens before a concurrent write commits.
    let reader_txn = h.txns.begin();
    h.run("UPDATE orders SET o_total = 123.0 WHERE o_id = 0");
    // Reader still sees the old value through a manual scan.
    let entry = h.catalog.get("orders").unwrap();
    let mut seen = None;
    entry
        .table
        .scan_visible(reader_txn.read_ts(), reader_txn.id(), |_, t| {
            if t[0] == Value::Int(0) {
                seen = Some(t[2].clone());
            }
            true
        });
    assert_ne!(seen.unwrap(), Value::Float(123.0));
}

#[test]
fn nested_loop_join_fallback() {
    let h = Harness::new();
    setup_orders(&h, 10);
    // Non-equi join predicate forces the nested-loop path.
    let r = h.run(
        "SELECT o.o_id, c.c_id FROM orders o, customer c WHERE o.o_cust > c.c_id AND o.o_id = 5",
    );
    // o_id 5 -> o_cust 5, matches customers 0..4.
    assert_eq!(r.rows.len(), 5);
}

#[test]
fn division_by_zero_surfaces_as_error() {
    let h = Harness::new();
    setup_orders(&h, 3);
    let stmt = parse("SELECT o_id / 0 FROM orders").unwrap();
    let plan = Planner::new(&h.catalog).plan(&stmt).unwrap();
    let mut txn = h.txns.begin();
    let mut ctx = ExecContext::new(&h.catalog, &mut txn);
    assert!(execute(&plan, &mut ctx).is_err());
}

#[test]
fn projection_expressions() {
    let h = Harness::new();
    setup_orders(&h, 4);
    let r = h.run("SELECT o_id * 10 + 1 FROM orders ORDER BY o_id * 10 + 1");
    let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![1, 11, 21, 31]);
}

#[test]
fn select_distinct_deduplicates() {
    let h = Harness::new();
    h.ddl("CREATE TABLE d (a INT, b INT)");
    for i in 0..30 {
        h.run(&format!("INSERT INTO d VALUES ({}, {})", i % 3, i % 2));
    }
    let r = h.run("SELECT DISTINCT a FROM d ORDER BY a");
    let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![0, 1, 2]);
    let r = h.run("SELECT DISTINCT a, b FROM d");
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn having_filters_groups() {
    let h = Harness::new();
    setup_orders(&h, 100);
    // Each customer has 10 orders; HAVING keeps none at > 10 and all at >= 10.
    let r = h.run("SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust HAVING COUNT(*) > 10");
    assert!(r.rows.is_empty());
    let r = h.run(
        "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust HAVING COUNT(*) >= 10 ORDER BY o_cust",
    );
    assert_eq!(r.rows.len(), 10);
}

#[test]
fn having_can_reference_unselected_aggregate() {
    let h = Harness::new();
    setup_orders(&h, 60);
    let r = h.run(
        "SELECT o_cust FROM orders GROUP BY o_cust HAVING SUM(o_total) > 100.0 ORDER BY o_cust",
    );
    // Groups exist and the filter executes; all rows have one column.
    assert!(r.rows.iter().all(|row| row.len() == 1));
}
