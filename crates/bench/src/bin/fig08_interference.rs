//! Regenerates one paper result; see `mb2_bench::experiments::fig08_interference`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig08_interference::run(scale);
    mb2_bench::report::emit("fig08_interference", &report);
}
