//! Baseline models the paper compares MB2 against (§8.3 / §9).
//!
//! * [`qppnet`] — a QPPNet-style \[40\] tree-structured neural network: one
//!   neural unit per plan-operator type; each unit consumes its operator's
//!   features plus its children's output vectors and emits a latency plus a
//!   hidden "data vector" for its parent. Trained end-to-end per plan tree
//!   on measured query latency. The defining property Fig. 7 contrasts
//!   with MB2 — a monolithic plan-level model whose training data must
//!   cover the test plans' operator compositions — is preserved.
//! * [`monolithic`] — an extra ablation beyond the paper: one flat
//!   regressor over bag-of-operators plan features, the "single monolithic
//!   model" §2.2 argues against.

pub mod monolithic;
pub mod qppnet;

pub use monolithic::MonolithicModel;
pub use qppnet::QppNet;
