//! TATP \[47\]: four tables, seven transactions modeling a cellphone
//! registration service. Read-heavy (the standard mix is 80% reads).

use mb2_common::{DbResult, Prng};
use mb2_engine::Database;

use crate::{insert_batch, Workload};

/// TATP configuration.
#[derive(Debug, Clone)]
pub struct Tatp {
    pub subscribers: usize,
}

impl Default for Tatp {
    fn default() -> Self {
        Tatp {
            subscribers: 10_000,
        }
    }
}

impl Tatp {
    pub fn small() -> Tatp {
        Tatp { subscribers: 1000 }
    }

    /// TATP uses non-uniform subscriber ids.
    fn pick_sub(&self, rng: &mut Prng) -> u64 {
        rng.nurand(65_535, 0, self.subscribers as u64 - 1, 7911)
    }
}

impl Workload for Tatp {
    fn name(&self) -> &'static str {
        "tatp"
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        db.execute(
            "CREATE TABLE tatp_subscriber (s_id INT, sub_nbr VARCHAR(15), \
             bit_1 INT, hex_1 INT, byte2_1 INT, vlr_location INT)",
        )?;
        db.execute(
            "CREATE TABLE tatp_access_info (s_id INT, ai_type INT, data1 INT, \
             data2 INT, data3 VARCHAR(3), data4 VARCHAR(5))",
        )?;
        db.execute(
            "CREATE TABLE tatp_special_facility (s_id INT, sf_type INT, \
             is_active INT, error_cntrl INT, data_a INT, data_b VARCHAR(5))",
        )?;
        db.execute(
            "CREATE TABLE tatp_call_forwarding (s_id INT, sf_type INT, \
             start_time INT, end_time INT, numberx VARCHAR(15))",
        )?;
        let n = self.subscribers;
        insert_batch(db, "tatp_subscriber", n, |i| {
            format!(
                "({i}, '{:015}', {}, {}, {}, {})",
                i,
                i % 2,
                i % 16,
                i % 256,
                i * 31 % 65536
            )
        })?;
        // 1-4 access-info rows per subscriber (deterministic 2.5 avg).
        insert_batch(db, "tatp_access_info", n * 2, |k| {
            let s = k / 2;
            let ai = 1 + (k % 2) * 2;
            format!("({s}, {ai}, {}, {}, 'abc', 'abcde')", k % 100, k % 50)
        })?;
        insert_batch(db, "tatp_special_facility", n * 2, |k| {
            let s = k / 2;
            let sf = 1 + (k % 2) * 2;
            format!(
                "({s}, {sf}, {}, 0, {}, 'fghij')",
                (k % 10 != 0) as i32,
                k % 256
            )
        })?;
        // Call forwarding for ~half the special facilities.
        insert_batch(db, "tatp_call_forwarding", n, |k| {
            let s = k;
            let sf = 1 + (k % 2) * 2;
            let start = (k % 3) * 8;
            format!("({s}, {sf}, {start}, {}, '{:015}')", start + 8, k)
        })?;
        db.execute("CREATE INDEX tatp_sub_pk ON tatp_subscriber (s_id)")?;
        db.execute("CREATE INDEX tatp_ai_pk ON tatp_access_info (s_id)")?;
        db.execute("CREATE INDEX tatp_sf_pk ON tatp_special_facility (s_id)")?;
        db.execute("CREATE INDEX tatp_cf_pk ON tatp_call_forwarding (s_id)")?;
        db.analyze_all();
        Ok(())
    }

    fn template_names(&self) -> Vec<&'static str> {
        vec![
            "get_subscriber_data",
            "get_new_destination",
            "get_access_data",
            "update_subscriber_data",
            "update_location",
            "insert_call_forwarding",
            "delete_call_forwarding",
        ]
    }

    fn sample_transaction(&self, template: &str, rng: &mut Prng) -> Vec<String> {
        let s = self.pick_sub(rng);
        let sf = 1 + rng.range_u64(0, 2) * 2;
        let ai = 1 + rng.range_u64(0, 2) * 2;
        let start = rng.range_u64(0, 3) * 8;
        match template {
            "get_subscriber_data" => {
                vec![format!("SELECT * FROM tatp_subscriber WHERE s_id = {s}")]
            }
            "get_new_destination" => vec![format!(
                "SELECT cf.numberx FROM tatp_special_facility sf, tatp_call_forwarding cf \
                 WHERE sf.s_id = {s} AND sf.sf_type = {sf} AND sf.is_active = 1 \
                 AND cf.s_id = sf.s_id AND cf.sf_type = sf.sf_type \
                 AND cf.start_time <= {start} AND cf.end_time > {start}"
            )],
            "get_access_data" => vec![format!(
                "SELECT data1, data2, data3, data4 FROM tatp_access_info \
                 WHERE s_id = {s} AND ai_type = {ai}"
            )],
            "update_subscriber_data" => vec![
                format!("UPDATE tatp_subscriber SET bit_1 = {} WHERE s_id = {s}", s % 2),
                format!(
                    "UPDATE tatp_special_facility SET data_a = {} WHERE s_id = {s} AND sf_type = {sf}",
                    s % 256
                ),
            ],
            "update_location" => vec![format!(
                "UPDATE tatp_subscriber SET vlr_location = {} WHERE s_id = {s}",
                rng.range_u64(0, 1 << 16)
            )],
            "insert_call_forwarding" => vec![
                format!("SELECT s_id FROM tatp_subscriber WHERE s_id = {s}"),
                format!(
                    "INSERT INTO tatp_call_forwarding VALUES ({s}, {sf}, {start}, {}, '{:015}')",
                    start + 8,
                    s
                ),
            ],
            "delete_call_forwarding" => vec![format!(
                "DELETE FROM tatp_call_forwarding \
                 WHERE s_id = {s} AND sf_type = {sf} AND start_time = {start}"
            )],
            other => panic!("unknown tatp template '{other}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_runs_all_templates() {
        let t = Tatp { subscribers: 300 };
        let db = Database::open();
        t.load(&db).unwrap();
        let mut rng = Prng::new(5);
        for template in t.template_names() {
            let stmts = t.sample_transaction(template, &mut rng);
            crate::execute_transaction(&db, &stmts).unwrap();
        }
    }

    #[test]
    fn get_new_destination_joins_on_index() {
        let t = Tatp { subscribers: 200 };
        let db = Database::open();
        t.load(&db).unwrap();
        let mut rng = Prng::new(6);
        let sql = &t.sample_transaction("get_new_destination", &mut rng)[0];
        let r = db.execute(sql).unwrap();
        // May or may not match rows, but must execute without error.
        assert!(r.rows.len() <= 2);
    }

    #[test]
    fn subscriber_ids_in_range() {
        let t = Tatp { subscribers: 500 };
        let mut rng = Prng::new(7);
        for _ in 0..1000 {
            assert!(t.pick_sub(&mut rng) < 500);
        }
    }
}
