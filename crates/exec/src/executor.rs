//! Plan execution: dispatch, node numbering, and result assembly.

use mb2_common::types::Tuple;
use mb2_common::DbResult;
use mb2_sql::PlanNode;

use crate::batch::{self, Batch};
use crate::context::ExecContext;
use crate::ops;

/// Result of executing one plan.
#[derive(Debug, Default)]
pub struct QueryResult {
    /// Rows returned to the client (SELECT).
    pub rows: Vec<Tuple>,
    /// Rows written (INSERT/UPDATE/DELETE), or index entries built.
    pub rows_affected: usize,
}

/// Number of nodes in the subtree rooted at `node` (including itself).
/// Node ids are assigned in pre-order: a node's first child is `id + 1`, its
/// second child is `id + 1 + subtree_size(first_child)`. The OU translator in
/// `mb2-core` uses the identical numbering so plan-derived features join
/// with execution-measured labels.
pub fn subtree_size(node: &PlanNode) -> u32 {
    1 + node.children().iter().map(|c| subtree_size(c)).sum::<u32>()
}

/// Execute a plan to completion inside the context's transaction,
/// materializing all result rows.
pub fn execute(plan: &PlanNode, ctx: &mut ExecContext<'_>) -> DbResult<QueryResult> {
    let mut rows: Vec<Tuple> = Vec::new();
    let n = execute_batched(plan, ctx, &mut |b: Batch| {
        rows.reserve(b.rows.len());
        for row in b.rows {
            rows.push(batch::into_owned(row));
        }
        Ok(())
    })?;
    Ok(QueryResult {
        rows_affected: n,
        rows,
    })
}

/// Execute a plan, streaming result batches to `on_batch` instead of
/// materializing them. DML and DDL-action plans run to completion without
/// invoking the callback. Returns the number of result rows streamed, or
/// the rows-affected count for write plans.
pub fn execute_batched(
    plan: &PlanNode,
    ctx: &mut ExecContext<'_>,
    on_batch: &mut dyn FnMut(Batch) -> DbResult<()>,
) -> DbResult<usize> {
    match plan {
        PlanNode::Insert { table, rows, .. } => ops::insert(table, rows, ctx, 0),
        PlanNode::Update {
            table,
            scan,
            assignments,
            ..
        } => ops::update(table, scan, assignments, ctx, 0),
        PlanNode::Delete { table, scan, .. } => ops::delete(table, scan, ctx, 0),
        PlanNode::CreateIndex {
            table,
            index,
            columns,
            threads,
            ..
        } => ops::create_index(table, index, columns, *threads, ctx, 0),
        _ => batch::run_query(plan, ctx, on_batch),
    }
}
