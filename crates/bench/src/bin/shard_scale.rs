//! Sharded-commit throughput; see `mb2_bench::experiments::shard_scale`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::shard_scale::run(scale);
    mb2_bench::report::emit("shard_scale", &report);
}
