//! The `Database` facade.

use std::sync::Arc;

use parking_lot::RwLock;

use mb2_catalog::Catalog;
use mb2_common::{Column, DbError, DbResult, Schema};
use mb2_exec::{execute, ExecContext, ExecutionMode, OuRecorder, QueryResult};
use mb2_sql::{parse, PlanNode, Planner, Statement};
use mb2_txn::{GarbageCollector, Transaction, TxnManager};
use mb2_wal::{LogManager, LogManagerConfig, LogRecord, LoggedColumn};

use crate::config::{DatabaseConfig, Knobs};
use crate::session::Session;

/// An embedded in-memory DBMS instance.
pub struct Database {
    catalog: Catalog,
    txns: Arc<TxnManager>,
    gc: Arc<GarbageCollector>,
    wal: Option<Arc<LogManager>>,
    knobs: RwLock<Knobs>,
}

impl Database {
    pub fn new(config: DatabaseConfig) -> DbResult<Database> {
        let wal = if config.wal_enabled {
            Some(Arc::new(LogManager::new(LogManagerConfig {
                path: config.wal_path.clone(),
                flush_interval: config.knobs.wal_flush_interval,
                background: config.wal_background,
                fsync: config.wal_fsync,
                sync_commit: config.wal_sync_commit,
                max_flush_retries: config.wal_flush_retries,
                retry_backoff: config.wal_retry_backoff,
                faults: config.wal_faults.clone(),
            })?))
        } else {
            None
        };
        let txns = TxnManager::new(wal.clone());
        let gc = GarbageCollector::new(txns.clone());
        if let Some(interval) = config.gc_interval {
            gc.start_background(interval);
        }
        Ok(Database {
            catalog: Catalog::new(),
            txns,
            gc,
            wal,
            knobs: RwLock::new(config.knobs),
        })
    }

    /// Open with default configuration.
    pub fn open() -> Database {
        Database::new(DatabaseConfig::default()).expect("default config cannot fail")
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    pub fn gc(&self) -> &Arc<GarbageCollector> {
        &self.gc
    }

    pub fn wal(&self) -> Option<&Arc<LogManager>> {
        self.wal.as_ref()
    }

    pub fn knobs(&self) -> Knobs {
        *self.knobs.read()
    }

    pub fn set_execution_mode(&self, mode: ExecutionMode) {
        self.knobs.write().execution_mode = mode;
    }

    pub fn set_hw(&self, hw: mb2_common::HardwareProfile) {
        self.knobs.write().hw = hw;
    }

    pub fn set_jht_sleep_every(&self, n: usize) {
        self.knobs.write().jht_sleep_every = n;
    }

    /// Whether the WAL has latched into the read-only (poisoned) state.
    pub fn is_read_only(&self) -> bool {
        self.wal.as_ref().is_some_and(|w| w.is_poisoned())
    }

    /// Fail with [`DbError::WalUnavailable`] if durable writes are
    /// impossible. DDL checks this before mutating the catalog so schema
    /// changes never outrun what the log can persist.
    fn check_wal_writable(&self) -> DbResult<()> {
        match &self.wal {
            Some(wal) => wal.check_writable(),
            None => Ok(()),
        }
    }

    /// Log a DDL record with the same durability as a committed transaction:
    /// under `wal_sync_commit` the record is flushed before the DDL is
    /// acknowledged.
    fn log_ddl(&self, record: &LogRecord) -> DbResult<()> {
        if let Some(wal) = &self.wal {
            wal.append(record)?;
            if wal.config().sync_commit {
                wal.flush_now()?;
            }
        }
        Ok(())
    }

    /// Begin an explicit transaction.
    pub fn begin(&self) -> Transaction {
        self.txns.begin()
    }

    /// Open a session (supports BEGIN/COMMIT/ROLLBACK statements).
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Parse + plan a statement (for prepared/cached execution, matching the
    /// paper's cached-query-plan assumption in §3).
    pub fn prepare(&self, sql: &str) -> DbResult<PlanNode> {
        let stmt = parse(sql)?;
        Planner::new(&self.catalog).plan(&stmt)
    }

    /// Execute one statement in autocommit mode.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        self.execute_recorded(sql, None)
    }

    /// Execute one statement in autocommit mode with an OU recorder.
    pub fn execute_recorded(
        &self,
        sql: &str,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        if let Some(result) = self.try_handle_ddl(&stmt)? {
            return Ok(result);
        }
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Plan(
                "transaction control requires a session (Database::session)".into(),
            )),
            other => {
                let plan = Planner::new(&self.catalog).plan(&other)?;
                let mut txn = self.txns.begin();
                let result = self.execute_plan_in(&plan, &mut txn, recorder);
                match result {
                    Ok(r) => {
                        txn.commit()?;
                        Ok(r)
                    }
                    Err(e) => {
                        txn.abort();
                        Err(e)
                    }
                }
            }
        }
    }

    /// Execute a pre-planned statement in autocommit mode.
    pub fn execute_plan(
        &self,
        plan: &PlanNode,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let mut txn = self.txns.begin();
        let result = self.execute_plan_in(plan, &mut txn, recorder);
        match result {
            Ok(r) => {
                txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }

    /// Execute a plan inside an existing transaction.
    pub fn execute_plan_in(
        &self,
        plan: &PlanNode,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let knobs = self.knobs();
        let mut ctx = ExecContext {
            catalog: &self.catalog,
            txn,
            mode: knobs.execution_mode,
            recorder,
            hw: knobs.hw,
            jht_sleep_every: knobs.jht_sleep_every,
        };
        // Index builds must be loggable before we spend the work building
        // them; a poisoned WAL rejects the DDL up front.
        if matches!(plan, mb2_sql::PlanNode::CreateIndex { .. }) {
            self.check_wal_writable()?;
        }
        let result = execute(plan, &mut ctx)?;
        // DDL-through-the-executor (index builds) is logged for recovery.
        if let mb2_sql::PlanNode::CreateIndex {
            table,
            index,
            columns,
            ..
        } = plan
        {
            if let Ok(entry) = self.catalog.get(table) {
                self.log_ddl(&LogRecord::CreateIndex {
                    table_id: entry.table.id.0,
                    name: index.clone(),
                    columns: columns.iter().map(|&c| c as u32).collect(),
                })?;
            }
        }
        Ok(result)
    }

    /// Execute a statement inside an existing transaction (used by sessions
    /// and by the concurrent runners).
    pub fn execute_in(
        &self,
        sql: &str,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        if matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::DropIndex { .. }
                | Statement::Analyze { .. }
        ) {
            return Err(DbError::Plan("DDL is autocommit-only".into()));
        }
        let plan = Planner::new(&self.catalog).plan(&stmt)?;
        self.execute_plan_in(&plan, txn, recorder)
    }

    /// Handle statements that bypass the planner. Returns `Some` when the
    /// statement was DDL handled here.
    fn try_handle_ddl(&self, stmt: &Statement) -> DbResult<Option<QueryResult>> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                self.check_wal_writable()?;
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            let mut col = Column::new(c.name.clone(), c.ty);
                            if let Some(len) = c.varchar_len {
                                col = col.with_varchar_len(len);
                            }
                            col
                        })
                        .collect(),
                );
                let entry = self.catalog.create_table(name, schema)?;
                self.gc.register(entry.table.clone());
                self.log_ddl(&LogRecord::CreateTable {
                    table_id: entry.table.id.0,
                    name: entry.table.name.clone(),
                    columns: entry
                        .table
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| LoggedColumn {
                            name: c.name.clone(),
                            type_tag: LogRecord::type_tag(c.ty),
                            varchar_len: c.varchar_len as u32,
                        })
                        .collect(),
                })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::DropTable { name } => {
                self.check_wal_writable()?;
                let id = self.catalog.get(name)?.table.id.0;
                self.catalog.drop_table(name)?;
                self.log_ddl(&LogRecord::DropTable { table_id: id })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::DropIndex { name, table } => {
                self.check_wal_writable()?;
                let entry = self.catalog.get(table)?;
                entry.drop_index(name)?;
                self.log_ddl(&LogRecord::DropIndex {
                    table_id: entry.table.id.0,
                    name: name.clone(),
                })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::Analyze { table } => {
                let entry = self.catalog.get(table)?;
                entry.analyze(self.txns.now());
                Ok(Some(QueryResult::default()))
            }
            _ => Ok(None),
        }
    }

    /// Recompute statistics for every table.
    pub fn analyze_all(&self) {
        let now = self.txns.now();
        for name in self.catalog.table_names() {
            if let Ok(entry) = self.catalog.get(&name) {
                entry.analyze(now);
            }
        }
    }

    /// Stop background threads (GC, WAL flusher).
    pub fn shutdown(&self) {
        self.gc.shutdown();
        if let Some(wal) = &self.wal {
            wal.shutdown();
        }
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    #[test]
    fn ddl_and_autocommit_dml() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b VARCHAR(8))").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        let r = db.execute("SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute("CREATE TABLE t (a INT)").is_err());
    }

    #[test]
    fn error_rolls_back_autocommit_txn() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        // Division by zero in the projection aborts the statement; the
        // update applied by... here SELECT doesn't modify, so instead test
        // a failing multi-row change: second row divides by zero.
        let err = db.execute("UPDATE t SET a = 1 / (a - 1)");
        assert!(err.is_err());
        let r = db.execute("SELECT a FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1), "update must have rolled back");
    }

    #[test]
    fn prepared_plan_reuse() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let plan = db.prepare("SELECT COUNT(*) FROM t WHERE a < 5").unwrap();
        let a = db.execute_plan(&plan, None).unwrap();
        let b = db.execute_plan(&plan, None).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows[0][0], Value::Int(5));
    }

    #[test]
    fn analyze_updates_stats() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({})", i % 5))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let stats = db.catalog().get("t").unwrap().stats();
        assert_eq!(stats.row_count, 50);
        assert_eq!(stats.columns[0].distinct, 5);
    }

    #[test]
    fn knob_changes_apply() {
        let db = Database::open();
        assert_eq!(db.knobs().execution_mode, ExecutionMode::Compiled);
        db.set_execution_mode(ExecutionMode::Interpret);
        assert_eq!(db.knobs().execution_mode, ExecutionMode::Interpret);
        db.set_jht_sleep_every(100);
        assert_eq!(db.knobs().jht_sleep_every, 100);
    }

    #[test]
    fn wal_accumulates_records() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let (_, records, ..) = db.wal().unwrap().stats().snapshot();
        assert!(records >= 3, "begin + insert + commit, got {records}");
    }

    #[test]
    fn transaction_control_requires_session() {
        let db = Database::open();
        assert!(db.execute("BEGIN").is_err());
    }
}
