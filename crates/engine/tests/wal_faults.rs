//! Engine-level durability behavior under injected WAL faults:
//! transient flush failures are retried transparently; persistent failures
//! poison the log and degrade the engine to read-only, without ever
//! reporting a commit durable that is not on disk.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mb2_common::fault::{points, FaultMode};
use mb2_common::{DbError, FaultInjector, Value};
use mb2_engine::{recover, Database, DatabaseConfig};

fn temp_wal(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mb2_faults_{}_{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A database with real durability on: fsync at every commit, fault
/// injection wired in.
fn durable_db(path: &Path, faults: &Arc<FaultInjector>, retries: u32) -> Database {
    Database::new(DatabaseConfig {
        wal_enabled: true,
        wal_path: Some(path.to_path_buf()),
        wal_fsync: true,
        wal_sync_commit: true,
        wal_flush_retries: retries,
        wal_retry_backoff: Duration::from_micros(50),
        faults: Some(faults.clone()),
        ..DatabaseConfig::default()
    })
    .unwrap()
}

fn count_rows(db: &Database, table: &str) -> i64 {
    db.execute(&format!("SELECT COUNT(*) FROM {table}"))
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap()
}

#[test]
fn transient_fsync_failure_is_retried_transparently() {
    let path = temp_wal("transient");
    let faults = Arc::new(FaultInjector::new(17));
    let db = durable_db(&path, &faults, 3);
    db.execute("CREATE TABLE t (a INT)").unwrap();
    faults.arm(points::WAL_FSYNC, FaultMode::Nth(1));
    // The commit's flush hits one fsync failure and retries; the caller
    // never sees it.
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(!db.is_read_only());
    let stats = db.wal().unwrap().stats();
    assert_eq!(stats.flush_errors.get(), 1);
    assert_eq!(stats.flush_retries.get(), 1);
    assert!(stats.last_error().unwrap().contains("wal.fsync"));
    drop(db);

    // The commit really is on disk.
    let (db, report) = recover(
        &path,
        DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.transactions_committed, 1);
    assert_eq!(count_rows(&db, "t"), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn persistent_fsync_failure_degrades_to_read_only() {
    let path = temp_wal("persistent");
    let faults = Arc::new(FaultInjector::new(17));
    let db = durable_db(&path, &faults, 2);
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    // From here on every fsync fails: the next durable commit must fail
    // fast, and the failed transaction must be invisible.
    faults.arm(points::WAL_FSYNC, FaultMode::Always);
    let err = db.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert!(matches!(err, DbError::WalUnavailable(_)), "{err}");
    assert!(db.is_read_only());

    // Reads still work and show no trace of the unacknowledged commit.
    assert_eq!(count_rows(&db, "t"), 1);
    let r = db.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);

    // Writes and DDL fail fast with the latched error.
    assert!(matches!(
        db.execute("INSERT INTO t VALUES (3)").unwrap_err(),
        DbError::WalUnavailable(_)
    ));
    assert!(matches!(
        db.execute("CREATE TABLE u (x INT)").unwrap_err(),
        DbError::WalUnavailable(_)
    ));
    assert!(matches!(
        db.execute("CREATE INDEX t_a ON t (a)").unwrap_err(),
        DbError::WalUnavailable(_)
    ));
    assert!(matches!(
        db.execute("DROP TABLE t").unwrap_err(),
        DbError::WalUnavailable(_)
    ));
    drop(db);

    // What recovery sees matches exactly what was acknowledged: one table,
    // one row, and no half-applied second insert.
    faults.disarm(points::WAL_FSYNC);
    let (db, report) = recover(
        &path,
        DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.transactions_committed, 1);
    assert_eq!(count_rows(&db, "t"), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn explicit_transactions_roll_back_on_durable_commit_failure() {
    let path = temp_wal("session");
    let faults = Arc::new(FaultInjector::new(17));
    let db = durable_db(&path, &faults, 1);
    db.execute("CREATE TABLE t (a INT)").unwrap();

    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (10)").unwrap();
    s.execute("INSERT INTO t VALUES (11)").unwrap();
    faults.arm(points::WAL_FSYNC, FaultMode::Always);
    let err = s.execute("COMMIT").unwrap_err();
    assert!(matches!(err, DbError::WalUnavailable(_)), "{err}");
    drop(s);

    // Both inserts rolled back in memory...
    assert_eq!(count_rows(&db, "t"), 0);
    drop(db);
    // ...and neither is on disk.
    faults.disarm(points::WAL_FSYNC);
    let (db, _) = recover(
        &path,
        DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        },
    )
    .unwrap();
    assert_eq!(count_rows(&db, "t"), 0);
    let _ = std::fs::remove_file(&path);
}
