//! Linear support-vector regression trained with averaged SGD on the
//! epsilon-insensitive loss (one weight vector per output).

use mb2_common::{DbError, DbResult, Prng};

use crate::data::StandardScaler;
use crate::linalg::dot;
use crate::Regressor;

/// Linear epsilon-SVR.
///
/// Minimizes `C * sum(max(0, |w·x + b - y| - epsilon)) + ||w||²/2` with
/// stochastic subgradient descent and iterate averaging. Targets are
/// standardized internally so `epsilon` is in target-standard-deviation
/// units.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    pub epsilon: f64,
    pub c: f64,
    pub epochs: usize,
    pub seed: u64,
    pub(crate) x_scaler: StandardScaler,
    /// Per-output target mean/scale for internal standardization.
    pub(crate) y_means: Vec<f64>,
    pub(crate) y_scales: Vec<f64>,
    /// Per-output weights; last element is the intercept.
    pub(crate) weights: Vec<Vec<f64>>,
}

impl LinearSvr {
    pub fn new(epsilon: f64, c: f64, epochs: usize) -> LinearSvr {
        LinearSvr {
            epsilon,
            c,
            epochs,
            seed: 7,
            x_scaler: StandardScaler::default(),
            y_means: Vec::new(),
            y_scales: Vec::new(),
            weights: Vec::new(),
        }
    }
}

impl Default for LinearSvr {
    fn default() -> Self {
        LinearSvr::new(0.05, 10.0, 60)
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model("svr: empty training set".into()));
        }
        self.x_scaler = StandardScaler::fit(x);
        let xs: Vec<Vec<f64>> = self.x_scaler.transform(x);
        let n = xs.len();
        let d = xs[0].len();
        let n_outputs = y[0].len();

        self.y_means = vec![0.0; n_outputs];
        self.y_scales = vec![1.0; n_outputs];
        for j in 0..n_outputs {
            let col: Vec<f64> = y.iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            self.y_means[j] = mean;
            self.y_scales[j] = var.sqrt().max(1e-9);
        }

        self.weights.clear();
        let mut rng = Prng::new(self.seed);
        // Minimize lambda/2 ||w||^2 + mean(max(0, |w·x + b - y| - eps)) with
        // stochastic subgradient descent, eta_t = eta0 / sqrt(t), and iterate
        // averaging over the second half of training.
        let lambda = 1.0 / (self.c * n as f64);
        let eta0 = 0.5;
        for j in 0..n_outputs {
            let targets: Vec<f64> = y
                .iter()
                .map(|r| (r[j] - self.y_means[j]) / self.y_scales[j])
                .collect();
            let mut w = vec![0.0f64; d + 1];
            let mut w_avg = vec![0.0f64; d + 1];
            let mut avg_count = 0usize;
            let mut t = 0usize;
            for epoch in 0..self.epochs {
                for _ in 0..n {
                    t += 1;
                    let i = rng.range_usize(0, n);
                    let eta = eta0 / (t as f64).sqrt();
                    let pred = dot(&w[..d], &xs[i]) + w[d];
                    let resid = pred - targets[i];
                    // L2 shrink on the weights (not the intercept).
                    let shrink = 1.0 - (eta * lambda).min(0.5);
                    for wv in &mut w[..d] {
                        *wv *= shrink;
                    }
                    if resid.abs() > self.epsilon {
                        let step = eta * resid.signum();
                        for (wv, &xv) in w[..d].iter_mut().zip(&xs[i]) {
                            *wv -= step * xv;
                        }
                        w[d] -= step;
                    }
                }
                if epoch >= self.epochs / 2 {
                    for (a, &v) in w_avg.iter_mut().zip(&w) {
                        *a += v;
                    }
                    avg_count += 1;
                }
            }
            if avg_count > 0 {
                for a in &mut w_avg {
                    *a /= avg_count as f64;
                }
                self.weights.push(w_avg);
            } else {
                self.weights.push(w);
            }
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let row = self.x_scaler.transform_row(x);
        self.weights
            .iter()
            .enumerate()
            .map(|(j, w)| {
                let d = w.len() - 1;
                let std_pred = dot(&w[..d], &row) + w[d];
                std_pred * self.y_scales[j] + self.y_means[j]
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "svr"
    }

    fn size_bytes(&self) -> usize {
        self.weights.iter().map(|w| w.len() * 8).sum::<usize>()
            + self.x_scaler.means.len() * 16
            + self.y_means.len() * 16
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    #[test]
    fn learns_linear_relation() {
        let mut rng = Prng::new(5);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let a = rng.next_f64() * 4.0;
            let b = rng.next_f64() * 4.0;
            x.push(vec![a, b]);
            y.push(vec![5.0 * a + 1.0 * b + 2.0]);
        }
        let mut m = LinearSvr::default();
        m.fit(&x, &y).unwrap();
        let p = m.predict_one(&[2.0, 2.0])[0];
        let truth = 5.0 * 2.0 + 2.0 + 2.0;
        assert!((p - truth).abs() / truth < 0.15, "pred {p} truth {truth}");
    }

    #[test]
    fn multi_output_independent() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0], -3.0 * r[0]]).collect();
        let mut m = LinearSvr::default();
        m.fit(&x, &y).unwrap();
        let p = m.predict_one(&[10.0]);
        assert!((p[0] - 10.0).abs() < 2.0, "{p:?}");
        assert!((p[1] + 30.0).abs() < 6.0, "{p:?}");
    }

    #[test]
    fn empty_fit_is_error() {
        let mut m = LinearSvr::default();
        assert!(m.fit(&[], &[]).is_err());
    }
}
