//! Model evaluation metrics (multi-output aware).

/// Mean squared error over all samples and outputs.
pub fn mean_squared_error(actual: &[Vec<f64>], predicted: &[Vec<f64>]) -> f64 {
    agg(actual, predicted, |a, p| (a - p) * (a - p))
}

/// Mean absolute error over all samples and outputs.
pub fn mean_absolute_error(actual: &[Vec<f64>], predicted: &[Vec<f64>]) -> f64 {
    agg(actual, predicted, |a, p| (a - p).abs())
}

/// Mean relative error `|a - p| / |a|` over all samples/outputs, skipping
/// pairs whose actual value is exactly zero (the paper's §8 metric does the
/// same — a zero-valued label has no meaningful relative error).
pub fn mean_relative_error(actual: &[Vec<f64>], predicted: &[Vec<f64>]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut total = 0.0;
    let mut count = 0usize;
    for (a_row, p_row) in actual.iter().zip(predicted) {
        for (&a, &p) in a_row.iter().zip(p_row) {
            if a != 0.0 {
                total += (a - p).abs() / a.abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Coefficient of determination, averaged across outputs.
pub fn r2_score(actual: &[Vec<f64>], predicted: &[Vec<f64>]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    let d = actual[0].len();
    let n = actual.len() as f64;
    let mut score = 0.0;
    for j in 0..d {
        let mean = actual.iter().map(|r| r[j]).sum::<f64>() / n;
        let ss_tot: f64 = actual.iter().map(|r| (r[j] - mean) * (r[j] - mean)).sum();
        let ss_res: f64 = actual
            .iter()
            .zip(predicted)
            .map(|(a, p)| (a[j] - p[j]) * (a[j] - p[j]))
            .sum();
        score += if ss_tot < 1e-12 {
            if ss_res < 1e-12 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        };
    }
    score / d as f64
}

fn agg(actual: &[Vec<f64>], predicted: &[Vec<f64>], f: impl Fn(f64, f64) -> f64) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut total = 0.0;
    let mut count = 0usize;
    for (a_row, p_row) in actual.iter().zip(predicted) {
        debug_assert_eq!(a_row.len(), p_row.len());
        for (&a, &p) in a_row.iter().zip(p_row) {
            total += f(a, p);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let p = vec![vec![1.0, 0.0], vec![3.0, 6.0]];
        assert_eq!(mean_squared_error(&a, &p), 2.0);
        assert_eq!(mean_absolute_error(&a, &p), 1.0);
    }

    #[test]
    fn perfect_prediction_r2_is_one() {
        let a = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert!((r2_score(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_r2_is_zero() {
        let a = vec![vec![1.0], vec![2.0], vec![3.0]];
        let p = vec![vec![2.0], vec![2.0], vec![2.0]];
        assert!(r2_score(&a, &p).abs() < 1e-12);
    }

    #[test]
    fn relative_error_scales_with_actual() {
        let a = vec![vec![100.0]];
        let p = vec![vec![80.0]];
        assert!((mean_relative_error(&a, &p) - 0.2).abs() < 1e-12);
    }
}
