//! Predictive admission & scheduling: the cold-start fallback is
//! byte-identical to the legacy semaphore, admission permits live until the
//! final response frame is flushed, queue deadlines evict with a typed busy
//! (never a silent drop) at every parallelism level, tenant quotas shed
//! with `Busy(Quota)`, the interference model makes admission sensitive to
//! the in-flight mix, and `SHOW SCHED` reports the live mode.

use std::collections::HashMap;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::metrics::idx;
use mb2_common::{DbError, Metrics, Prng, Value};
use mb2_core::training::{train_all, OuModelSet, TrainingConfig};
use mb2_core::{
    BehaviorModels, InterferenceInputs, InterferenceModel, OuSample, OuTranslator, TrainingRepo,
};
use mb2_engine::{Database, DatabaseConfig};
use mb2_ml::{Algorithm, Dataset};
use mb2_server::sched::{ConnSchedCtx, Decision, Scheduler};
use mb2_server::wire::{self, Frame};
use mb2_server::{BusyReason, Client, SchedulerPolicy, Server, ServerConfig, TierPolicy};

fn start_server(db_cfg: DatabaseConfig, srv_cfg: ServerConfig) -> Server {
    let db = Arc::new(Database::new(db_cfg).expect("database"));
    Server::start(db, srv_cfg).expect("server start")
}

/// Wait until no admission permit is held. A worker that just flushed a
/// final `Done` can be preempted (the woken client runs first) before its
/// `AdmissionGuard` drops, so on a busy host the permit of an *already
/// answered* query lingers for a few milliseconds — long enough to shed
/// the next query sent from another connection. `finish` runs before the
/// gauge decrement, so gauge 0 implies the slot is really free.
fn wait_idle(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let prom = server.db().metrics_prometheus();
        if prom_metric(&prom, "mb2_server_inflight_queries").unwrap_or(0.0) == 0.0 {
            return;
        }
        assert!(Instant::now() < deadline, "server never went idle");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Seed the canonical `big` table through the server (so the engine's own
/// collector sees the plans the tests predict against).
fn seed_big(addr: &str, rows: usize, payload: usize) {
    let mut c = Client::connect(addr).expect("seed connect");
    c.query("CREATE TABLE big (pk INT, grp INT, v VARCHAR)")
        .unwrap();
    let pad = "x".repeat(payload);
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, '{pad}')", i % 100))
            .collect();
        c.query(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
    }
    c.query("ANALYZE big").unwrap();
}

/// Linear OU models trained on synthetic per-OU costs for the plans the
/// tests issue — the planner-test recipe, kept here so server tests do not
/// depend on the bench crate's pipeline.
fn trained_models(db: &Database, interference: Option<InterferenceModel>) -> Arc<BehaviorModels> {
    let mut repo = TrainingRepo::new();
    let translator = OuTranslator::default();
    let plans = [
        db.prepare("SELECT * FROM big WHERE grp = 1").unwrap(),
        db.prepare("SELECT COUNT(*) FROM big").unwrap(),
        db.prepare("SELECT * FROM big WHERE pk = 1").unwrap(),
    ];
    for plan in &plans {
        for inst in translator.translate_plan(plan, &db.knobs()) {
            for k in 1..=15 {
                let mut f = inst.features.clone();
                f[0] = (k * 50) as f64;
                let cost = 10.0 * f[0];
                let mut labels = Metrics::ZERO;
                labels[idx::ELAPSED_US] = cost;
                labels[idx::CPU_US] = cost;
                repo.add(OuSample {
                    ou: inst.ou,
                    features: f,
                    labels,
                });
            }
        }
    }
    let (set, _) = train_all(
        &repo,
        &TrainingConfig {
            candidates: vec![Algorithm::Linear],
            ..TrainingConfig::default()
        },
    )
    .unwrap();
    Arc::new(BehaviorModels::new(set, interference))
}

/// An interference model trained on a synthetic contention law where the
/// slowdown grows with the aggregate in-flight demand — enough signal for
/// admission to price the same query differently under load.
fn contention_interference(seed: u64) -> InterferenceModel {
    let mut rng = Prng::new(seed);
    let mut data = Dataset::default();
    let window = 500_000.0;
    for _ in 0..400 {
        let self_elapsed = 50.0 + rng.next_f64() * 500.0;
        let mut self_pred = Metrics::ZERO;
        self_pred[idx::ELAPSED_US] = self_elapsed;
        self_pred[idx::CPU_US] = self_elapsed * 0.9;
        let threads = 1 + (rng.next_f64() * 8.0) as usize;
        let totals: Vec<Metrics> = (0..threads)
            .map(|_| {
                let e = rng.next_f64() * 200_000.0;
                let mut m = Metrics::ZERO;
                m[idx::ELAPSED_US] = e;
                m[idx::CPU_US] = e * 0.9;
                m
            })
            .collect();
        let demand: f64 = totals.iter().map(|t| t[idx::CPU_US]).sum::<f64>() / window;
        let ratio = 1.0 + 4.0 * demand;
        let f = InterferenceInputs::features(&self_pred, &totals, window);
        let actual = self_pred.scale(ratio);
        data.push(f, InterferenceInputs::ratio_labels(&actual, &self_pred));
    }
    InterferenceModel::train(&data, 3).expect("interference training")
}

/// Raw v1 conversation: hello, then one query, returning the raw bytes of
/// every response frame payload (handshake reply + query reply).
fn raw_v1_exchange(addr: &str, sql: &str) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    wire::write_frame_v(
        &mut stream,
        &Frame::ClientHello {
            version: 1,
            tenant: String::new(),
            tier: u8::MAX,
        },
        1,
    )
    .unwrap();
    let mut frames = Vec::new();
    frames.push(read_raw_frame(&mut stream));
    wire::write_frame_v(
        &mut stream,
        &Frame::Query {
            sql: sql.to_string(),
        },
        1,
    )
    .unwrap();
    frames.push(read_raw_frame(&mut stream));
    frames
}

/// Read one length-prefixed frame and return its raw payload bytes.
fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    payload
}

/// A generous tier for traffic that must always get through, plus a
/// starved tier used to drive the queue/deadline paths deterministically.
fn two_tier_policy(low_budget_us: f64, low_deadline: Duration) -> SchedulerPolicy {
    SchedulerPolicy {
        tiers: vec![
            TierPolicy {
                name: "interactive".into(),
                slo_budget_us: 1e12,
                queue_deadline: Duration::from_secs(2),
            },
            TierPolicy {
                name: "batch".into(),
                slo_budget_us: low_budget_us,
                queue_deadline: low_deadline,
            },
        ],
        queue_capacity: 8,
        default_tenant_quota: 0,
        tenant_quotas: HashMap::new(),
        interference_window_us: 500_000.0,
    }
}

fn prom_metric(prom: &str, prefix: &str) -> Option<f64> {
    prom.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
}

/// Cold start must be honest: a server configured with a scheduler policy
/// but no trained models (and one with explicitly *empty* models attached)
/// answers overload with wire bytes identical to the legacy semaphore
/// server, frame for frame.
#[test]
fn untrained_scheduler_is_byte_identical_to_semaphore() {
    // max_inflight_queries = 0 makes every query an admission rejection,
    // so the comparison is deterministic.
    let legacy = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 0,
            ..ServerConfig::default()
        },
    );
    let untrained = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 0,
            scheduler: Some(SchedulerPolicy::default()),
            ..ServerConfig::default()
        },
    );
    let empty_models = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 0,
            scheduler: Some(SchedulerPolicy::default()),
            ..ServerConfig::default()
        },
    );
    // Attached but empty models must also fall back.
    empty_models.attach_models(Arc::new(BehaviorModels::new(OuModelSet::default(), None)));

    let baseline = raw_v1_exchange(&legacy.local_addr().to_string(), "SELECT 1");
    for server in [&untrained, &empty_models] {
        let got = raw_v1_exchange(&server.local_addr().to_string(), "SELECT 1");
        assert_eq!(
            got, baseline,
            "fallback wire bytes must match the legacy semaphore exactly"
        );
    }
    // Sanity: the reply really is the legacy busy frame (v1: no hint bytes).
    match wire::decode_payload(&baseline[1]).unwrap() {
        Frame::Busy {
            reason,
            message,
            retry_after_ms,
        } => {
            assert_eq!(reason, BusyReason::Queries);
            assert_eq!(message, "0 queries in flight (limit 0)");
            assert_eq!(retry_after_ms, 0);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    legacy.shutdown();
    untrained.shutdown();
    empty_models.shutdown();
}

/// Regression (the permit-lifetime bug): the admission slot must be held
/// until the final `Done` frame is flushed. With `max_inflight_queries = 1`
/// and a client that deliberately stops reading mid-result, a second
/// client's query must shed with `Busy` — the slot is *not* free just
/// because execution finished producing rows.
#[test]
fn permit_held_until_final_frame_flushed() {
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 1,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();
    // ~18 MB of result bytes: more than twice what the loopback send +
    // receive buffers can hold combined, so the server's writer reliably
    // blocks while the slow reader stalls.
    seed_big(&addr, 30_000, 600);
    // The seed connection's last permit can outlive its final `Done` by a
    // few milliseconds; with `max_inflight_queries = 1` that would shed
    // the big query below, so wait for the slot to actually free.
    wait_idle(&server);

    // Slow reader: send the big query, read only the handshake, then stall.
    let mut slow = TcpStream::connect(&addr).expect("slow connect");
    wire::write_frame(
        &mut slow,
        &Frame::ClientHello {
            version: wire::PROTOCOL_VERSION,
            tenant: String::new(),
            tier: u8::MAX,
        },
    )
    .unwrap();
    let _hello = read_raw_frame(&mut slow);
    wire::write_frame(
        &mut slow,
        &Frame::Query {
            sql: "SELECT * FROM big".into(),
        },
    )
    .unwrap();
    // Wait until the query is admitted (the inflight gauge flips to 1),
    // then give the writer a moment to fill the socket buffers and block.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let prom = server.db().metrics_prometheus();
        if prom_metric(&prom, "mb2_server_inflight_queries").unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(
            prom_metric(&prom, "mb2_server_queries_rejected_total").unwrap_or(0.0) == 0.0,
            "big query was shed instead of admitted"
        );
        assert!(Instant::now() < deadline, "big query never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));

    let mut other = Client::connect(&addr).expect("second client");
    let err = match other.query("SELECT COUNT(*) FROM big") {
        Err(e) => e,
        Ok(resp) => {
            let prom = server.db().metrics_prometheus();
            let diag: Vec<&str> = prom
                .lines()
                .filter(|l| l.contains("mb2_server") && !l.starts_with('#'))
                .collect();
            panic!(
                "slot must still be held while the final frame is unflushed; \
                 probe got {:?} rows; server metrics:\n{}",
                resp.rows,
                diag.join("\n")
            );
        }
    };
    match err {
        DbError::ServerBusy(msg) => assert!(
            msg.contains("1 queries in flight"),
            "unexpected busy message: {msg}"
        ),
        other => panic!("expected ServerBusy, got {other:?}"),
    }

    // Drain the stalled response; once the final Done is flushed the slot
    // frees and the probe query gets through.
    let mut sink = vec![0u8; 1 << 20];
    slow.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let _ = slow.read(&mut sink); // timeouts fine: probe paces the loop
        match other.query("SELECT COUNT(*) FROM big") {
            Ok(resp) => {
                assert_eq!(resp.rows, vec![vec![Value::Int(30_000)]]);
                break;
            }
            Err(DbError::ServerBusy(_)) => {
                assert!(
                    Instant::now() < deadline,
                    "slot never freed after draining the response"
                );
            }
            Err(e) => panic!("probe query failed: {e:?}"),
        }
    }
    server.shutdown();
}

/// Satellite 4: seeded starvation at parallelism 1/2/8. A starved low tier
/// (zero SLO budget — it can never be admitted) must come back as a typed
/// `Busy(DeadlineExceeded)` with a retry hint after its queue deadline;
/// never a hang, never a silent drop — while high-tier traffic keeps
/// flowing the whole time.
#[test]
fn seeded_starvation_deadline_eviction_at_each_parallelism() {
    let seed: u64 = std::env::var("MB2_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    for parallelism in [1usize, 2, 8] {
        let mut rng = Prng::new(seed ^ parallelism as u64);
        let mut db_cfg = DatabaseConfig::default();
        db_cfg.knobs.parallelism = parallelism;
        let deadline = Duration::from_millis(150);
        let server = start_server(
            db_cfg,
            ServerConfig {
                max_inflight_queries: 1,
                scheduler: Some(two_tier_policy(0.0, deadline)),
                ..ServerConfig::default()
            },
        );
        let addr = server.local_addr().to_string();
        seed_big(&addr, 2_000, 8);
        server.attach_models(trained_models(&server.db(), None));

        // High-tier stream in the background: a seeded number of cheap
        // queries that must all succeed while the low tier is starved.
        let hi_addr = addr.clone();
        let hi_queries = 4 + (rng.next_f64() * 8.0) as usize;
        let hi = std::thread::spawn(move || {
            let mut c = Client::connect_with(&hi_addr, "t0", 0).expect("hi connect");
            for _ in 0..hi_queries {
                c.query("SELECT COUNT(*) FROM big").expect("hi-tier query");
                std::thread::sleep(Duration::from_millis(10));
            }
        });

        let mut low = Client::connect_with(&addr, "t1", 1).expect("low connect");
        let started = Instant::now();
        let err = low
            .query("SELECT COUNT(*) FROM big")
            .expect_err("zero-budget tier can never be admitted");
        let waited = started.elapsed();
        match err {
            DbError::ServerBusy(msg) => assert!(
                msg.contains("deadline"),
                "parallelism {parallelism}: expected deadline eviction, got: {msg}"
            ),
            other => panic!("parallelism {parallelism}: expected ServerBusy, got {other:?}"),
        }
        assert!(
            waited >= deadline - Duration::from_millis(5),
            "parallelism {parallelism}: evicted before the deadline ({waited:?})"
        );
        assert!(
            waited < Duration::from_secs(5),
            "parallelism {parallelism}: eviction took {waited:?} — effectively a hang"
        );
        assert!(
            low.last_retry_hint().is_some(),
            "parallelism {parallelism}: deadline eviction must carry a retry hint"
        );

        hi.join().expect("high-tier stream must survive starvation");

        // The shed shows up split by reason, and the unlabeled total keeps
        // counting everything.
        let prom = server.db().metrics_prometheus();
        let by_reason =
            prom_metric(&prom, "mb2_server_queries_shed_total{reason=\"deadline\"}").unwrap_or(0.0);
        assert!(
            by_reason >= 1.0,
            "parallelism {parallelism}: deadline shed not counted: {by_reason}"
        );
        let total = prom_metric(&prom, "mb2_server_queries_rejected_total").unwrap_or(0.0);
        assert!(
            total >= by_reason,
            "unlabeled total {total} < labeled deadline count {by_reason}"
        );
        server.shutdown();
    }
}

/// Tenant quotas: a tenant at its concurrent-query quota sheds with
/// `Busy(Quota)` and a retry hint while other tenants keep running.
#[test]
fn tenant_quota_sheds_with_typed_busy() {
    let mut policy = two_tier_policy(1e12, Duration::from_millis(500));
    policy.tenant_quotas.insert("noisy".into(), 1);
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 4,
            scheduler: Some(policy),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();
    // ~18 MB of result bytes: big enough that a non-reading client keeps
    // its query in flight no matter how the socket buffers autotune.
    seed_big(&addr, 30_000, 600);
    server.attach_models(trained_models(&server.db(), None));
    wait_idle(&server);

    // Tenant "noisy" holds its one slot open: send the query, never read.
    let mut holder = TcpStream::connect(&addr).expect("holder connect");
    wire::write_frame(
        &mut holder,
        &Frame::ClientHello {
            version: wire::PROTOCOL_VERSION,
            tenant: "noisy".into(),
            tier: 0,
        },
    )
    .unwrap();
    let _hello = read_raw_frame(&mut holder);
    wire::write_frame(
        &mut holder,
        &Frame::Query {
            sql: "SELECT * FROM big".into(),
        },
    )
    .unwrap();
    // Wait until the holder's query is actually admitted before probing.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let prom = server.db().metrics_prometheus();
        if prom_metric(&prom, "mb2_server_inflight_queries").unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "holder query never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut noisy2 = Client::connect_with(&addr, "noisy", 0).expect("noisy2 connect");
    let err = noisy2
        .query("SELECT COUNT(*) FROM big")
        .expect_err("tenant at quota must shed");
    match err {
        DbError::ServerBusy(msg) => {
            assert!(msg.contains("quota"), "unexpected busy message: {msg}")
        }
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    assert!(
        noisy2.last_retry_hint().is_some(),
        "quota shed must carry a retry hint"
    );

    // A different tenant is unaffected.
    let mut quiet = Client::connect_with(&addr, "quiet", 0).expect("quiet connect");
    let resp = quiet
        .query("SELECT COUNT(*) FROM big")
        .expect("quiet query");
    assert_eq!(resp.rows, vec![vec![Value::Int(30_000)]]);

    let prom = server.db().metrics_prometheus();
    let quota_sheds =
        prom_metric(&prom, "mb2_server_queries_shed_total{reason=\"quota\"}").unwrap_or(0.0);
    assert!(quota_sheds >= 1.0, "quota shed not counted: {quota_sheds}");
    drop(holder);
    server.shutdown();
}

/// The interference fold-in: the same statement that is admitted on an
/// idle server is rejected when the in-flight mix predicts contention past
/// the tier budget — and admitted again once the mix drains.
#[test]
fn interference_prediction_gates_admission() {
    let db = Database::open();
    db.execute("CREATE TABLE big (pk INT, grp INT, v VARCHAR)")
        .unwrap();
    for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 'x')", i % 100))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
    }
    db.execute("ANALYZE big").unwrap();

    let models = trained_models(&db, Some(contention_interference(3)));
    let sql = "SELECT * FROM big WHERE grp = 1";

    // Measure the model's own view of the statement: isolated cost, and
    // cost adjusted against one expensive in-flight neighbor.
    let plan = db.prepare(sql).unwrap();
    let pred = models.predict_plan(&plan, &db.knobs());
    let window = 500_000.0;
    let interference = models.interference.as_ref().unwrap();
    let idle_us: f64 = pred.total.elapsed_us();
    let mut heavy = Metrics::ZERO;
    heavy[idx::ELAPSED_US] = 150_000.0;
    heavy[idx::CPU_US] = 135_000.0;
    let loaded_us: f64 = pred
        .per_ou
        .iter()
        .map(|(_, m)| {
            interference
                .adjust(m, &[heavy, Metrics::ZERO], window)
                .elapsed_us()
        })
        .sum();
    assert!(
        loaded_us > idle_us * 1.5,
        "contention law not learned: idle {idle_us:.0}µs loaded {loaded_us:.0}µs"
    );

    // Budget between the two: admitted idle, rejected under load. Queue
    // capacity 0 turns "would queue" into an immediate typed rejection.
    let mut policy = two_tier_policy(0.0, Duration::from_millis(100));
    policy.tiers[0].slo_budget_us = (idle_us + loaded_us) / 2.0;
    policy.queue_capacity = 0;
    policy.interference_window_us = window;
    let sched = Scheduler::new(2, Some(policy));
    sched.attach_models(models);
    let ctx = ConnSchedCtx {
        tenant: String::new(),
        tier: 0,
    };

    // Idle: admitted.
    let first = match sched.admit(&db, sql, &ctx) {
        Decision::Admit(tok) => tok,
        Decision::Reject { message, .. } => panic!("idle admission rejected: {message}"),
    };

    // Charge a heavy neighbor into the mix, then retry the same statement:
    // the interference-adjusted cost must now bust the budget.
    let heavy_tok = match sched.admit(&db, "SELECT * FROM big", &ctx) {
        Decision::Admit(tok) => tok,
        Decision::Reject { message, .. } => panic!("heavy admission rejected: {message}"),
    };
    match sched.admit(&db, sql, &ctx) {
        Decision::Reject {
            reason,
            retry_after_ms,
            ..
        } => {
            assert_eq!(reason, BusyReason::QueueFull);
            assert!(retry_after_ms >= 1, "rejection must carry a retry hint");
        }
        Decision::Admit(_) => {
            panic!("admission ignored the interference-predicted contention")
        }
    }

    // Drain the mix: the statement fits again.
    sched.finish(first);
    sched.finish(heavy_tok);
    match sched.admit(&db, sql, &ctx) {
        Decision::Admit(_) => {}
        Decision::Reject { message, .. } => panic!("post-drain admission rejected: {message}"),
    }
}

/// `SHOW SCHED` reports the live mode: fallback before models arrive,
/// predictive (with tier rows) after.
#[test]
fn show_sched_reports_mode_and_tiers() {
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            scheduler: Some(SchedulerPolicy::default()),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();
    seed_big(&addr, 500, 8);

    let mut c = Client::connect(&addr).expect("connect");
    let rows: Vec<String> = c
        .query("SHOW SCHED")
        .expect("show sched")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Varchar(s) => s.clone(),
            other => panic!("expected varchar row, got {other:?}"),
        })
        .collect();
    assert_eq!(rows[0], "mode fallback");
    assert!(rows.iter().any(|r| r.contains("tier 0 interactive")));

    server.attach_models(trained_models(&server.db(), None));
    let rows: Vec<String> = c
        .query("SHOW SCHED")
        .expect("show sched predictive")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Varchar(s) => s.clone(),
            other => panic!("expected varchar row, got {other:?}"),
        })
        .collect();
    assert_eq!(rows[0], "mode predictive");
    server.shutdown();
}
