//! Table 2 — MB2 Overhead: behavior-model computation and storage cost,
//! plus §8.1's translator/inference/tracker latency numbers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_core::{OuTranslator, TrainingCollector};
use mb2_engine::Database;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::experiments::common::tpch_templates;
use crate::pipeline::{build_interference_model, build_ou_models, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(
        "# Table 2 — MB2 overhead (runner time, data size, training time, model size)\n\n",
    );

    // OU-model pipeline.
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");

    // Interference pipeline over TPC-H.
    let tpch = Tpch::with_scale(scale.pick(0.05, 0.25));
    let db = Arc::new(Database::open());
    tpch.load(&db).expect("tpch");
    let templates = tpch_templates(&db, &tpch);
    let window = Duration::from_millis(scale.pick(300, 1500));
    let (interference, conc_time, rows) = build_interference_model(
        &db,
        &templates,
        &built.models,
        &scale.pick(vec![2usize, 4], vec![1, 3, 5, 7]),
        window,
        7,
    )
    .expect("interference");

    let mut table = Table::new(
        "behavior model computation and storage cost",
        &[
            "model type",
            "runner time",
            "data size",
            "training time",
            "model size",
        ],
    );
    table.row(&[
        "OUs".into(),
        format!("{:.1?}", built.runner_time),
        format!("{} KiB", built.report.data_size_bytes / 1024),
        format!("{:.1?}", built.report.total_training_time),
        format!("{} KiB", built.report.model_size_bytes / 1024),
    ]);
    let interference_data_bytes =
        rows * (mb2_core::interference::INTERFERENCE_FEATURE_COUNT + 9) * 8;
    table.row(&[
        "Interference".into(),
        format!("{conc_time:.1?}"),
        format!("{} KiB", interference_data_bytes / 1024),
        "(in selection)".into(),
        format!("{} KiB", interference.size_bytes() / 1024),
    ]);
    out.push_str(&table.render());

    let mut detail = Table::new(
        "per-OU training detail",
        &[
            "OU",
            "samples",
            "chosen algorithm",
            "validation rel-err",
            "train time",
        ],
    );
    for (ou, alg, err, t) in &built.report.per_ou {
        detail.row(&[
            ou.to_string(),
            built.repo.count(*ou).to_string(),
            alg.name().to_string(),
            fmt(*err),
            format!("{t:.1?}"),
        ]);
    }
    out.push('\n');
    out.push_str(&detail.render());

    // §8.1 micro-latencies: translator, inference, tracker.
    let translator = OuTranslator::default();
    let plan = &templates[1].plan; // q3: several OUs
    let knobs = db.knobs();
    let t0 = Instant::now();
    let n = 1000;
    for _ in 0..n {
        let _ = translator.translate_plan(plan, &knobs);
    }
    let translate_us = t0.elapsed().as_nanos() as f64 / 1000.0 / n as f64;

    let behavior = mb2_core::BehaviorModels::new(built.models, None);
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = behavior.predict_plan(plan, &knobs);
    }
    let infer_us = t0.elapsed().as_nanos() as f64 / 1000.0 / n as f64;

    // Tracker overhead: one recorded vs unrecorded small query.
    let small = db.prepare("SELECT * FROM region").unwrap();
    let instances = behavior.translator.translate_plan(&small, &knobs);
    let collector = TrainingCollector::new(&instances);
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = db.execute_plan(&small, Some(&collector));
    }
    let with_tracker = t0.elapsed().as_nanos() as f64 / 1000.0 / n as f64;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = db.execute_plan(&small, None);
    }
    let without = t0.elapsed().as_nanos() as f64 / 1000.0 / n as f64;

    let mut micro = Table::new(
        "section 8.1 micro-latencies (paper: translate 10us, inference 0.5ms, tracker 20us)",
        &["operation", "latency (us)"],
    );
    micro.row(&["OU translation (q3 plan)".into(), fmt(translate_us)]);
    micro.row(&["OU-model inference (q3 plan)".into(), fmt(infer_us)]);
    micro.row(&[
        "tracker overhead per query".into(),
        fmt((with_tracker - without).max(0.0)),
    ]);
    out.push('\n');
    out.push_str(&micro.render());
    out
}
