//! Gradient boosting machine: stagewise additive trees on squared-error
//! residuals, fit independently per output dimension.

use mb2_common::{DbError, DbResult};

use crate::tree::{DecisionTree, TreeConfig};
use crate::Regressor;

/// GBM hyperparameters.
#[derive(Debug, Clone)]
pub struct GbmConfig {
    pub n_estimators: usize,
    pub learning_rate: f64,
    pub tree: TreeConfig,
    pub seed: u64,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_estimators: 60,
            learning_rate: 0.15,
            tree: TreeConfig {
                max_depth: 5,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
                seed: 5,
            },
            seed: 5,
        }
    }
}

/// A fitted gradient boosting machine (one boosted ensemble per output).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    pub config: GbmConfig,
    /// `base[j]` is the initial constant prediction for output `j`.
    pub(crate) base: Vec<f64>,
    /// `stages[j]` is the tree sequence for output `j`.
    pub(crate) stages: Vec<Vec<DecisionTree>>,
}

impl GradientBoosting {
    pub fn new(config: GbmConfig) -> GradientBoosting {
        GradientBoosting {
            config,
            base: Vec::new(),
            stages: Vec::new(),
        }
    }
}

impl Default for GradientBoosting {
    fn default() -> Self {
        GradientBoosting::new(GbmConfig::default())
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model("gbm: empty training set".into()));
        }
        let n = x.len();
        let n_outputs = y[0].len();
        self.base = (0..n_outputs)
            .map(|j| y.iter().map(|r| r[j]).sum::<f64>() / n as f64)
            .collect();
        self.stages = Vec::with_capacity(n_outputs);
        for j in 0..n_outputs {
            let mut preds = vec![self.base[j]; n];
            let mut trees = Vec::with_capacity(self.config.n_estimators);
            for stage in 0..self.config.n_estimators {
                let residuals: Vec<Vec<f64>> =
                    y.iter().zip(&preds).map(|(r, &p)| vec![r[j] - p]).collect();
                // Early stop when residuals vanish (perfectly fit output).
                let res_mag: f64 = residuals.iter().map(|r| r[0].abs()).sum::<f64>() / n as f64;
                if res_mag < 1e-12 {
                    break;
                }
                let cfg = TreeConfig {
                    seed: self
                        .config
                        .seed
                        .wrapping_add((j * 1000 + stage) as u64 * 104729),
                    ..self.config.tree.clone()
                };
                let mut tree = DecisionTree::new(cfg);
                tree.fit(x, &residuals)?;
                for (p, row) in preds.iter_mut().zip(x) {
                    *p += self.config.learning_rate * tree.predict_one(row)[0];
                }
                trees.push(tree);
            }
            self.stages.push(trees);
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        self.base
            .iter()
            .zip(&self.stages)
            .map(|(&b, trees)| {
                b + trees
                    .iter()
                    .map(|t| self.config.learning_rate * t.predict_one(x)[0])
                    .sum::<f64>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "gradient_boosting"
    }

    fn size_bytes(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|ts| ts.iter().map(Regressor::size_bytes))
            .sum::<usize>()
            + self.base.len() * 8
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mean_relative_error;
    use mb2_common::Prng;

    #[test]
    fn boosts_past_single_tree_on_smooth_target() {
        let mut rng = Prng::new(8);
        let x: Vec<Vec<f64>> = (0..800).map(|_| vec![rng.next_f64() * 6.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![(r[0]).exp()]).collect();
        let mut gbm = GradientBoosting::default();
        gbm.fit(&x, &y).unwrap();
        let preds = gbm.predict(&x[..200]);
        let err = mean_relative_error(&y[..200], &preds);
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn multi_output_fits_independently() {
        let x: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0], 1000.0 - r[0]]).collect();
        let mut gbm = GradientBoosting::default();
        gbm.fit(&x, &y).unwrap();
        let p = gbm.predict_one(&[150.0]);
        assert!((p[0] - 150.0).abs() < 10.0, "{p:?}");
        assert!((p[1] - 850.0).abs() < 10.0, "{p:?}");
    }

    #[test]
    fn constant_target_stops_early() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![vec![3.0]; 50];
        let mut gbm = GradientBoosting::default();
        gbm.fit(&x, &y).unwrap();
        assert_eq!(
            gbm.stages[0].len(),
            0,
            "no stages needed for constant target"
        );
        assert_eq!(gbm.predict_one(&[7.0])[0], 3.0);
    }

    #[test]
    fn empty_fit_is_error() {
        let mut gbm = GradientBoosting::default();
        assert!(gbm.fit(&[], &[]).is_err());
    }
}
