//! Workload forecasts (paper §3, assumption 1).
//!
//! MB2 consumes forecasted arrival rates per query template per fixed
//! interval from an external forecasting system \[37\]. The paper's
//! evaluation assumes a perfect forecast to isolate modeling error (§8.7);
//! this type carries exactly that information.

use mb2_sql::PlanNode;

/// A recurring query template with its cached plan (paper §3 assumes
/// repeated queries execute with cached plans).
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    pub name: String,
    pub sql: String,
    pub plan: PlanNode,
}

/// Forecasted arrival rates for one interval.
#[derive(Debug, Clone)]
pub struct ForecastInterval {
    /// Interval length in seconds.
    pub duration_s: f64,
    /// `rates[i]` = arrivals per second for template `i`.
    pub rates: Vec<f64>,
}

impl ForecastInterval {
    /// Expected number of queries of template `i` in this interval.
    pub fn expected_count(&self, template: usize) -> f64 {
        self.rates.get(template).copied().unwrap_or(0.0) * self.duration_s
    }

    /// Total expected queries in the interval.
    pub fn total_queries(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.duration_s
    }
}

/// A full workload forecast.
#[derive(Debug, Clone)]
pub struct WorkloadForecast {
    pub templates: Vec<QueryTemplate>,
    pub intervals: Vec<ForecastInterval>,
    /// Worker threads executing the forecasted workload.
    pub threads: usize,
}

impl WorkloadForecast {
    pub fn new(templates: Vec<QueryTemplate>, threads: usize) -> WorkloadForecast {
        WorkloadForecast {
            templates,
            intervals: Vec::new(),
            threads: threads.max(1),
        }
    }

    pub fn push_interval(&mut self, duration_s: f64, rates: Vec<f64>) {
        assert_eq!(rates.len(), self.templates.len(), "one rate per template");
        self.intervals.push(ForecastInterval { duration_s, rates });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_sql::plan::{Est, OutputSink};

    fn dummy_template(name: &str) -> QueryTemplate {
        let scan = PlanNode::SeqScan {
            table: "t".into(),
            filter: None,
            est: Est::leaf(10.0, 1, 8.0),
        };
        QueryTemplate {
            name: name.into(),
            sql: "SELECT * FROM t".into(),
            plan: PlanNode::Output {
                input: Box::new(scan),
                sink: OutputSink::Client,
                est: Est::leaf(10.0, 1, 8.0),
            },
        }
    }

    #[test]
    fn expected_counts() {
        let mut f = WorkloadForecast::new(vec![dummy_template("a"), dummy_template("b")], 4);
        f.push_interval(10.0, vec![5.0, 0.5]);
        assert_eq!(f.intervals[0].expected_count(0), 50.0);
        assert_eq!(f.intervals[0].expected_count(1), 5.0);
        assert_eq!(f.intervals[0].total_queries(), 55.0);
        assert_eq!(f.intervals[0].expected_count(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "one rate per template")]
    fn rate_arity_checked() {
        let mut f = WorkloadForecast::new(vec![dummy_template("a")], 1);
        f.push_interval(10.0, vec![1.0, 2.0]);
    }
}
