//! Regenerates one paper result; see `mb2_bench::experiments::fig06_label_accuracy`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig06_label_accuracy::run(scale);
    mb2_bench::report::emit("fig06_label_accuracy", &report);
}
