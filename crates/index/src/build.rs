//! Parallel index build — the paper's flagship contending OU (Fig. 1, §2.1).
//!
//! Builds follow the sort-merge strategy: the input is split into one
//! partition per thread, each thread sorts its partition, and a final k-way
//! merge bulk-loads the tree. More threads shorten the sort phase but add
//! merge fan-in and scheduling overhead, giving the sub-linear scaling curve
//! the Index Build OU-model learns from its thread-count feature.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::time::Instant;

use mb2_common::Value;

use crate::btree::BPlusTree;
use crate::obs::IndexObs;

/// Outcome of a parallel build.
pub struct BuildReport<V> {
    pub tree: BPlusTree<V>,
    pub tuples: usize,
    pub threads: usize,
    pub sort_time: std::time::Duration,
    pub merge_time: std::time::Duration,
}

fn cmp_entry<V>(a: &(Vec<Value>, V), b: &(Vec<Value>, V)) -> CmpOrdering {
    for (x, y) in a.0.iter().zip(&b.0) {
        let ord = x.cmp_total(y);
        if ord != CmpOrdering::Equal {
            return ord;
        }
    }
    a.0.len().cmp(&b.0.len())
}

struct HeapItem<V> {
    entry: (Vec<Value>, V),
    source: usize,
}

impl<V> PartialEq for HeapItem<V> {
    fn eq(&self, other: &Self) -> bool {
        cmp_entry(&self.entry, &other.entry) == CmpOrdering::Equal
    }
}
impl<V> Eq for HeapItem<V> {}
impl<V> PartialOrd for HeapItem<V> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for HeapItem<V> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse for a min-heap.
        cmp_entry(&other.entry, &self.entry)
    }
}

/// Build a B+Tree from unsorted `(key, value)` entries using `threads`
/// parallel sorters. Pass `pace` to inject per-entry spin work (used by the
/// hardware-context emulation); `&|| {}` disables pacing.
pub fn parallel_build<V: Clone + Send>(
    entries: Vec<(Vec<Value>, V)>,
    threads: usize,
    pace: &(dyn Fn() + Sync),
) -> BuildReport<V> {
    parallel_build_observed(entries, threads, pace, None)
}

/// How often the merge loop publishes progress into
/// [`IndexObs::build_entries`]. A batch keeps the per-entry cost at one
/// branch + one addition.
const PROGRESS_BATCH: usize = 1024;

/// [`parallel_build`] with optional instrumentation: per-phase latency,
/// completed-build and in-progress counts, and live entry progress
/// published every 1024 merged entries.
pub fn parallel_build_observed<V: Clone + Send>(
    entries: Vec<(Vec<Value>, V)>,
    threads: usize,
    pace: &(dyn Fn() + Sync),
    obs: Option<&IndexObs>,
) -> BuildReport<V> {
    let threads = threads.max(1);
    let tuples = entries.len();
    if let Some(obs) = obs {
        obs.builds_in_progress.inc();
    }
    let sort_started = Instant::now();

    // Partition into contiguous chunks and sort each in its own thread.
    let chunk = tuples.div_ceil(threads).max(1);
    let mut partitions: Vec<Vec<(Vec<Value>, V)>> = Vec::with_capacity(threads);
    let mut iter = entries.into_iter();
    loop {
        let part: Vec<_> = iter.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        partitions.push(part);
    }
    let sorted: Vec<Vec<(Vec<Value>, V)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|mut part| {
                scope.spawn(move || {
                    for _ in 0..part.len() {
                        pace();
                    }
                    part.sort_by(cmp_entry);
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sorter panicked"))
            .collect()
    });
    let sort_time = sort_started.elapsed();
    if let Some(obs) = obs {
        obs.build_sort_us.record_duration(sort_time);
    }

    // K-way merge into one sorted vector, then bulk-load.
    let merge_started = Instant::now();
    let mut since_progress = 0usize;
    let mut heads: Vec<std::vec::IntoIter<(Vec<Value>, V)>> =
        sorted.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(heads.len());
    for (i, head) in heads.iter_mut().enumerate() {
        if let Some(entry) = head.next() {
            heap.push(HeapItem { entry, source: i });
        }
    }
    let mut merged: Vec<(Vec<Value>, V)> = Vec::with_capacity(tuples);
    while let Some(HeapItem { entry, source }) = heap.pop() {
        merged.push(entry);
        if let Some(obs) = obs {
            since_progress += 1;
            if since_progress == PROGRESS_BATCH {
                obs.build_entries.add(PROGRESS_BATCH as u64);
                since_progress = 0;
            }
        }
        if let Some(next) = heads[source].next() {
            heap.push(HeapItem {
                entry: next,
                source,
            });
        }
    }
    let tree = BPlusTree::bulk_load(merged);
    let merge_time = merge_started.elapsed();
    if let Some(obs) = obs {
        obs.build_entries.add(since_progress as u64);
        obs.build_merge_us.record_duration(merge_time);
        obs.builds.inc();
        obs.builds_in_progress.dec();
    }

    BuildReport {
        tree,
        tuples,
        threads,
        sort_time,
        merge_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    fn entries(n: usize, seed: u64) -> Vec<(Vec<Value>, usize)> {
        let mut rng = Prng::new(seed);
        (0..n)
            .map(|i| (vec![Value::Int(rng.range_i64(0, n as i64 * 4))], i))
            .collect()
    }

    #[test]
    fn build_produces_sorted_complete_tree() {
        let input = entries(20_000, 1);
        let report = parallel_build(input.clone(), 4, &|| {});
        assert_eq!(report.tree.len(), 20_000);
        // Every key present.
        for (k, v) in input.iter().take(50) {
            assert!(report.tree.get(k).contains(v));
        }
        // Range scan yields non-decreasing keys.
        let mut last: Option<i64> = None;
        report
            .tree
            .range(&[Value::Int(i64::MIN)], &[Value::Int(i64::MAX)], |k, _| {
                let cur = k[0].as_i64().unwrap();
                if let Some(prev) = last {
                    assert!(cur >= prev);
                }
                last = Some(cur);
                true
            });
    }

    #[test]
    fn single_thread_build_equivalent() {
        let input = entries(5000, 2);
        let a = parallel_build(input.clone(), 1, &|| {});
        let b = parallel_build(input, 8, &|| {});
        assert_eq!(a.tree.len(), b.tree.len());
        for probe in entries(5000, 2).iter().take(20) {
            assert_eq!(a.tree.get(&probe.0).len(), b.tree.get(&probe.0).len());
        }
    }

    #[test]
    fn empty_input() {
        let report = parallel_build(Vec::<(Vec<Value>, u32)>::new(), 4, &|| {});
        assert_eq!(report.tree.len(), 0);
    }

    #[test]
    fn thread_count_clamped_to_one() {
        let report = parallel_build(entries(100, 3), 0, &|| {});
        assert_eq!(report.threads, 1);
        assert_eq!(report.tree.len(), 100);
    }
}
