//! Linear models: ridge linear regression and Huber regression.
//!
//! The paper notes Huber regression — a robust variant of linear regression —
//! suffices for simple OUs such as arithmetic/filter (§6.4), while remaining
//! cheap to train and explainable.

use mb2_common::{DbError, DbResult};

use crate::data::StandardScaler;
use crate::linalg::{dot, ridge_solve, Matrix};
use crate::Regressor;

/// Ordinary least squares with L2 (ridge) regularization, one weight vector
/// per output. Features are standardized internally.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    pub lambda: f64,
    pub(crate) scaler: StandardScaler,
    /// Per-output weights; last element is the intercept.
    pub(crate) weights: Vec<Vec<f64>>,
}

impl LinearRegression {
    pub fn new(lambda: f64) -> LinearRegression {
        LinearRegression {
            lambda,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
        }
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        LinearRegression::new(1e-6)
    }
}

fn with_bias(row: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(row.len() + 1);
    v.extend_from_slice(row);
    v.push(1.0);
    v
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model(
                "linear regression: empty training set".into(),
            ));
        }
        self.scaler = StandardScaler::fit(x);
        let xs: Vec<Vec<f64>> = self
            .scaler
            .transform(x)
            .into_iter()
            .map(|r| with_bias(&r))
            .collect();
        let design = Matrix::from_rows(&xs);
        let n_outputs = y[0].len();
        self.weights.clear();
        for j in 0..n_outputs {
            let target: Vec<f64> = y.iter().map(|r| r[j]).collect();
            self.weights
                .push(ridge_solve(&design, &target, self.lambda.max(1e-9))?);
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let row = with_bias(&self.scaler.transform_row(x));
        self.weights.iter().map(|w| dot(w, &row)).collect()
    }

    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn size_bytes(&self) -> usize {
        self.weights.iter().map(|w| w.len() * 8).sum::<usize>() + self.scaler.means.len() * 16
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

/// Huber regression via iteratively re-weighted least squares (IRLS).
///
/// Residuals within `delta` standard deviations get quadratic loss; larger
/// residuals get linear loss, which bounds the influence of measurement
/// outliers in runner data.
#[derive(Debug, Clone)]
pub struct HuberRegression {
    pub delta: f64,
    pub lambda: f64,
    pub max_iters: usize,
    pub(crate) scaler: StandardScaler,
    pub(crate) weights: Vec<Vec<f64>>,
}

impl HuberRegression {
    pub fn new(delta: f64, lambda: f64) -> HuberRegression {
        HuberRegression {
            delta,
            lambda,
            max_iters: 30,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
        }
    }
}

impl Default for HuberRegression {
    fn default() -> Self {
        HuberRegression::new(1.35, 1e-6)
    }
}

impl Regressor for HuberRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model(
                "huber regression: empty training set".into(),
            ));
        }
        self.scaler = StandardScaler::fit(x);
        let xs: Vec<Vec<f64>> = self
            .scaler
            .transform(x)
            .into_iter()
            .map(|r| with_bias(&r))
            .collect();
        let n_outputs = y[0].len();
        self.weights.clear();
        for j in 0..n_outputs {
            let target: Vec<f64> = y.iter().map(|r| r[j]).collect();
            self.weights.push(self.fit_one(&xs, &target)?);
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let row = with_bias(&self.scaler.transform_row(x));
        self.weights.iter().map(|w| dot(w, &row)).collect()
    }

    fn name(&self) -> &'static str {
        "huber_regression"
    }

    fn size_bytes(&self) -> usize {
        self.weights.iter().map(|w| w.len() * 8).sum::<usize>() + self.scaler.means.len() * 16
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

impl HuberRegression {
    fn fit_one(&self, xs: &[Vec<f64>], y: &[f64]) -> DbResult<Vec<f64>> {
        // Start from the OLS solution, then reweight.
        let design = Matrix::from_rows(xs);
        let mut w = ridge_solve(&design, y, self.lambda.max(1e-9))?;
        for _ in 0..self.max_iters {
            // Residual scale estimate (MAD-like, guarded from collapse).
            let residuals: Vec<f64> = xs.iter().zip(y).map(|(row, &t)| t - dot(&w, row)).collect();
            let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
            abs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let sigma = (abs[abs.len() / 2] / 0.6745).max(1e-9);
            let threshold = self.delta * sigma;
            // IRLS weights: 1 inside the quadratic zone, threshold/|r| outside.
            let sample_w: Vec<f64> = residuals
                .iter()
                .map(|r| {
                    if r.abs() <= threshold {
                        1.0
                    } else {
                        threshold / r.abs()
                    }
                })
                .collect();
            // Weighted ridge solve.
            let weighted_rows: Vec<Vec<f64>> = xs
                .iter()
                .zip(&sample_w)
                .map(|(row, &sw)| row.iter().map(|v| v * sw.sqrt()).collect())
                .collect();
            let weighted_y: Vec<f64> = y
                .iter()
                .zip(&sample_w)
                .map(|(&t, &sw)| t * sw.sqrt())
                .collect();
            let wd = Matrix::from_rows(&weighted_rows);
            let next = ridge_solve(&wd, &weighted_y, self.lambda.max(1e-9))?;
            let change: f64 = next.iter().zip(&w).map(|(a, b)| (a - b).abs()).sum();
            w = next;
            if change < 1e-9 {
                break;
            }
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    fn linear_data(n: usize, noise: f64, outliers: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Prng::new(99);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = rng.next_f64() * 10.0;
            let b = rng.next_f64() * 5.0;
            let mut target = 3.0 * a - 2.0 * b + 7.0 + rng.gaussian() * noise;
            if i < outliers {
                target += 1000.0;
            }
            x.push(vec![a, b]);
            y.push(vec![target, 2.0 * target]);
        }
        (x, y)
    }

    #[test]
    fn ols_recovers_coefficients() {
        let (x, y) = linear_data(200, 0.0, 0);
        let mut m = LinearRegression::default();
        m.fit(&x, &y).unwrap();
        let p = m.predict_one(&[2.0, 1.0]);
        assert!((p[0] - (3.0 * 2.0 - 2.0 + 7.0)).abs() < 1e-6, "got {p:?}");
        assert!((p[1] - 2.0 * p[0]).abs() < 1e-6);
    }

    #[test]
    fn huber_resists_outliers_better_than_ols() {
        let (x, y) = linear_data(300, 0.5, 15);
        let mut ols = LinearRegression::default();
        let mut huber = HuberRegression::default();
        ols.fit(&x, &y).unwrap();
        huber.fit(&x, &y).unwrap();
        let truth = 3.0 * 5.0 - 2.0 * 2.0 + 7.0;
        let e_ols = (ols.predict_one(&[5.0, 2.0])[0] - truth).abs();
        let e_huber = (huber.predict_one(&[5.0, 2.0])[0] - truth).abs();
        assert!(e_huber < e_ols, "huber {e_huber} vs ols {e_ols}");
        assert!(e_huber < 2.0, "huber error too large: {e_huber}");
    }

    #[test]
    fn empty_fit_is_error() {
        let mut m = LinearRegression::default();
        assert!(m.fit(&[], &[]).is_err());
        let mut h = HuberRegression::default();
        assert!(h.fit(&[], &[]).is_err());
    }

    #[test]
    fn refit_replaces_state() {
        let mut m = LinearRegression::default();
        m.fit(&[vec![1.0], vec![2.0]], &[vec![1.0], vec![2.0]])
            .unwrap();
        m.fit(&[vec![1.0], vec![2.0]], &[vec![10.0], vec![20.0]])
            .unwrap();
        assert!((m.predict_one(&[3.0])[0] - 30.0).abs() < 1e-3);
    }

    #[test]
    fn model_size_nonzero_after_fit() {
        let mut m = LinearRegression::default();
        m.fit(&[vec![1.0], vec![2.0]], &[vec![1.0], vec![2.0]])
            .unwrap();
        assert!(m.size_bytes() > 0);
    }
}
