//! Minimal interactive SQL shell over the embedded engine.
//!
//! Commands:
//! * regular SQL statements terminated by `;`
//! * `\explain <query>` prints the optimizer plan with cardinality estimates
//! * `\mode interpret|compiled` flips the execution-mode knob
//! * `\quit` exits
//!
//! Run with: `cargo run --release --example sql_shell`

use std::io::{BufRead, Write};

use mb2::engine::exec::ExecutionMode;
use mb2::engine::Database;

fn main() {
    let db = Database::open();
    let mut session = db.session();
    println!("mb2 sql shell — type \\quit to exit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("mb2> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.starts_with('\\') {
            let mut parts = line.splitn(2, ' ');
            match parts.next().unwrap_or("") {
                "\\quit" | "\\q" => break,
                "\\mode" => match parts.next().map(str::trim) {
                    Some("interpret") => {
                        db.set_execution_mode(ExecutionMode::Interpret);
                        println!("execution mode: interpret");
                    }
                    Some("compiled") => {
                        db.set_execution_mode(ExecutionMode::Compiled);
                        println!("execution mode: compiled");
                    }
                    _ => println!("usage: \\mode interpret|compiled"),
                },
                "\\explain" => match parts.next() {
                    Some(sql) => match db.prepare(sql.trim_end_matches(';')) {
                        Ok(plan) => print!("{}", plan.explain()),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: \\explain <query>"),
                },
                other => println!("unknown command {other}"),
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        if !line.ends_with(';') {
            continue;
        }
        let sql = buffer.trim_end().trim_end_matches(';').to_string();
        buffer.clear();
        if sql.trim().is_empty() {
            continue;
        }
        let started = std::time::Instant::now();
        match session.execute(&sql) {
            Ok(result) => {
                for row in result.rows.iter().take(50) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if result.rows.len() > 50 {
                    println!("... ({} rows total)", result.rows.len());
                }
                println!(
                    "-- {} rows in {:.2?}",
                    result.rows_affected.max(result.rows.len()),
                    started.elapsed()
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
