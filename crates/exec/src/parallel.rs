//! Morsel-driven intra-query parallelism.
//!
//! A shared [`ExecPool`] (owned by the engine, sized by the `parallelism`
//! knob) runs parallelizable *leaf chains* — a base-table sequential scan
//! plus any stack of Filter/Project stages above it — by carving the heap
//! into fixed-size slot-range **morsels** ([`DEFAULT_MORSEL_SLOTS`]).
//! Workers pull morsel indices from a shared atomic cursor, evaluate the
//! chain over their range with thread-local state, and send results to the
//! issuing thread, which re-emits them in morsel order (an **ordered
//! gather**). Because disjoint slot ranges partition the heap exactly
//! (`Table::scan_visible_range`) and emission is in range order, the row
//! stream a parallel chain produces is byte-identical to the serial scan —
//! heap order is preserved, so `LIMIT` prefixes and client-visible row
//! order do not change with the worker count.
//!
//! Pipeline breakers merge per-morsel partial state on the issuing thread,
//! again in morsel order: the hash-join build concatenates per-morsel rows
//! (so bucket entry order equals serial insertion order) and the
//! pre-aggregation merges per-morsel group maps with order-sensitive
//! combine functions. See DESIGN.md "Parallel execution model".
//!
//! OU accounting: workers count work into a private `WorkerAcct` keyed by
//! `(node id, OU)` together with per-section wall time. At operator close
//! the accounts of all workers fold into the operator's single `OpSpan`
//! (`OuTracker::absorb`), so a recorder sees exactly one measurement per
//! (node, OU) whose tuple/byte features equal the serial totals and whose
//! elapsed time is the *sum* of concurrent worker time — true aggregate
//! work, which is what the OU models train on.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult, OuKind};
use mb2_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use mb2_storage::{Table, Ts};

use crate::compile::Evaluator;
use crate::tracker::WorkCounts;

/// Slots per morsel. Matches half a storage segment: large enough that the
/// per-morsel dispatch cost (one atomic fetch-add plus one channel send) is
/// noise, small enough that a 40k-row table still fans out over every
/// worker. Tests override it via `ExecContext::with_morsel_slots` to
/// exercise multi-morsel plans on small tables.
pub const DEFAULT_MORSEL_SLOTS: usize = 2048;

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Pool observability handles, registered against the engine's
/// [`MetricsRegistry`] so they flow through the existing Prometheus/JSON
/// endpoints. A pool built with [`ExecPool::new`] keeps private handles.
struct PoolObs {
    /// Workers currently executing a job.
    busy: Arc<Gauge>,
    /// Depth of the job queue observed at each submit.
    queue_depth: Arc<Histogram>,
    /// Morsels processed, labeled per worker.
    morsels: Vec<Arc<Counter>>,
    /// Jobs submitted but not yet picked up (feeds `queue_depth`).
    pending: AtomicUsize,
}

impl PoolObs {
    fn registered(workers: usize, registry: &MetricsRegistry) -> PoolObs {
        registry
            .gauge("mb2_exec_pool_workers", "Size of the execution worker pool")
            .set(workers as i64);
        PoolObs {
            busy: registry.gauge(
                "mb2_exec_pool_busy_workers",
                "Execution pool workers currently running a job",
            ),
            queue_depth: registry.histogram(
                "mb2_exec_pool_queue_depth",
                "Execution pool job queue depth sampled at submit",
            ),
            morsels: (0..workers)
                .map(|i| {
                    registry.counter_with(
                        "mb2_exec_pool_morsels_total",
                        &[("worker", &i.to_string())],
                        "Morsels processed by each execution pool worker",
                    )
                })
                .collect(),
            pending: AtomicUsize::new(0),
        }
    }

    fn private(workers: usize) -> PoolObs {
        PoolObs {
            busy: Arc::new(Gauge::new()),
            queue_depth: Arc::new(Histogram::new()),
            morsels: (0..workers).map(|_| Arc::new(Counter::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    fn morsel_done(&self, worker: usize) {
        if let Some(c) = self.morsels.get(worker) {
            c.inc();
        }
    }
}

/// A shared pool of persistent execution workers. Queries submit one job
/// per participating worker; each job drains morsels from a per-query
/// cursor. Jobs never block on other jobs and queries are never executed
/// *from* pool threads, so the pool cannot deadlock however many queries
/// share it. Dropping the pool closes the job channel and joins every
/// worker.
pub struct ExecPool {
    tx: Mutex<Option<Sender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    obs: Arc<PoolObs>,
    workers: usize,
}

impl ExecPool {
    /// A pool with private (unregistered) observability handles.
    pub fn new(workers: usize) -> Arc<ExecPool> {
        Self::build(workers, None)
    }

    /// A pool whose gauges/histograms/counters are registered in `registry`
    /// (the engine path).
    pub fn with_metrics(workers: usize, registry: &MetricsRegistry) -> Arc<ExecPool> {
        Self::build(workers, Some(registry))
    }

    fn build(workers: usize, registry: Option<&MetricsRegistry>) -> Arc<ExecPool> {
        let workers = workers.max(1);
        let obs = Arc::new(match registry {
            Some(r) => PoolObs::registered(workers, r),
            None => PoolObs::private(workers),
        });
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let obs = Arc::clone(&obs);
                std::thread::Builder::new()
                    .name(format!("mb2-exec-{i}"))
                    .spawn(move || loop {
                        // Holding the lock across the blocking recv is the
                        // point: exactly one idle worker waits on the
                        // channel; the rest queue on the mutex. Dispatch is
                        // serialized (jobs are rare — one per worker per
                        // query) while job *execution* is fully parallel.
                        let job = rx.lock().recv();
                        match job {
                            Ok(job) => {
                                obs.pending.fetch_sub(1, Ordering::Relaxed);
                                obs.busy.inc();
                                job(i);
                                obs.busy.dec();
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn exec pool worker")
            })
            .collect();
        Arc::new(ExecPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            obs,
            workers,
        })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers currently executing a job (test/observability hook).
    pub fn busy_workers(&self) -> i64 {
        self.obs.busy.get()
    }

    /// Total morsels processed across all workers.
    pub fn morsels_processed(&self) -> u64 {
        self.obs.morsels.iter().map(|c| c.get()).sum()
    }

    fn submit(&self, job: Job) {
        let depth = self.obs.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.queue_depth.record(depth as u64);
        let tx = self.tx.lock();
        tx.as_ref()
            .expect("exec pool already shut down")
            .send(job)
            .expect("exec pool workers exited");
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining jobs and exit.
        self.tx.lock().take();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ----------------------------------------------------------------------
// Worker-side accounting
// ----------------------------------------------------------------------

/// One worker's work/time accounting, keyed by `(node id, OU)`.
#[derive(Default)]
pub(crate) struct WorkerAcct {
    spans: HashMap<(u32, OuKind), SpanAcct>,
}

#[derive(Default, Clone, Copy)]
pub(crate) struct SpanAcct {
    pub work: WorkCounts,
    pub elapsed_us: f64,
}

impl WorkerAcct {
    pub fn span(&mut self, id: u32, ou: OuKind) -> &mut SpanAcct {
        self.spans.entry((id, ou)).or_default()
    }

    pub fn get(&self, id: u32, ou: OuKind) -> Option<&SpanAcct> {
        self.spans.get(&(id, ou))
    }

    fn fold(&mut self, other: WorkerAcct) {
        for (key, acct) in other.spans {
            let mine = self.spans.entry(key).or_default();
            mine.work.merge(&acct.work);
            mine.elapsed_us += acct.elapsed_us;
        }
    }
}

pub(crate) fn elapsed_us(t0: Instant) -> f64 {
    t0.elapsed().as_nanos() as f64 / 1000.0
}

// ----------------------------------------------------------------------
// Parallelizable leaf chains
// ----------------------------------------------------------------------

/// A Filter or Project stage stacked above the scan inside a parallel
/// chain. Evaluators are `Send + Sync`, so stages are shared with workers
/// by `Arc`ing the whole spec.
pub(crate) enum ParStage {
    Filter {
        id: u32,
        eval: Evaluator,
        ops: u64,
    },
    Project {
        id: u32,
        evals: Vec<Evaluator>,
        ops: u64,
    },
}

/// A thread-safe description of a parallelizable leaf chain: a sequential
/// base-table scan (with its fused predicate) plus zero or more
/// Filter/Project stages. Everything a worker needs — table handle,
/// snapshot timestamps, evaluators — is owned here, so the spec can cross
/// threads without borrowing the issuing transaction (`Transaction` itself
/// is not `Sync`; MVCC visibility only needs `(read_ts, own)`).
pub(crate) struct ChainSpec {
    pub table: Arc<Table>,
    pub read_ts: Ts,
    pub own: Ts,
    pub scan_id: u32,
    pub filter: Option<Evaluator>,
    pub filter_ops: u64,
    pub stages: Vec<ParStage>,
    /// Maintain work counts (mirrors `OpSpan::active`).
    pub track: bool,
    pub morsel_slots: usize,
    /// Slot count snapshot taken at plan time; ranges beyond it are never
    /// dispatched, so concurrent appends don't skew the morsel count.
    pub total_slots: usize,
}

impl ChainSpec {
    pub fn n_morsels(&self) -> usize {
        self.total_slots.div_ceil(self.morsel_slots.max(1))
    }

    /// The `(node id, OU)` spans this chain accounts for, bottom-up. The
    /// issuing thread creates an `OpSpan` for each so that zero-work spans
    /// are still recorded (preserving the plan's OU set under LIMIT).
    pub fn span_keys(&self) -> Vec<(u32, OuKind)> {
        let mut keys = vec![(self.scan_id, OuKind::SeqScan)];
        if self.filter.is_some() {
            keys.push((self.scan_id, OuKind::ArithmeticFilter));
        }
        for stage in &self.stages {
            match stage {
                ParStage::Filter { id, .. } | ParStage::Project { id, .. } => {
                    keys.push((*id, OuKind::ArithmeticFilter));
                }
            }
        }
        keys
    }

    /// Evaluate one morsel: scan the slot range with the fused predicate,
    /// then run the stacked stages. Work/time accounting mirrors the serial
    /// operators exactly (same formulas, summed across morsels), so folded
    /// per-(node, OU) feature totals equal the serial engine's.
    fn run_morsel(&self, morsel: usize, acct: &mut WorkerAcct) -> DbResult<Vec<Arc<Tuple>>> {
        let start = morsel * self.morsel_slots;
        let end = (start + self.morsel_slots).min(self.total_slots);
        let mut rows: Vec<Arc<Tuple>> = Vec::new();
        let mut scanned = 0u64;
        let mut scanned_bytes = 0u64;
        let mut err: Option<DbError> = None;
        let t0 = Instant::now();
        self.table
            .scan_visible_range(start, end, self.read_ts, self.own, |_slot, tuple| {
                if self.track {
                    scanned += 1;
                    scanned_bytes += tuple_size_bytes(tuple) as u64;
                }
                let keep = match &self.filter {
                    None => true,
                    Some(ev) => match ev.eval_bool(tuple) {
                        Ok(k) => k,
                        Err(e) => {
                            err = Some(e);
                            return false;
                        }
                    },
                };
                if keep {
                    rows.push(Arc::clone(tuple));
                }
                true
            });
        if self.track {
            let scan = acct.span(self.scan_id, OuKind::SeqScan);
            scan.work.tuples += scanned;
            scan.work.bytes += scanned_bytes;
            scan.work.allocated_bytes += scanned_bytes;
            scan.elapsed_us += elapsed_us(t0);
            if self.filter.is_some() {
                // The fused predicate ran inside the scan section; its work
                // lands on the Arithmetic/Filter span with no elapsed time,
                // exactly as the serial fused scan accounts it.
                let f = acct.span(self.scan_id, OuKind::ArithmeticFilter);
                f.work.tuples += scanned;
                f.work.comparisons += scanned * self.filter_ops;
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        for stage in &self.stages {
            let t0 = Instant::now();
            match stage {
                ParStage::Filter { id, eval, ops } => {
                    let n_in = rows.len() as u64;
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if eval.eval_bool(&row)? {
                            kept.push(row);
                        }
                    }
                    rows = kept;
                    if self.track {
                        let s = acct.span(*id, OuKind::ArithmeticFilter);
                        s.work.tuples += n_in;
                        s.work.comparisons += n_in * ops;
                        s.elapsed_us += elapsed_us(t0);
                    }
                }
                ParStage::Project { id, evals, ops } => {
                    let n = rows.len() as u64;
                    let mut out = Vec::with_capacity(rows.len());
                    for row in &rows {
                        let projected: Tuple =
                            evals.iter().map(|e| e.eval(row)).collect::<DbResult<_>>()?;
                        out.push(Arc::new(projected));
                    }
                    rows = out;
                    if self.track {
                        let s = acct.span(*id, OuKind::ArithmeticFilter);
                        s.work.tuples += n;
                        s.work.comparisons += n * (*ops).max(1);
                        s.elapsed_us += elapsed_us(t0);
                    }
                }
            }
        }
        Ok(rows)
    }
}

// ----------------------------------------------------------------------
// Ordered gather
// ----------------------------------------------------------------------

enum Msg<T> {
    Morsel(usize, DbResult<T>),
    Done(WorkerAcct),
}

/// Consumer watermark for bounded read-ahead. Workers may claim a morsel at
/// most `window` beyond the last index the consumer has taken; beyond that
/// they block here until the consumer catches up (or the run is cancelled).
/// This bounds gather-buffer memory and makes LIMIT cancellation effective:
/// without it, workers would race through the whole heap while the consumer
/// is still cutting the first morsel.
struct Progress {
    consumed: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl Progress {
    /// Wait until morsel `m` is within the read-ahead window. Returns
    /// `false` if the run was cancelled while waiting. The claimant of the
    /// consumer's next morsel is never blocked (window ≥ 1), so consumer
    /// and workers cannot deadlock.
    fn admit(&self, m: usize, window: usize, cancel: &AtomicBool) -> bool {
        loop {
            if cancel.load(Ordering::Relaxed) {
                return false;
            }
            let consumed = self.consumed.lock().unwrap();
            if m < *consumed + window {
                return true;
            }
            // Timed wait: a lost wakeup (cancel racing the notify) costs
            // one timeout tick, not a stuck pool worker.
            let _ = self
                .cv
                .wait_timeout(consumed, std::time::Duration::from_millis(10));
        }
    }

    fn advance(&self, consumed: usize) {
        *self.consumed.lock().unwrap() = consumed;
        self.cv.notify_all();
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// One parallel chain execution in flight. Workers race down the morsel
/// cursor and send `(morsel index, result)` messages; the issuing thread
/// pulls them with [`ParallelRun::next_morsel`], which buffers out-of-order
/// arrivals and yields strictly in morsel order — the ordered gather that
/// makes parallel output byte-identical to serial. `finish` cancels
/// outstanding work (LIMIT early-cut) and collects every worker's
/// accounting.
pub(crate) struct ParallelRun<T> {
    rx: Receiver<Msg<T>>,
    buffered: BTreeMap<usize, DbResult<T>>,
    next: usize,
    n_morsels: usize,
    jobs: usize,
    done_jobs: usize,
    acct: WorkerAcct,
    cancel: Arc<AtomicBool>,
    progress: Arc<Progress>,
}

/// Launch a parallel chain on `pool`. `consume` runs on the worker for each
/// morsel's filtered/projected rows (breakers use it to build per-morsel
/// partial state); its output travels to the issuing thread through the
/// ordered gather.
pub(crate) fn start<T, F>(pool: &ExecPool, chain: Arc<ChainSpec>, consume: F) -> ParallelRun<T>
where
    T: Send + 'static,
    F: Fn(&ChainSpec, Vec<Arc<Tuple>>, &mut WorkerAcct) -> DbResult<T> + Send + Sync + 'static,
{
    let n_morsels = chain.n_morsels();
    let jobs = pool.workers().min(n_morsels);
    // Read-ahead window: enough that no worker idles waiting on the
    // consumer in steady state, small enough that LIMIT cancellation cuts
    // most of the heap.
    let window = jobs * 2;
    let (tx, rx) = channel::<Msg<T>>();
    let cancel = Arc::new(AtomicBool::new(false));
    let cursor = Arc::new(AtomicUsize::new(0));
    let progress = Arc::new(Progress {
        consumed: std::sync::Mutex::new(0),
        cv: std::sync::Condvar::new(),
    });
    let consume = Arc::new(consume);
    for _ in 0..jobs {
        let chain = Arc::clone(&chain);
        let tx = tx.clone();
        let cancel = Arc::clone(&cancel);
        let cursor = Arc::clone(&cursor);
        let progress = Arc::clone(&progress);
        let consume = Arc::clone(&consume);
        let obs = Arc::clone(&pool.obs);
        pool.submit(Box::new(move |worker| {
            let mut acct = WorkerAcct::default();
            loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= n_morsels {
                    break;
                }
                if !progress.admit(m, window, &cancel) {
                    break;
                }
                let res = chain
                    .run_morsel(m, &mut acct)
                    .and_then(|rows| consume(&chain, rows, &mut acct));
                obs.morsel_done(worker);
                let failed = res.is_err();
                if tx.send(Msg::Morsel(m, res)).is_err() || failed {
                    break;
                }
            }
            let _ = tx.send(Msg::Done(acct));
        }));
    }
    ParallelRun {
        rx,
        buffered: BTreeMap::new(),
        next: 0,
        n_morsels,
        jobs,
        done_jobs: 0,
        acct: WorkerAcct::default(),
        cancel,
        progress,
    }
}

impl<T> ParallelRun<T> {
    /// The next morsel's result, in morsel order. `None` = all morsels
    /// yielded. After an `Err` the run is cancelled; callers should stop
    /// pulling and let `finish`/drop clean up.
    pub fn next_morsel(&mut self) -> Option<DbResult<T>> {
        while self.next < self.n_morsels {
            if let Some(res) = self.buffered.remove(&self.next) {
                self.next += 1;
                if res.is_err() {
                    self.cancel.store(true, Ordering::Relaxed);
                }
                self.progress.advance(self.next);
                return Some(res);
            }
            match self.rx.recv() {
                Ok(Msg::Morsel(idx, res)) => {
                    self.buffered.insert(idx, res);
                }
                Ok(Msg::Done(acct)) => {
                    self.done_jobs += 1;
                    self.acct.fold(acct);
                }
                Err(_) => {
                    // Every worker exited without producing morsel `next`:
                    // some earlier morsel failed. Surface the first error.
                    self.next = self.n_morsels;
                    let err = self
                        .buffered
                        .values()
                        .find_map(|r| r.as_ref().err().cloned())
                        .unwrap_or_else(|| {
                            DbError::Execution("parallel scan worker vanished".into())
                        });
                    return Some(Err(err));
                }
            }
        }
        None
    }

    /// Cancel outstanding morsels and collect all workers' accounting. Must
    /// be called exactly once, at operator close (also safe after natural
    /// exhaustion — workers past the cursor end are already done).
    pub fn finish(mut self) -> WorkerAcct {
        self.cancel.store(true, Ordering::Relaxed);
        self.progress.wake_all();
        while self.done_jobs < self.jobs {
            match self.rx.recv() {
                Ok(Msg::Done(acct)) => {
                    self.done_jobs += 1;
                    self.acct.fold(acct);
                }
                Ok(Msg::Morsel(..)) => {}
                Err(_) => break,
            }
        }
        std::mem::take(&mut self.acct)
    }
}

impl<T> Drop for ParallelRun<T> {
    /// A run abandoned without `finish` (error propagation drops the
    /// operator) must still cancel, or workers parked on the read-ahead
    /// window would wait forever for a consumer that is gone.
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Relaxed);
        self.progress.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_jobs_on_all_workers_and_joins_on_drop() {
        let pool = ExecPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel();
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(Box::new(move |_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..32 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        drop(pool); // joins workers; must not hang
    }

    #[test]
    fn pool_registers_metrics() {
        let registry = MetricsRegistry::new();
        let pool = ExecPool::with_metrics(3, &registry);
        let (tx, rx) = channel();
        pool.submit(Box::new(move |_| {
            tx.send(()).unwrap();
        }));
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|s| s.family.clone())
            .collect();
        assert!(names.iter().any(|n| n == "mb2_exec_pool_workers"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_busy_workers"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_queue_depth"));
        assert!(names.iter().any(|n| n == "mb2_exec_pool_morsels_total"));
    }

    #[test]
    fn worker_acct_folds_by_key() {
        let mut a = WorkerAcct::default();
        a.span(1, OuKind::SeqScan).work.tuples = 10;
        a.span(1, OuKind::SeqScan).elapsed_us = 5.0;
        let mut b = WorkerAcct::default();
        b.span(1, OuKind::SeqScan).work.tuples = 7;
        b.span(1, OuKind::SeqScan).elapsed_us = 2.0;
        b.span(2, OuKind::ArithmeticFilter).work.comparisons = 3;
        a.fold(b);
        let s = a.get(1, OuKind::SeqScan).unwrap();
        assert_eq!(s.work.tuples, 17);
        assert!((s.elapsed_us - 7.0).abs() < 1e-9);
        assert_eq!(
            a.get(2, OuKind::ArithmeticFilter).unwrap().work.comparisons,
            3
        );
    }
}
