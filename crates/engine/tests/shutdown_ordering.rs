//! Regression tests for `Database::shutdown` ordering: registered
//! background tasks (the autopilot) must be quiesced while the exec
//! pool, GC, and WAL flusher are still alive, so a mid-flight action can
//! finish cleanly instead of erroring against torn-down subsystems.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use mb2_engine::{BackgroundTask, Database, DatabaseConfig, Knobs};

/// A task whose quiesce exercises the subsystems shutdown tears down:
/// a parallel query (exec pool), a WAL-logged insert (flusher), and a GC
/// pass. If shutdown ordering regresses — pool/GC/WAL going away before
/// the task — these operations fail and the test panics.
struct ProbeTask {
    db: Weak<Database>,
    ran: AtomicBool,
}

impl BackgroundTask for ProbeTask {
    fn name(&self) -> &str {
        "probe"
    }

    fn quiesce(&self) {
        let db = self.db.upgrade().expect("engine alive during quiesce");
        // Exec pool must still exist for a parallel-eligible scan.
        assert!(
            db.exec_pool().is_some(),
            "exec pool torn down before background tasks were quiesced"
        );
        let r = db
            .execute("SELECT * FROM t WHERE a > 0")
            .expect("query during quiesce");
        assert_eq!(r.rows.len(), 2);
        // WAL must still accept (and flush) a logged write.
        db.execute("INSERT INTO t VALUES (3, 30)")
            .expect("WAL-logged insert during quiesce");
        db.wal()
            .expect("wal attached")
            .flush_now()
            .expect("WAL flush during quiesce");
        // GC must still run a pass.
        db.gc().run_once();
        self.ran.store(true, Ordering::Release);
    }
}

#[test]
fn background_tasks_quiesce_before_subsystems() {
    let path =
        std::env::temp_dir().join(format!("mb2_shutdown_ordering_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let db = Arc::new(
        Database::new(DatabaseConfig {
            wal_enabled: true,
            wal_path: Some(path.clone()),
            gc_interval: Some(Duration::from_secs(30)),
            knobs: Knobs {
                parallelism: 2,
                ..Knobs::default()
            },
            ..DatabaseConfig::default()
        })
        .unwrap(),
    );
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

    let task = Arc::new(ProbeTask {
        db: Arc::downgrade(&db),
        ran: AtomicBool::new(false),
    });
    db.register_background_task(Arc::downgrade(&task) as Weak<dyn BackgroundTask>);

    db.shutdown();
    assert!(
        task.ran.load(Ordering::Acquire),
        "registered task was not quiesced"
    );
    // Second shutdown (e.g. from Drop) must not re-run drained tasks.
    task.ran.store(false, Ordering::Release);
    db.shutdown();
    assert!(!task.ran.load(Ordering::Acquire));
    drop(db);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dropped_task_is_skipped() {
    let db = Arc::new(Database::open());
    let task = Arc::new(ProbeTask {
        db: Arc::downgrade(&db),
        ran: AtomicBool::new(false),
    });
    db.register_background_task(Arc::downgrade(&task) as Weak<dyn BackgroundTask>);
    drop(task);
    // Upgrade fails; shutdown must not panic.
    db.shutdown();
}
