//! Random forest regressor: bagged multi-output CART trees with random
//! feature subspaces. The paper uses 50 estimators (§8) and finds forests
//! among the best-performing OU-model algorithms.

use mb2_common::{DbError, DbResult, Prng};

use crate::tree::{DecisionTree, TreeConfig};
use crate::Regressor;

/// Random forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub n_estimators: usize,
    pub tree: TreeConfig,
    /// Fraction of `sqrt(n_features)` heuristics is applied when `None`.
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_estimators: 50,
            tree: TreeConfig::default(),
            max_features: None,
            seed: 3,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    pub config: ForestConfig,
    pub(crate) trees: Vec<DecisionTree>,
}

impl RandomForest {
    pub fn new(config: ForestConfig) -> RandomForest {
        RandomForest {
            config,
            trees: Vec::new(),
        }
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest::new(ForestConfig::default())
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model("random forest: empty training set".into()));
        }
        let n = x.len();
        let n_features = x[0].len();
        // Regression default: consider ~n_features/3 features per split,
        // at least 1 (scikit-learn convention).
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| (n_features / 3).max(1));
        let mut rng = Prng::new(self.config.seed);
        self.trees.clear();
        for t in 0..self.config.n_estimators {
            // Bootstrap sample.
            let indices: Vec<usize> = (0..n).map(|_| rng.range_usize(0, n)).collect();
            let tree_cfg = TreeConfig {
                max_features: Some(max_features),
                seed: self.config.seed.wrapping_add(t as u64 * 7919),
                ..self.config.tree.clone()
            };
            let mut tree = DecisionTree::new(tree_cfg);
            tree.fit_indices(x, y, &indices)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let mut acc: Vec<f64> = Vec::new();
        for tree in &self.trees {
            let p = tree.predict_one(x);
            if acc.is_empty() {
                acc = p;
            } else {
                for (a, v) in acc.iter_mut().zip(&p) {
                    *a += v;
                }
            }
        }
        let n = self.trees.len().max(1) as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }

    fn size_bytes(&self) -> usize {
        self.trees.iter().map(Regressor::size_bytes).sum()
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::mean_relative_error;
    use mb2_common::Prng;

    fn noisy_data(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Prng::new(42);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64() * 10.0;
            let b = rng.next_f64() * 10.0;
            let target = a * b + 5.0 * a + rng.gaussian() * 0.5;
            x.push(vec![a, b]);
            y.push(vec![target.max(0.1)]);
        }
        (x, y)
    }

    #[test]
    fn learns_interaction_term() {
        let (x, y) = noisy_data(1500);
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 20,
            ..ForestConfig::default()
        });
        forest.fit(&x, &y).unwrap();
        let preds = forest.predict(&x[..200]);
        let err = mean_relative_error(&y[..200], &preds);
        assert!(err < 0.2, "relative error {err}");
    }

    #[test]
    fn trains_requested_estimators() {
        let (x, y) = noisy_data(100);
        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 7,
            ..ForestConfig::default()
        });
        forest.fit(&x, &y).unwrap();
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_data(200);
        let mut a = RandomForest::new(ForestConfig {
            n_estimators: 5,
            ..ForestConfig::default()
        });
        let mut b = RandomForest::new(ForestConfig {
            n_estimators: 5,
            ..ForestConfig::default()
        });
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_one(&x[0]), b.predict_one(&x[0]));
    }

    #[test]
    fn empty_fit_is_error() {
        let mut forest = RandomForest::default();
        assert!(forest.fit(&[], &[]).is_err());
    }
}
