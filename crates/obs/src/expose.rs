//! Exposition: Prometheus v0 text format and a JSON snapshot.
//!
//! Both formats are rendered from [`MetricsRegistry::snapshot`], so a scrape
//! never holds the registry lock while formatting. Output order is
//! deterministic (sorted by series key) — tests can assert on substrings and
//! diffs between scrapes stay readable.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricHandle, MetricsRegistry};

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

impl MetricsRegistry {
    /// Render every registered series in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers once per family, then
    /// one sample line per series. Histograms render as cumulative
    /// `_bucket{le="..."}` samples (only non-empty buckets, plus the
    /// mandatory `le="+Inf"`), `_sum`, and `_count`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for m in self.snapshot() {
            if last_family.as_deref() != Some(m.family.as_str()) {
                let kind = match m.handle {
                    MetricHandle::Counter(_) => "counter",
                    MetricHandle::Gauge(_) | MetricHandle::FloatGauge(_) => "gauge",
                    MetricHandle::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.family, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.family, kind);
                last_family = Some(m.family.clone());
            }
            match &m.handle {
                MetricHandle::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.family,
                        render_labels(&m.labels, None),
                        c.get()
                    );
                }
                MetricHandle::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.family,
                        render_labels(&m.labels, None),
                        g.get()
                    );
                }
                MetricHandle::FloatGauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.family,
                        render_labels(&m.labels, None),
                        g.get()
                    );
                }
                MetricHandle::Histogram(h) => {
                    let snap = h.snapshot();
                    for (upper, cum) in snap.cumulative_buckets() {
                        let le = upper.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.family,
                            render_labels(&m.labels, Some(("le", &le))),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.family,
                        render_labels(&m.labels, Some(("le", "+Inf"))),
                        snap.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.family,
                        render_labels(&m.labels, None),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.family,
                        render_labels(&m.labels, None),
                        snap.count
                    );
                }
            }
        }
        out
    }

    /// Render every registered series as a JSON array. Counters and gauges
    /// carry `value`; histograms carry summary stats and the common
    /// quantiles instead of raw buckets (dashboards want p50/p95/p99, not
    /// 1920 numbers).
    pub fn json_snapshot(&self) -> String {
        let mut entries = Vec::new();
        for m in self.snapshot() {
            let family = escape_json(&m.family);
            let labels = json_labels(&m.labels);
            let entry = match &m.handle {
                MetricHandle::Counter(c) => format!(
                    "{{\"name\":\"{family}\",\"type\":\"counter\",\"labels\":{labels},\"value\":{}}}",
                    c.get()
                ),
                MetricHandle::Gauge(g) => format!(
                    "{{\"name\":\"{family}\",\"type\":\"gauge\",\"labels\":{labels},\"value\":{}}}",
                    g.get()
                ),
                MetricHandle::FloatGauge(g) => format!(
                    "{{\"name\":\"{family}\",\"type\":\"gauge\",\"labels\":{labels},\"value\":{}}}",
                    g.get()
                ),
                MetricHandle::Histogram(h) => {
                    let snap = h.snapshot();
                    format!(
                        "{{\"name\":\"{family}\",\"type\":\"histogram\",\"labels\":{labels},\
                         \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
                         \"p50\":{},\"p95\":{},\"p99\":{}}}",
                        snap.count,
                        snap.sum,
                        if snap.is_empty() { 0 } else { snap.min },
                        snap.max,
                        snap.mean(),
                        snap.quantile(0.5),
                        snap.quantile(0.95),
                        snap.quantile(0.99),
                    )
                }
            };
            entries.push(entry);
        }
        format!("[{}]", entries.join(","))
    }
}

/// Format a one-line human summary of a histogram snapshot (used by bench
/// reports).
pub fn summarize(snap: &HistogramSnapshot) -> String {
    if snap.is_empty() {
        return "count=0".to_string();
    }
    format!(
        "count={} mean={:.1} p50={} p95={} p99={} max={}",
        snap.count,
        snap.mean(),
        snap.quantile(0.5),
        snap.quantile(0.95),
        snap.quantile(0.99),
        snap.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_counter_and_gauge() {
        let r = MetricsRegistry::new();
        r.counter("mb2_a_total", "Counts a.").add(7);
        r.gauge("mb2_b", "Gauges b.").set(-3);
        let text = r.prometheus_text();
        assert!(text.contains("# HELP mb2_a_total Counts a."));
        assert!(text.contains("# TYPE mb2_a_total counter"));
        assert!(text.contains("mb2_a_total 7"));
        assert!(text.contains("# TYPE mb2_b gauge"));
        assert!(text.contains("mb2_b -3"));
    }

    #[test]
    fn prometheus_labeled_series_share_one_header() {
        let r = MetricsRegistry::new();
        r.counter_with("mb2_stmt_total", &[("kind", "insert")], "Statements.")
            .inc();
        r.counter_with("mb2_stmt_total", &[("kind", "select")], "Statements.")
            .add(2);
        let text = r.prometheus_text();
        assert_eq!(text.matches("# TYPE mb2_stmt_total counter").count(), 1);
        assert!(text.contains("mb2_stmt_total{kind=\"insert\"} 1"));
        assert!(text.contains("mb2_stmt_total{kind=\"select\"} 2"));
    }

    #[test]
    fn prometheus_histogram_shape() {
        let r = MetricsRegistry::new();
        let h = r.histogram("mb2_lat_us", "Latency.");
        h.record(5);
        h.record(5);
        h.record(100);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE mb2_lat_us histogram"));
        assert!(text.contains("mb2_lat_us_bucket{le=\"5\"} 2"));
        assert!(text.contains("mb2_lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mb2_lat_us_sum 110"));
        assert!(text.contains("mb2_lat_us_count 3"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let r = MetricsRegistry::new();
        r.counter("mb2_c_total", "C.").inc();
        r.histogram("mb2_h_us", "H.").record(42);
        let json = r.json_snapshot();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"mb2_c_total\""));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_with("mb2_esc_total", &[("q", "say \"hi\"")], "Esc.")
            .inc();
        let text = r.prometheus_text();
        assert!(text.contains("q=\"say \\\"hi\\\"\""));
    }
}
