//! Measures runtime-metrics overhead; see `mb2_bench::experiments::obs_overhead`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::obs_overhead::run(scale);
    mb2_bench::report::emit("obs_overhead", &report);
}
