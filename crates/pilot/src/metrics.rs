//! `mb2_pilot_*` metric families.
//!
//! Everything the control loop does is observable: how often it ticked,
//! what it considered, what it applied (by action label), what it
//! predicted, what it then observed, and what it had to revert.

use std::sync::Arc;

use mb2_engine::obs::{Counter, FloatGauge, Gauge, MetricsRegistry};

/// Handles for the autopilot's metric families, registered once in the
/// engine's shared [`MetricsRegistry`] (registration is idempotent, so a
/// restart of the pilot reuses the existing series).
pub struct PilotMetrics {
    registry: Arc<MetricsRegistry>,
    /// Control-loop ticks executed (`mb2_pilot_ticks_total`).
    pub ticks: Arc<Counter>,
    /// Candidate actions priced (`mb2_pilot_actions_considered_total`).
    pub considered: Arc<Counter>,
    /// Actions rolled back by the verify step
    /// (`mb2_pilot_actions_reverted_total`).
    pub reverted: Arc<Counter>,
    /// 1 while an action is deployed but not yet verified
    /// (`mb2_pilot_action_inflight`).
    pub inflight: Arc<Gauge>,
    /// Predicted avg query runtime without the last action, µs.
    pub predicted_baseline_us: Arc<FloatGauge>,
    /// Predicted avg query runtime after the last action, µs.
    pub predicted_after_us: Arc<FloatGauge>,
    /// Predicted relative gain of the last applied action.
    pub predicted_gain: Arc<FloatGauge>,
    /// Predicted duration of the last action itself (index build), µs.
    pub predicted_action_duration_us: Arc<FloatGauge>,
    /// Observed mean statement latency before the last action, µs.
    pub observed_baseline_us: Arc<FloatGauge>,
    /// Observed mean statement latency over the verify window, µs.
    pub observed_after_us: Arc<FloatGauge>,
    /// Observed relative gain of the last verified action.
    pub observed_gain: Arc<FloatGauge>,
    /// Observed wall-clock duration of the last action itself, µs.
    pub observed_action_duration_us: Arc<FloatGauge>,
}

impl PilotMetrics {
    /// Register (or re-attach to) the pilot families in `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> PilotMetrics {
        PilotMetrics {
            ticks: registry.counter("mb2_pilot_ticks_total", "Pilot control-loop ticks."),
            considered: registry.counter(
                "mb2_pilot_actions_considered_total",
                "Candidate actions priced by the oracle planner.",
            ),
            reverted: registry.counter(
                "mb2_pilot_actions_reverted_total",
                "Applied actions rolled back after observed regression.",
            ),
            inflight: registry.gauge(
                "mb2_pilot_action_inflight",
                "1 while an applied action awaits verification.",
            ),
            predicted_baseline_us: registry.float_gauge(
                "mb2_pilot_predicted_baseline_us",
                "Predicted avg query runtime without the last action (us).",
            ),
            predicted_after_us: registry.float_gauge(
                "mb2_pilot_predicted_after_us",
                "Predicted avg query runtime after the last action (us).",
            ),
            predicted_gain: registry.float_gauge(
                "mb2_pilot_predicted_gain",
                "Predicted relative gain of the last applied action.",
            ),
            predicted_action_duration_us: registry.float_gauge(
                "mb2_pilot_predicted_action_duration_us",
                "Predicted duration of the last action itself (us).",
            ),
            observed_baseline_us: registry.float_gauge(
                "mb2_pilot_observed_baseline_us",
                "Observed mean statement latency before the last action (us).",
            ),
            observed_after_us: registry.float_gauge(
                "mb2_pilot_observed_after_us",
                "Observed mean statement latency over the verify window (us).",
            ),
            observed_gain: registry.float_gauge(
                "mb2_pilot_observed_gain",
                "Observed relative gain of the last verified action.",
            ),
            observed_action_duration_us: registry.float_gauge(
                "mb2_pilot_observed_action_duration_us",
                "Observed wall-clock duration of the last action itself (us).",
            ),
            registry,
        }
    }

    /// Per-action-label applied counter
    /// (`mb2_pilot_actions_applied_total{action=...}`). Label values are
    /// the stable [`mb2_core::planner::Action::label`] strings, so the
    /// cardinality is bounded by the action catalog.
    pub fn applied(&self, action_label: &str) -> Arc<Counter> {
        self.registry.counter_with(
            "mb2_pilot_actions_applied_total",
            &[("action", action_label)],
            "Actions applied by the pilot, by action label.",
        )
    }
}
