//! Bound (resolved) expressions and their evaluation.
//!
//! Expression evaluation is the **Arithmetic or Filter** OU: the executor
//! counts evaluations per tuple and the translator derives the OU's features
//! from the expression tree size and the number of tuples flowing through.

use std::fmt;

use mb2_common::{DbError, DbResult, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// An expression with column references resolved to positions in the input
/// tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Unary {
        op: UnOp,
        operand: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against an input tuple.
    pub fn eval(&self, tuple: &[Value]) -> DbResult<Value> {
        match self {
            BoundExpr::Col(i) => tuple
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Execution(format!("column index {i} out of range"))),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Unary { op, operand } => {
                let v = operand.eval(tuple)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    UnOp::Neg => match v {
                        Value::Int(x) => Ok(Value::Int(-x)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(DbError::Execution(format!("cannot negate {other}"))),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            BoundExpr::Binary { op, left, right } => {
                // Short-circuit logic operators.
                if *op == BinOp::And {
                    let l = left.eval(tuple)?;
                    if !l.is_null() && !l.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                    let r = right.eval(tuple)?;
                    return Ok(Value::Bool(
                        !l.is_null() && l.as_bool()? && !r.is_null() && r.as_bool()?,
                    ));
                }
                if *op == BinOp::Or {
                    let l = left.eval(tuple)?;
                    if !l.is_null() && l.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                    let r = right.eval(tuple)?;
                    return Ok(Value::Bool(!r.is_null() && r.as_bool()?));
                }
                let l = left.eval(tuple)?;
                let r = right.eval(tuple)?;
                if l.is_null() || r.is_null() {
                    // SQL three-valued logic simplified: NULL propagates for
                    // arithmetic; comparisons with NULL are false.
                    return Ok(if op.is_comparison() {
                        Value::Bool(false)
                    } else {
                        Value::Null
                    });
                }
                if op.is_comparison() {
                    let ord = l.cmp_total(&r);
                    let out = match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    return Ok(Value::Bool(out));
                }
                // Arithmetic: integer ops stay integer; mixed promotes.
                match (&l, &r) {
                    (Value::Int(a), Value::Int(b)) => {
                        let a = *a;
                        let b = *b;
                        Ok(match op {
                            BinOp::Add => Value::Int(a.wrapping_add(b)),
                            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                            BinOp::Div => {
                                if b == 0 {
                                    return Err(DbError::Execution("division by zero".into()));
                                }
                                Value::Int(a / b)
                            }
                            BinOp::Mod => {
                                if b == 0 {
                                    return Err(DbError::Execution("modulo by zero".into()));
                                }
                                Value::Int(a % b)
                            }
                            _ => unreachable!(),
                        })
                    }
                    _ => {
                        let a = l.as_f64()?;
                        let b = r.as_f64()?;
                        Ok(match op {
                            BinOp::Add => Value::Float(a + b),
                            BinOp::Sub => Value::Float(a - b),
                            BinOp::Mul => Value::Float(a * b),
                            BinOp::Div => {
                                if b == 0.0 {
                                    return Err(DbError::Execution("division by zero".into()));
                                }
                                Value::Float(a / b)
                            }
                            BinOp::Mod => Value::Float(a % b),
                            _ => unreachable!(),
                        })
                    }
                }
            }
        }
    }

    /// Evaluate as a predicate (NULL counts as false).
    pub fn eval_bool(&self, tuple: &[Value]) -> DbResult<bool> {
        match self.eval(tuple)? {
            Value::Null => Ok(false),
            v => v.as_bool(),
        }
    }

    /// Number of operator nodes — the Arithmetic/Filter OU's "amount of
    /// work per tuple" feature.
    pub fn op_count(&self) -> usize {
        match self {
            BoundExpr::Col(_) | BoundExpr::Lit(_) => 0,
            BoundExpr::Unary { operand, .. } => 1 + operand.op_count(),
            BoundExpr::Binary { left, right, .. } => 1 + left.op_count() + right.op_count(),
        }
    }

    /// All column positions referenced.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Col(i) => out.push(*i),
            BoundExpr::Lit(_) => {}
            BoundExpr::Unary { operand, .. } => operand.collect_columns(out),
            BoundExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }

    /// Rewrite column indices through a mapping (old position -> new).
    pub fn remap(&self, map: &dyn Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Col(i) => BoundExpr::Col(map(*i)),
            BoundExpr::Lit(v) => BoundExpr::Lit(v.clone()),
            BoundExpr::Unary { op, operand } => BoundExpr::Unary {
                op: *op,
                operand: Box::new(operand.remap(map)),
            },
            BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.remap(map)),
                right: Box::new(right.remap(map)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }
    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Lit(v.into())
    }
    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_int_and_float() {
        let t = vec![Value::Int(7), Value::Float(2.0)];
        assert_eq!(
            bin(BinOp::Add, col(0), lit(3)).eval(&t).unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            bin(BinOp::Div, col(0), col(1)).eval(&t).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            bin(BinOp::Mod, col(0), lit(4)).eval(&t).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let t = vec![Value::Int(1)];
        assert!(bin(BinOp::Div, col(0), lit(0)).eval(&t).is_err());
    }

    #[test]
    fn comparisons() {
        let t = vec![Value::Int(5)];
        assert_eq!(
            bin(BinOp::Lt, col(0), lit(6)).eval(&t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::GtEq, col(0), lit(5)).eval(&t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::Eq, col(0), lit("x")).eval(&t).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn null_semantics() {
        let t = vec![Value::Null];
        assert_eq!(
            bin(BinOp::Eq, col(0), lit(1)).eval(&t).unwrap(),
            Value::Bool(false)
        );
        assert!(bin(BinOp::Add, col(0), lit(1)).eval(&t).unwrap().is_null());
        assert!(!bin(BinOp::Eq, col(0), lit(1)).eval_bool(&t).unwrap());
    }

    #[test]
    fn short_circuit_and_or() {
        let t = vec![Value::Bool(false), Value::Int(0)];
        // Right side would divide by zero; AND short-circuits.
        let bad = bin(BinOp::Div, lit(1), col(1));
        let guarded = bin(BinOp::And, col(0), bin(BinOp::Gt, bad.clone(), lit(0)));
        assert_eq!(guarded.eval(&t).unwrap(), Value::Bool(false));
        let t2 = vec![Value::Bool(true), Value::Int(0)];
        let guarded_or = bin(BinOp::Or, col(0), bin(BinOp::Gt, bad, lit(0)));
        assert_eq!(guarded_or.eval(&t2).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unary_ops() {
        let t = vec![Value::Int(5), Value::Bool(true)];
        assert_eq!(
            BoundExpr::Unary {
                op: UnOp::Neg,
                operand: Box::new(col(0))
            }
            .eval(&t)
            .unwrap(),
            Value::Int(-5)
        );
        assert_eq!(
            BoundExpr::Unary {
                op: UnOp::Not,
                operand: Box::new(col(1))
            }
            .eval(&t)
            .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn op_count_and_columns() {
        let e = bin(BinOp::Add, bin(BinOp::Mul, col(0), col(2)), lit(1));
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.columns(), vec![0, 2]);
    }

    #[test]
    fn remap_columns() {
        let e = bin(BinOp::Eq, col(1), col(3));
        let r = e.remap(&|i| i + 10);
        assert_eq!(r.columns(), vec![11, 13]);
    }
}
