//! Shared helpers for the experiment modules.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::{DbResult, Prng};
use mb2_core::QueryTemplate;
use mb2_engine::Database;
use mb2_workloads::Workload;

/// Build `QueryTemplate`s from a workload's per-template sampled SQL
/// (first statement of each transaction that is a SELECT; OLAP workloads
/// are single-statement).
pub fn tpch_templates(db: &Database, tpch: &mb2_workloads::tpch::Tpch) -> Vec<QueryTemplate> {
    tpch.fixed_queries()
        .into_iter()
        .map(|(name, sql)| QueryTemplate {
            plan: db.prepare(&sql).expect("tpch query plans"),
            name,
            sql,
        })
        .collect()
}

/// Sampled single-statement query instances per template for an OLTP
/// workload (used for per-template latency prediction, Fig. 7b).
pub fn oltp_query_instances(
    db: &Database,
    workload: &dyn Workload,
    per_template: usize,
    seed: u64,
) -> Vec<(String, Vec<String>)> {
    let mut rng = Prng::new(seed);
    let mut out = Vec::new();
    for template in workload.template_names() {
        for _ in 0..per_template {
            let statements = workload.sample_transaction(template, &mut rng);
            // Use the read/write statements individually as query templates,
            // mirroring the paper's per-query-template evaluation.
            for sql in statements {
                if db.prepare(&sql).is_ok() {
                    out.push((format!("{}:{template}", workload.name()), vec![sql]));
                    break; // one statement per sampled transaction
                }
            }
        }
    }
    out
}

/// Per-interval workload driver: run `workers` threads executing sampled
/// transactions, bucketing each transaction's latency into
/// `interval`-length buckets. Returns (bucket average µs, bucket counts).
pub struct PhaseOutcome {
    pub bucket_avg_us: Vec<f64>,
    pub bucket_counts: Vec<usize>,
    /// Total busy time per bucket across workers (µs) — the CPU-utilization
    /// proxy used by Fig. 11b.
    pub bucket_busy_us: Vec<f64>,
}

pub fn run_phase(
    db: &Arc<Database>,
    workload: &(dyn Workload + Sync),
    workers: usize,
    duration: Duration,
    interval: Duration,
    seed: u64,
) -> DbResult<PhaseOutcome> {
    let buckets = (duration.as_secs_f64() / interval.as_secs_f64()).ceil() as usize;
    let sums: Vec<AtomicU64> = (0..buckets).map(|_| AtomicU64::new(0)).collect();
    let counts: Vec<AtomicU64> = (0..buckets).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let db = db.clone();
            let sums = &sums;
            let counts = &counts;
            let stop = &stop;
            scope.spawn(move || {
                let mut rng = Prng::new(seed + w as u64 * 104_729);
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    // Conflicts abort; that is part of the workload's cost.
                    let _ = workload.run_one(&db, &mut rng);
                    let us = t0.elapsed().as_nanos() as u64 / 1000;
                    let bucket = ((t0 - started).as_secs_f64() / interval.as_secs_f64()) as usize;
                    if bucket < buckets {
                        sums[bucket].fetch_add(us, Ordering::Relaxed);
                        counts[bucket].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    let bucket_avg_us = sums
        .iter()
        .zip(&counts)
        .map(|(s, c)| {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                0.0
            } else {
                s.load(Ordering::Relaxed) as f64 / c as f64
            }
        })
        .collect();
    Ok(PhaseOutcome {
        bucket_avg_us,
        bucket_counts: counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as usize)
            .collect(),
        bucket_busy_us: sums
            .iter()
            .map(|s| s.load(Ordering::Relaxed) as f64)
            .collect(),
    })
}
