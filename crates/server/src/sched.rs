//! Predictive admission & scheduling (ROADMAP item 2).
//!
//! The blunt `max_inflight_queries` semaphore treats every query as equally
//! expensive. This module replaces it on the decision path: each arriving
//! query is planned (through the engine's plan cache), priced by the
//! trained OU models, adjusted by the interference model against the
//! in-flight mix tracked in an [`mb2_core::InflightLedger`], and then
//! either **admitted now**, **queued with a deadline**, or **rejected with
//! a retry hint** against its tier's SLO budget.
//!
//! Decision flow per arrival (see DESIGN.md "Predictive admission &
//! scheduling"):
//!
//! 1. No policy, no models, or empty models → **fallback**: byte-identical
//!    legacy semaphore behavior (safe cold start — an untrained server
//!    degrades to exactly what it did before this module existed).
//! 2. Tenant over its concurrent-query quota → reject `Busy(Quota)`.
//! 3. Unplannable statements (transaction control, operator commands,
//!    anything the parser/planner rejects) → admit at zero predicted cost;
//!    the statement either costs nothing or will fail in-band.
//! 4. Price: isolated OU prediction, then the interference model's ratio
//!    over the ledger's per-thread in-flight totals.
//! 5. Admit now iff a slot is free, no equal-or-higher-priority waiter is
//!    queued, and `least-loaded-slot backlog + adjusted cost ≤ tier SLO
//!    budget`. Otherwise queue (bounded, priority-ordered, deadline per
//!    tier). Queue full → `Busy(QueueFull)`; deadline expiry →
//!    `Busy(DeadlineExceeded)` — never a silent drop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use mb2_core::{BehaviorModels, InflightLedger, LedgerTicket};
use mb2_engine::Database;

use crate::wire::BusyReason;

/// One scheduling tier. Tier 0 is the highest priority; a client picks its
/// tier in the v2 `ClientHello` (clamped to the configured tier count).
#[derive(Debug, Clone)]
pub struct TierPolicy {
    /// Operator-facing name (`SHOW SCHED`, docs).
    pub name: String,
    /// Predicted-completion budget in µs: a query is admitted immediately
    /// only while `backlog + adjusted cost` fits under this.
    pub slo_budget_us: f64,
    /// How long a query of this tier may wait in the queue before it is
    /// evicted with `Busy(DeadlineExceeded)`.
    pub queue_deadline: Duration,
}

/// Scheduler policy declared in `ServerConfig`.
#[derive(Debug, Clone)]
pub struct SchedulerPolicy {
    /// Tiers in priority order (index 0 = highest). Must be non-empty;
    /// clients asking for a tier past the end get the last (lowest) tier.
    pub tiers: Vec<TierPolicy>,
    /// Bound on queued queries across all tiers; arrivals past it are
    /// rejected with `Busy(QueueFull)`.
    pub queue_capacity: usize,
    /// Concurrent-query quota for tenants not in `tenant_quotas`
    /// (0 = unlimited).
    pub default_tenant_quota: usize,
    /// Per-tenant concurrent-query quotas (0 = unlimited).
    pub tenant_quotas: HashMap<String, usize>,
    /// Interference-model window: the interval length the in-flight mix is
    /// normalized over when building `InterferenceInputs` features.
    pub interference_window_us: f64,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy {
            tiers: vec![
                TierPolicy {
                    name: "interactive".into(),
                    slo_budget_us: 50_000.0,
                    queue_deadline: Duration::from_millis(100),
                },
                TierPolicy {
                    name: "batch".into(),
                    slo_budget_us: 2_000_000.0,
                    queue_deadline: Duration::from_millis(500),
                },
            ],
            queue_capacity: 64,
            default_tenant_quota: 0,
            tenant_quotas: HashMap::new(),
            interference_window_us: 1_000_000.0,
        }
    }
}

/// Scheduling identity a connection carries, picked up from the hello.
#[derive(Debug, Clone)]
pub struct ConnSchedCtx {
    pub tenant: String,
    /// Requested tier (clamped against the policy at decision time).
    pub tier: u8,
}

impl Default for ConnSchedCtx {
    fn default() -> Self {
        ConnSchedCtx {
            tenant: String::new(),
            tier: u8::MAX,
        }
    }
}

/// The outcome of an admission decision.
pub enum Decision {
    /// Run it. Hold the token until the final `Done`/`Error` frame has
    /// been flushed, then pass it to [`Scheduler::finish`].
    Admit(AdmitToken),
    /// Shed it: answer `Busy{reason, message, retry_after_ms}`.
    Reject {
        reason: BusyReason,
        message: String,
        retry_after_ms: u64,
    },
}

/// Proof of admission. Carries the ledger charge to retire and the tenant
/// slot to release; consumed by [`Scheduler::finish`].
pub struct AdmitToken {
    ticket: Option<LedgerTicket>,
    tenant: Option<String>,
    /// Whether this admission consumed an in-flight slot (zero-cost
    /// bypass admissions do not).
    counted: bool,
    /// How the query got in, for the `{path}` label on admit metrics.
    pub queued: bool,
    /// Time spent waiting in the queue (zero for immediate admissions).
    pub queue_wait: Duration,
}

/// How one queued waiter's wait ended.
#[derive(Clone, Copy, PartialEq)]
enum WaitOutcome {
    Waiting,
    Granted,
    Draining,
}

struct Waiter {
    seq: u64,
    tier: usize,
    adjusted_us: f64,
    /// Isolated prediction, charged to the ledger at grant time.
    pred: mb2_common::Metrics,
    outcome: WaitOutcome,
    /// Ledger charge placed by the grantor (the finishing query's thread),
    /// picked up by the waiting thread.
    ticket: Option<LedgerTicket>,
}

#[derive(Default)]
struct QueueState {
    /// Waiters ordered by (tier asc, seq asc): strict priority, FIFO
    /// within a tier.
    waiters: Vec<Waiter>,
    next_seq: u64,
    draining: bool,
}

/// The admission scheduler. Always constructed — with no policy or no
/// trained models it reproduces the legacy semaphore exactly.
pub struct Scheduler {
    max_inflight: usize,
    policy: Option<SchedulerPolicy>,
    models: RwLock<Option<Arc<BehaviorModels>>>,
    ledger: InflightLedger,
    /// Queries admitted and not yet finished (counted admissions only).
    inflight: AtomicUsize,
    /// Per-tenant in-flight counts for quota enforcement.
    tenants: Mutex<HashMap<String, usize>>,
    /// std Mutex (not parking_lot) because waiters block on the paired
    /// [`Condvar`].
    queue: StdMutex<QueueState>,
    queue_cv: Condvar,
}

impl Scheduler {
    pub fn new(max_inflight: usize, policy: Option<SchedulerPolicy>) -> Scheduler {
        Scheduler {
            max_inflight,
            policy,
            models: RwLock::new(None),
            ledger: InflightLedger::new(max_inflight.max(1)),
            inflight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            queue: StdMutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
        }
    }

    /// Attach trained behavior models; until this is called (or if the OU
    /// set is empty) the scheduler stays in fallback mode.
    pub fn attach_models(&self, models: Arc<BehaviorModels>) {
        *self.models.write() = Some(models);
    }

    /// Whether the predictive path is active (policy + non-empty models).
    pub fn predictive(&self) -> bool {
        self.policy.is_some()
            && self
                .models
                .read()
                .as_ref()
                .is_some_and(|m| !m.ou_models.is_empty())
    }

    /// Queries currently admitted (counted admissions).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Queued waiters right now.
    pub fn queue_depth(&self) -> usize {
        self.lock_queue().waiters.len()
    }

    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Outstanding predicted elapsed µs across the in-flight mix.
    pub fn outstanding_us(&self) -> f64 {
        self.ledger.outstanding_us()
    }

    /// The legacy busy message — shared by the fallback path and the
    /// pre-predictive code so the cold-start wire bytes stay identical.
    fn busy_message(&self) -> String {
        format!(
            "{} queries in flight (limit {})",
            self.max_inflight, self.max_inflight
        )
    }

    /// Estimate (ms) of when capacity frees up: outstanding predicted work
    /// spread over the admission slots, clamped to [1, 10_000].
    fn retry_hint_ms(&self) -> u64 {
        let slots = self.max_inflight.max(1) as f64;
        let per_slot_us = self.ledger.outstanding_us() / slots;
        ((per_slot_us / 1000.0).ceil() as u64).clamp(1, 10_000)
    }

    /// Decide admission for one query frame. May block (bounded by the
    /// tier's queue deadline) when the decision is "queue".
    pub fn admit(&self, db: &Database, sql: &str, ctx: &ConnSchedCtx) -> Decision {
        let models = self.models.read().clone();
        let (policy, models) = match (&self.policy, models) {
            (Some(p), Some(m)) if !m.ou_models.is_empty() => (p, m),
            // Fallback: the legacy semaphore, bit for bit.
            _ => return self.admit_fallback(),
        };

        // Tenant quota gate (0 = unlimited).
        let quota = policy
            .tenant_quotas
            .get(&ctx.tenant)
            .copied()
            .unwrap_or(policy.default_tenant_quota);
        if quota > 0 {
            let tenants = self.tenants.lock();
            if tenants.get(&ctx.tenant).copied().unwrap_or(0) >= quota {
                return Decision::Reject {
                    reason: BusyReason::Quota,
                    message: format!(
                        "tenant '{}' at quota ({quota} concurrent queries)",
                        ctx.tenant
                    ),
                    retry_after_ms: self.retry_hint_ms(),
                };
            }
        }

        let tier_idx = (ctx.tier as usize).min(policy.tiers.len() - 1);
        let tier = &policy.tiers[tier_idx];

        // Price the statement. Anything unplannable (BEGIN/COMMIT, operator
        // commands, malformed SQL) admits at zero cost without consuming a
        // slot: it either costs ~nothing or fails in-band moments later.
        let plan = match db.prepare_cached(sql) {
            Ok(p) => p,
            Err(_) => {
                return Decision::Admit(AdmitToken {
                    ticket: None,
                    tenant: None,
                    counted: false,
                    queued: false,
                    queue_wait: Duration::ZERO,
                })
            }
        };
        let knobs = db.knobs();
        let pred = models.predict_plan(&plan, &knobs);
        let adjusted_us = match &models.interference {
            Some(interference) => {
                let thread_totals = self.ledger.thread_totals();
                pred.per_ou
                    .iter()
                    .map(|(_, m)| {
                        interference
                            .adjust(m, &thread_totals, policy.interference_window_us)
                            .elapsed_us()
                    })
                    .sum()
            }
            None => pred.total.elapsed_us(),
        };

        // Immediate admission: free slot, nobody of equal-or-higher
        // priority already waiting, and the predicted completion
        // (least-loaded-slot backlog + adjusted cost) fits the SLO budget.
        {
            let queue = self.lock_queue();
            if queue.draining {
                return Decision::Reject {
                    reason: BusyReason::Draining,
                    message: "server draining".into(),
                    retry_after_ms: 0,
                };
            }
            let blocked_by_waiter = queue.waiters.iter().any(|w| w.tier <= tier_idx);
            if !blocked_by_waiter
                && self.inflight.load(Ordering::Acquire) < self.max_inflight
                && self.ledger.min_backlog_us() + adjusted_us <= tier.slo_budget_us
            {
                self.inflight.fetch_add(1, Ordering::AcqRel);
                let ticket = self.ledger.admit(&pred.total);
                drop(queue);
                self.charge_tenant(&ctx.tenant);
                return Decision::Admit(AdmitToken {
                    ticket: Some(ticket),
                    tenant: Some(ctx.tenant.clone()),
                    counted: true,
                    queued: false,
                    queue_wait: Duration::ZERO,
                });
            }
            if queue.waiters.len() >= policy.queue_capacity {
                return Decision::Reject {
                    reason: BusyReason::QueueFull,
                    message: format!("admission queue full ({} waiting)", queue.waiters.len()),
                    retry_after_ms: self.retry_hint_ms(),
                };
            }
        }

        // Queue with a deadline, then wait to be granted or evicted.
        self.wait_in_queue(tier_idx, tier.queue_deadline, adjusted_us, pred.total, ctx)
    }

    /// Enqueue (priority order) and block until granted, drained, or the
    /// tier deadline passes.
    fn wait_in_queue(
        &self,
        tier_idx: usize,
        deadline: Duration,
        adjusted_us: f64,
        pred: mb2_common::Metrics,
        ctx: &ConnSchedCtx,
    ) -> Decision {
        let started = Instant::now();
        let until = started + deadline;
        let mut queue = self.lock_queue();
        let seq = queue.next_seq;
        queue.next_seq += 1;
        let pos = queue
            .waiters
            .iter()
            .position(|w| w.tier > tier_idx)
            .unwrap_or(queue.waiters.len());
        queue.waiters.insert(
            pos,
            Waiter {
                seq,
                tier: tier_idx,
                adjusted_us,
                pred,
                outcome: WaitOutcome::Waiting,
                ticket: None,
            },
        );
        loop {
            // The grantor runs under this same lock, so outcome checks and
            // timeouts are race-free.
            if let Some(i) = queue.waiters.iter().position(|w| w.seq == seq) {
                match queue.waiters[i].outcome {
                    WaitOutcome::Waiting => {}
                    WaitOutcome::Granted => {
                        let w = queue.waiters.remove(i);
                        drop(queue);
                        self.charge_tenant(&ctx.tenant);
                        return Decision::Admit(AdmitToken {
                            ticket: w.ticket,
                            tenant: Some(ctx.tenant.clone()),
                            counted: true,
                            queued: true,
                            queue_wait: started.elapsed(),
                        });
                    }
                    WaitOutcome::Draining => {
                        queue.waiters.remove(i);
                        return Decision::Reject {
                            reason: BusyReason::Draining,
                            message: "server draining".into(),
                            retry_after_ms: 0,
                        };
                    }
                }
            } else {
                // Defensive: the entry vanished without a grant.
                return Decision::Reject {
                    reason: BusyReason::QueueFull,
                    message: "admission queue entry lost".into(),
                    retry_after_ms: self.retry_hint_ms(),
                };
            }
            let now = Instant::now();
            if now >= until {
                // Deadline eviction: remove self (the outcome check above
                // already handled a grant that raced in) and answer with a
                // typed busy — never a silent drop.
                if let Some(i) = queue.waiters.iter().position(|w| w.seq == seq) {
                    if queue.waiters[i].outcome == WaitOutcome::Waiting {
                        queue.waiters.remove(i);
                        return Decision::Reject {
                            reason: BusyReason::DeadlineExceeded,
                            message: format!("queued past deadline ({}ms)", deadline.as_millis()),
                            retry_after_ms: self.retry_hint_ms(),
                        };
                    }
                }
                // Granted or drained at the wire: loop once more to pick
                // the outcome up.
                continue;
            }
            queue = self
                .queue_cv
                .wait_timeout(queue, until - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Release one admission. Retires the ledger charge, frees the tenant
    /// slot, and grants queued waiters (strict priority order) that now
    /// fit. Call only after the final response frame is flushed.
    pub fn finish(&self, token: AdmitToken) {
        if let Some(ticket) = token.ticket {
            self.ledger.retire(ticket);
        }
        if token.counted {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(tenant) = &token.tenant {
            let mut tenants = self.tenants.lock();
            if let Some(n) = tenants.get_mut(tenant) {
                *n -= 1;
                if *n == 0 {
                    tenants.remove(tenant);
                }
            }
        }
        self.pump();
    }

    /// Grant queued waiters that fit the freed capacity, in (tier, seq)
    /// order. Stops at the first waiter that does not fit: strict priority
    /// — a cheap low-priority waiter must not overtake an expensive
    /// higher-priority one (that is how starvation starts).
    fn pump(&self) {
        let policy = match &self.policy {
            Some(p) => p,
            None => return,
        };
        let mut queue = self.lock_queue();
        if queue.draining {
            return;
        }
        let mut granted = false;
        for w in queue.waiters.iter_mut() {
            if w.outcome != WaitOutcome::Waiting {
                continue;
            }
            if self.inflight.load(Ordering::Acquire) >= self.max_inflight {
                break;
            }
            let budget = policy.tiers[w.tier.min(policy.tiers.len() - 1)].slo_budget_us;
            if self.ledger.min_backlog_us() + w.adjusted_us > budget {
                break;
            }
            // Charge here, under the queue lock, so concurrent finishers
            // cannot over-grant; the waiter picks the ticket up on wake.
            self.inflight.fetch_add(1, Ordering::AcqRel);
            w.ticket = Some(self.ledger.admit(&w.pred));
            w.outcome = WaitOutcome::Granted;
            granted = true;
        }
        if granted {
            self.queue_cv.notify_all();
        }
    }

    /// Drain: evict every waiter with `Busy(Draining)` and refuse new
    /// queueing. Called from the server's drain path before workers join.
    pub fn drain(&self) {
        let mut queue = self.lock_queue();
        queue.draining = true;
        for w in queue.waiters.iter_mut() {
            if w.outcome == WaitOutcome::Waiting {
                w.outcome = WaitOutcome::Draining;
            }
        }
        self.queue_cv.notify_all();
    }

    fn admit_fallback(&self) -> Decision {
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            Decision::Admit(AdmitToken {
                ticket: None,
                tenant: None,
                counted: true,
                queued: false,
                queue_wait: Duration::ZERO,
            })
        } else {
            Decision::Reject {
                reason: BusyReason::Queries,
                message: self.busy_message(),
                // 0 = "no hint": keeps the fallback busy frame
                // byte-identical to the pre-scheduler server for v1 peers
                // and zero-valued for v2 peers.
                retry_after_ms: 0,
            }
        }
    }

    fn charge_tenant(&self, tenant: &str) {
        *self.tenants.lock().entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// `SHOW SCHED` rows: mode, capacity, queue, and per-tier policy.
    pub fn status_rows(&self) -> Vec<String> {
        let mut rows = vec![
            format!(
                "mode {}",
                if self.predictive() {
                    "predictive"
                } else {
                    "fallback"
                }
            ),
            format!("inflight {} limit {}", self.inflight(), self.max_inflight),
            format!("queue_depth {}", self.queue_depth()),
            format!("outstanding_predicted_us {:.0}", self.outstanding_us()),
        ];
        if let Some(policy) = &self.policy {
            rows.push(format!(
                "queue_capacity {} default_tenant_quota {}",
                policy.queue_capacity, policy.default_tenant_quota
            ));
            for (i, t) in policy.tiers.iter().enumerate() {
                rows.push(format!(
                    "tier {i} {} slo_budget_us {:.0} queue_deadline_ms {}",
                    t.name,
                    t.slo_budget_us,
                    t.queue_deadline.as_millis()
                ));
            }
        }
        rows
    }
}
