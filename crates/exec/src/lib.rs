//! Execution engine.
//!
//! Pull-based batch execution of [`mb2_sql::PlanNode`] trees: a
//! [`batch::Batch`] of up to `ExecContext::batch_size` rows flows through a
//! `BatchOperator` pipeline, with predicates pushed into the storage scan
//! visitors and `Arc<Tuple>` zero-copy row passing from the MVCC read path.
//! Each operator phase corresponds to exactly one operating unit from paper
//! Table 1 (hash-join build and probe are separate OUs, sort build and
//! iterate are separate OUs, filters/projections are Arithmetic/Filter OU
//! passes), and the [`tracker::OuTracker`] folds per-batch work into one
//! measurement per span. An optional [`OuRecorder`] receives
//! `(node id, OU, metrics)` triples — the data-collection hook MB2's
//! runners use (paper §6.1).
//!
//! Two execution modes implement the paper's `execution_mode` behavior knob:
//! `Interpret` walks expression trees per tuple; `Compiled` pre-lowers
//! expressions to nested native closures (the JIT analog).

pub mod batch;
pub mod columnar;
pub mod compile;
pub mod context;
pub mod executor;
pub mod obs;
pub mod ops;
pub mod parallel;
pub mod tracker;

pub use batch::{Batch, DEFAULT_BATCH_SIZE};
pub use context::{ExecContext, ExecutionMode};
pub use executor::{execute, execute_batched, subtree_size, QueryResult};
pub use obs::ObsRecorder;
pub use parallel::{ExecPool, DEFAULT_MORSEL_SLOTS};
pub use tracker::{OuRecorder, OuTracker, WorkCounts};
