//! The log manager: record serialization into buffers, a flush queue, and a
//! background flusher thread with a configurable flush interval (a behavior
//! knob, paper §4.2).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use mb2_common::{DbError, DbResult};

use crate::buffer::LogBuffer;
#[cfg(test)]
use crate::buffer::LOG_BUFFER_CAPACITY;
use crate::record::LogRecord;

/// Configuration for the log manager.
#[derive(Debug, Clone)]
pub struct LogManagerConfig {
    /// Path to the log file; `None` sinks writes into a byte counter only
    /// (used by unit tests and pure-OLAP experiments).
    pub path: Option<PathBuf>,
    /// Background flush interval. This is the "log flush interval" behavior
    /// knob — an input feature of the Log Record Flush OU.
    pub flush_interval: Duration,
    /// Whether to start the background flusher thread.
    pub background: bool,
}

impl Default for LogManagerConfig {
    fn default() -> Self {
        LogManagerConfig {
            path: None,
            flush_interval: Duration::from_millis(10),
            background: false,
        }
    }
}

/// Counters exported for the metrics collector.
#[derive(Debug, Default)]
pub struct WalStats {
    pub bytes_serialized: AtomicU64,
    pub records_serialized: AtomicU64,
    pub buffers_flushed: AtomicU64,
    pub bytes_flushed: AtomicU64,
    pub flush_calls: AtomicU64,
}

impl WalStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.bytes_serialized.load(Ordering::Relaxed),
            self.records_serialized.load(Ordering::Relaxed),
            self.buffers_flushed.load(Ordering::Relaxed),
            self.bytes_flushed.load(Ordering::Relaxed),
            self.flush_calls.load(Ordering::Relaxed),
        )
    }
}

struct Flusher {
    file: Option<File>,
    rx: Receiver<LogBuffer>,
    stats: Arc<WalStats>,
    stop: Arc<AtomicBool>,
    interval: Duration,
}

impl Flusher {
    fn run(mut self) {
        loop {
            // Collect everything queued, then sleep for the interval.
            let mut drained = Vec::new();
            while let Ok(buf) = self.rx.try_recv() {
                drained.push(buf);
            }
            if !drained.is_empty() {
                let _ = flush_buffers(&mut self.file, &drained, &self.stats);
            }
            if self.stop.load(Ordering::Acquire) {
                // Final drain before exiting.
                let mut rest = Vec::new();
                while let Ok(buf) = self.rx.try_recv() {
                    rest.push(buf);
                }
                if !rest.is_empty() {
                    let _ = flush_buffers(&mut self.file, &rest, &self.stats);
                }
                return;
            }
            std::thread::sleep(self.interval);
        }
    }
}

fn flush_buffers(
    file: &mut Option<File>,
    buffers: &[LogBuffer],
    stats: &WalStats,
) -> DbResult<usize> {
    let mut bytes = 0usize;
    for buf in buffers {
        if let Some(f) = file.as_mut() {
            f.write_all(&buf.data).map_err(|e| DbError::Wal(format!("flush: {e}")))?;
        }
        bytes += buf.data.len();
    }
    if let Some(f) = file.as_mut() {
        f.flush().map_err(|e| DbError::Wal(format!("flush: {e}")))?;
    }
    stats.buffers_flushed.fetch_add(buffers.len() as u64, Ordering::Relaxed);
    stats.bytes_flushed.fetch_add(bytes as u64, Ordering::Relaxed);
    stats.flush_calls.fetch_add(1, Ordering::Relaxed);
    Ok(bytes)
}

/// The write-ahead log manager.
pub struct LogManager {
    config: LogManagerConfig,
    stats: Arc<WalStats>,
    current: Mutex<LogBuffer>,
    tx: Sender<LogBuffer>,
    /// Synchronous-flush queue used when no background thread is running.
    sync_queue: Mutex<Vec<LogBuffer>>,
    sync_file: Mutex<Option<File>>,
    stop: Arc<AtomicBool>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl LogManager {
    pub fn new(config: LogManagerConfig) -> DbResult<LogManager> {
        let open = |path: &PathBuf| -> DbResult<File> {
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| DbError::Wal(format!("open {}: {e}", path.display())))
        };
        let (tx, rx) = bounded::<LogBuffer>(1024);
        let stats = Arc::new(WalStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut flusher_handle = None;
        let mut sync_file = None;
        if config.background {
            let file = config.path.as_ref().map(&open).transpose()?;
            let flusher = Flusher {
                file,
                rx,
                stats: stats.clone(),
                stop: stop.clone(),
                interval: config.flush_interval,
            };
            flusher_handle = Some(std::thread::spawn(move || flusher.run()));
        } else {
            sync_file = config.path.as_ref().map(&open).transpose()?;
        }
        Ok(LogManager {
            config,
            stats,
            current: Mutex::new(LogBuffer::new()),
            tx,
            sync_queue: Mutex::new(Vec::new()),
            sync_file: Mutex::new(sync_file),
            stop,
            flusher: Mutex::new(flusher_handle),
        })
    }

    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    pub fn config(&self) -> &LogManagerConfig {
        &self.config
    }

    /// Serialize a record into the current buffer; full buffers move to the
    /// flush queue. Returns the encoded size in bytes.
    pub fn append(&self, record: &LogRecord) -> usize {
        let mut current = self.current.lock();
        let len = record.serialize_into(&mut current.data);
        current.record_count += 1;
        self.stats.bytes_serialized.fetch_add(len as u64, Ordering::Relaxed);
        self.stats.records_serialized.fetch_add(1, Ordering::Relaxed);
        if current.is_full() {
            let full = std::mem::take(&mut *current);
            drop(current);
            self.enqueue(full);
        }
        len
    }

    fn enqueue(&self, buffer: LogBuffer) {
        if self.config.background {
            // Drop on a full queue rather than blocking query threads; the
            // stats still record serialization.
            let _ = self.tx.try_send(buffer);
        } else {
            self.sync_queue.lock().push(buffer);
        }
    }

    /// Move the current (partial) buffer to the flush queue.
    pub fn seal_current(&self) {
        let mut current = self.current.lock();
        if !current.is_empty() {
            let buf = std::mem::take(&mut *current);
            drop(current);
            self.enqueue(buf);
        }
    }

    /// Synchronously flush everything queued (and the current buffer).
    /// Returns (buffers, bytes) flushed. Only valid in foreground mode.
    pub fn flush_now(&self) -> DbResult<(usize, usize)> {
        self.seal_current();
        let drained: Vec<LogBuffer> = std::mem::take(&mut *self.sync_queue.lock());
        if drained.is_empty() {
            return Ok((0, 0));
        }
        let mut file = self.sync_file.lock();
        let bytes = flush_buffers(&mut file, &drained, &self.stats)?;
        Ok((drained.len(), bytes))
    }

    /// Number of buffers waiting in the synchronous queue.
    pub fn pending_buffers(&self) -> usize {
        self.sync_queue.lock().len()
    }

    /// Stop the background flusher (final drain included).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.seal_current();
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    fn insert_record(i: u64) -> LogRecord {
        LogRecord::Insert {
            txn_id: i,
            table_id: 1,
            slot: i,
            tuple: vec![Value::Int(i as i64), Value::Varchar("x".repeat(64))],
        }
    }

    #[test]
    fn append_accumulates_bytes() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        let n1 = mgr.append(&LogRecord::Begin { txn_id: 1 });
        let n2 = mgr.append(&insert_record(1));
        assert!(n2 > n1);
        let (bytes, records, ..) = mgr.stats().snapshot();
        assert_eq!(bytes, (n1 + n2) as u64);
        assert_eq!(records, 2);
    }

    #[test]
    fn full_buffers_enqueue_and_flush() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        // Each record is ~100 bytes; write enough to fill several buffers.
        for i in 0..400 {
            mgr.append(&insert_record(i));
        }
        assert!(mgr.pending_buffers() > 0);
        let (buffers, bytes) = mgr.flush_now().unwrap();
        assert!(buffers >= mgr_buffers_lower_bound(400));
        assert!(bytes > LOG_BUFFER_CAPACITY);
        let (_, _, flushed, flushed_bytes, calls) = mgr.stats().snapshot();
        assert_eq!(flushed as usize, buffers);
        assert_eq!(flushed_bytes as usize, bytes);
        assert_eq!(calls, 1);
    }

    fn mgr_buffers_lower_bound(records: usize) -> usize {
        // Records are > 80 bytes each.
        records * 80 / LOG_BUFFER_CAPACITY
    }

    #[test]
    fn flush_writes_to_file() {
        let dir = std::env::temp_dir().join("mb2_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wal_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mgr = LogManager::new(LogManagerConfig {
                path: Some(path.clone()),
                ..LogManagerConfig::default()
            })
            .unwrap();
            for i in 0..10 {
                mgr.append(&insert_record(i));
            }
            mgr.flush_now().unwrap();
        }
        let meta = std::fs::metadata(&path).unwrap();
        assert!(meta.len() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn background_flusher_drains_on_shutdown() {
        let mgr = LogManager::new(LogManagerConfig {
            background: true,
            flush_interval: Duration::from_millis(1),
            ..LogManagerConfig::default()
        })
        .unwrap();
        for i in 0..400 {
            mgr.append(&insert_record(i));
        }
        mgr.shutdown();
        let (_, _, flushed, ..) = mgr.stats().snapshot();
        assert!(flushed > 0, "background flusher should have flushed buffers");
    }

    #[test]
    fn empty_flush_is_noop() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        assert_eq!(mgr.flush_now().unwrap(), (0, 0));
    }
}
