//! Chaos plans: seeded, timed event sequences executed against a running
//! harness, with the zero-loss invariant asserted after every event.

use std::time::{Duration, Instant};

use mb2_common::fault::{points, FaultMode};

use crate::harness::ChaosHarness;

/// One chaos event. Events either reconfigure the fault injector, flip
/// engine knobs, or restart the stack outright.
#[derive(Debug, Clone)]
pub enum ChaosEvent {
    /// Crash the server and recover a replacement from the WAL on a new
    /// port (harness-driven restart-with-recovery).
    KillAndRecover,
    /// Persistent fsync failure: the next durable commit poisons the WAL
    /// and the engine degrades to read-only.
    PoisonWal,
    /// Stop failing fsync and wait for the supervisor to swap in a
    /// recovered engine (requires `ChaosConfig::supervisor`).
    HealWal {
        /// How long to wait for the epoch bump before declaring failure.
        timeout: Duration,
    },
    /// Stall every WAL fsync by this much (slow-disk emulation).
    FsyncStall(Duration),
    /// Clear the fsync stall.
    ClearFsyncStall,
    /// Starve the garbage collector: every GC cycle is skipped.
    StarveGc,
    /// Let the garbage collector run again.
    ResumeGc,
    /// Tear server connections: each request frame independently fails
    /// with this probability.
    ReadFaultStorm(f64),
    /// Stop tearing connections.
    ClearReadFaults,
    /// Flip the vectorized-execution batch-size knob mid-workload.
    SetBatchSize(usize),
    /// Flip the morsel-parallelism knob mid-workload (rebuilds the pool).
    SetParallelism(usize),
}

/// A timed sequence of events. For each event the harness runs a phase of
/// concurrent load, fires the event `after` the phase starts, joins the
/// phase, and asserts wire-vs-oracle consistency — so every event is
/// followed by a full zero-loss check.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    pub events: Vec<(Duration, ChaosEvent)>,
}

impl ChaosPlan {
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Append an event fired `after` the phase begins.
    pub fn then(mut self, after: Duration, event: ChaosEvent) -> ChaosPlan {
        self.events.push((after, event));
        self
    }

    /// Execute the plan: one load phase of `attempts_per_worker` per event,
    /// the event mid-phase, and a consistency check after each join.
    pub fn run(self, harness: &mut ChaosHarness, attempts_per_worker: usize) {
        for (after, event) in self.events {
            let phase = harness.start_phase(attempts_per_worker);
            std::thread::sleep(after);
            apply(harness, &event);
            harness.join_phase(phase);
            harness.assert_consistent();
        }
    }
}

fn apply(harness: &mut ChaosHarness, event: &ChaosEvent) {
    match event {
        ChaosEvent::KillAndRecover => {
            let report = harness.kill_and_recover();
            assert!(
                report.records_read > 0,
                "crash recovery should replay a non-empty log"
            );
        }
        ChaosEvent::PoisonWal => {
            harness.faults.arm(points::WAL_FSYNC, FaultMode::Always);
        }
        ChaosEvent::HealWal { timeout } => {
            harness.faults.disarm(points::WAL_FSYNC);
            // The supervisor may already have swapped (its replacement
            // engine carries no injector); wait until the serving engine is
            // writable again either way.
            let deadline = Instant::now() + *timeout;
            while harness.db().is_read_only() {
                assert!(
                    Instant::now() < deadline,
                    "supervisor did not recover within {timeout:?}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        ChaosEvent::FsyncStall(delay) => {
            harness.faults.arm_delay(points::WAL_FSYNC, *delay);
        }
        ChaosEvent::ClearFsyncStall => {
            harness.faults.disarm(points::WAL_FSYNC);
        }
        ChaosEvent::StarveGc => {
            harness.faults.arm(points::GC_CYCLE, FaultMode::Always);
        }
        ChaosEvent::ResumeGc => {
            harness.faults.disarm(points::GC_CYCLE);
        }
        ChaosEvent::ReadFaultStorm(p) => {
            harness
                .faults
                .arm(points::SERVER_READ, FaultMode::Probability(*p));
        }
        ChaosEvent::ClearReadFaults => {
            harness.faults.disarm(points::SERVER_READ);
        }
        ChaosEvent::SetBatchSize(n) => {
            harness.db().set_batch_size(*n);
        }
        ChaosEvent::SetParallelism(n) => {
            harness.db().set_parallelism(*n);
        }
    }
}
