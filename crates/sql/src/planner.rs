//! Binder + cost-based planner.
//!
//! Turns parsed statements into [`PlanNode`] trees: resolves names against
//! the catalog, pushes single-table predicates into scans, picks index scans
//! for equality prefixes, orders joins greedily by estimated size, and
//! annotates every node with cardinality estimates derived from
//! [`mb2_catalog::TableStats`].

use std::sync::Arc;

use mb2_catalog::{Catalog, TableEntry, TableStats};
use mb2_common::{DbError, DbResult, Value};

use crate::ast::{Expr, Select, Statement};
use crate::expr::{BinOp, BoundExpr, UnOp};
use crate::plan::{AggSpec, Est, OutputSink, PlanNode, ScanRange, SortKey};

/// An index that does not exist in the catalog but should be *considered*
/// during planning, as if it did. What-if planning over hypothetical
/// indexes is how the oracle planner (`mb2-core`'s `OraclePlanner`) and
/// the autopilot price a `CREATE INDEX` action without mutating the live
/// catalog: the plan produced against a hypothetical index is translated
/// to OU features and costed, never executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypotheticalIndex {
    /// Table the index would be built on (case-insensitive match).
    pub table: String,
    /// Name the resulting plan's `IndexScan` nodes will reference.
    pub name: String,
    /// Key columns as table-local column positions, in key order.
    pub columns: Vec<usize>,
}

/// What-if adjustments applied on top of the live catalog during planning.
///
/// `hypothetical_indexes` are considered for index-scan selection exactly
/// like real indexes; `hidden_indexes` are real index names the planner
/// must ignore (pricing a `DROP INDEX` = re-planning with the index
/// hidden). Neither touches the catalog, so what-if planning is safe
/// under concurrent live traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlannerOverrides {
    /// Indexes to consider as if they existed.
    pub hypothetical_indexes: Vec<HypotheticalIndex>,
    /// Names of real indexes to ignore during index selection.
    pub hidden_indexes: Vec<String>,
}

impl PlannerOverrides {
    /// True when the overrides change nothing (planning is identical to
    /// planning against the bare catalog).
    pub fn is_empty(&self) -> bool {
        self.hypothetical_indexes.is_empty() && self.hidden_indexes.is_empty()
    }
}

/// The planner. Holds a catalog reference for name resolution and stats.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    overrides: Option<&'a PlannerOverrides>,
}

/// One table in the FROM scope.
struct ScopeTable {
    entry: Arc<TableEntry>,
    name: String,
    alias: Option<String>,
    /// Global column offset of this table's first column.
    offset: usize,
}

struct Scope {
    tables: Vec<ScopeTable>,
}

impl Scope {
    /// Resolve a (possibly qualified) column to its global position.
    fn resolve(&self, table: Option<&str>, name: &str) -> DbResult<usize> {
        let mut found = None;
        for t in &self.tables {
            if let Some(q) = table {
                let matches = t
                    .alias
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(q))
                    || t.name.eq_ignore_ascii_case(q);
                if !matches {
                    continue;
                }
            }
            if let Ok(idx) = t.entry.table.schema().index_of(name) {
                if found.is_some() {
                    return Err(DbError::Plan(format!("ambiguous column '{name}'")));
                }
                found = Some(t.offset + idx);
            }
        }
        found.ok_or_else(|| DbError::Plan(format!("unknown column '{name}'")))
    }

    /// Which table (index into `tables`) owns global column `col`.
    fn table_of(&self, col: usize) -> usize {
        for (i, t) in self.tables.iter().enumerate().rev() {
            if col >= t.offset {
                return i;
            }
        }
        0
    }
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog) -> Planner<'a> {
        Planner {
            catalog,
            overrides: None,
        }
    }

    /// A planner that applies what-if [`PlannerOverrides`] (hypothetical
    /// and hidden indexes) on top of the catalog during index selection.
    pub fn with_overrides(catalog: &'a Catalog, overrides: &'a PlannerOverrides) -> Planner<'a> {
        Planner {
            catalog,
            overrides: Some(overrides),
        }
    }

    /// Plan a statement. DDL/transaction-control statements that need no
    /// plan return an error here; the engine handles them directly.
    pub fn plan(&self, stmt: &Statement) -> DbResult<PlanNode> {
        match stmt {
            Statement::Select(select) => self.plan_select(select),
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.plan_insert(table, columns, rows),
            Statement::Update {
                table,
                assignments,
                predicate,
            } => self.plan_update(table, assignments, predicate.as_ref()),
            Statement::Delete { table, predicate } => self.plan_delete(table, predicate.as_ref()),
            Statement::CreateIndex {
                name,
                table,
                columns,
                threads,
            } => self.plan_create_index(name, table, columns, threads.unwrap_or(1)),
            other => Err(DbError::Plan(format!(
                "statement {other:?} is handled by the engine, not the planner"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn plan_select(&self, select: &Select) -> DbResult<PlanNode> {
        let scope = self.build_scope(select)?;

        // Bind the WHERE clause over the global layout and split into
        // conjuncts.
        let mut conjuncts: Vec<BoundExpr> = Vec::new();
        if let Some(pred) = &select.predicate {
            let bound = self.bind(pred, &scope)?;
            split_conjuncts(bound, &mut conjuncts);
        }

        // Classify conjuncts.
        let mut table_filters: Vec<Vec<BoundExpr>> = vec![Vec::new(); scope.tables.len()];
        let mut join_edges: Vec<(usize, usize)> = Vec::new(); // global col pairs
        let mut residual: Vec<BoundExpr> = Vec::new();
        for c in conjuncts {
            let cols = c.columns();
            let tables: std::collections::BTreeSet<usize> =
                cols.iter().map(|&col| scope.table_of(col)).collect();
            match tables.len() {
                0 | 1 => {
                    let t = tables.into_iter().next().unwrap_or(0);
                    table_filters[t].push(c);
                }
                2 => {
                    if let BoundExpr::Binary {
                        op: BinOp::Eq,
                        left,
                        right,
                    } = &c
                    {
                        if let (BoundExpr::Col(a), BoundExpr::Col(b)) = (&**left, &**right) {
                            join_edges.push((*a, *b));
                            continue;
                        }
                    }
                    residual.push(c);
                }
                _ => residual.push(c),
            }
        }

        // Build one scan per table (pushing filters and choosing indexes).
        struct Item {
            node: PlanNode,
            /// Global column ids in output order.
            layout: Vec<usize>,
            tables: std::collections::BTreeSet<usize>,
        }
        let mut items: Vec<Item> = Vec::new();
        for (ti, st) in scope.tables.iter().enumerate() {
            let filters = std::mem::take(&mut table_filters[ti]);
            let local: Vec<BoundExpr> = filters
                .iter()
                .map(|f| f.remap(&|g| g - st.offset))
                .collect();
            let node = self.plan_scan(&st.entry, &st.name, local)?;
            let n = st.entry.table.schema().len();
            items.push(Item {
                node,
                layout: (st.offset..st.offset + n).collect(),
                tables: std::iter::once(ti).collect(),
            });
        }

        // Greedy join ordering: start from the smallest item; repeatedly
        // join with the connected item that minimizes estimated output.
        while items.len() > 1 {
            // Find the connected pair with the smallest combined estimate;
            // fall back to a nested-loop cross join when disconnected.
            let mut best: Option<(usize, usize, f64, bool)> = None; // (i, j, est, has_edge)
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    let has_edge = join_edges.iter().any(|(a, b)| {
                        let ta = scope.table_of(*a);
                        let tb = scope.table_of(*b);
                        (items[i].tables.contains(&ta) && items[j].tables.contains(&tb))
                            || (items[i].tables.contains(&tb) && items[j].tables.contains(&ta))
                    });
                    let cost = items[i].node.est().rows_out * items[j].node.est().rows_out;
                    let candidate = (i, j, cost, has_edge);
                    best = match best {
                        None => Some(candidate),
                        Some(b2) => {
                            // Prefer edges, then lower cost.
                            let better = match (has_edge, b2.3) {
                                (true, false) => true,
                                (false, true) => false,
                                _ => cost < b2.2,
                            };
                            Some(if better { candidate } else { b2 })
                        }
                    };
                }
            }
            let (i, j, _, has_edge) = best.expect("at least two items");
            let (first, second) = if i < j { (i, j) } else { (j, i) };
            let right = items.remove(second);
            let left = items.remove(first);

            // Gather the edges joining the two sides.
            let mut keys_left: Vec<usize> = Vec::new(); // global
            let mut keys_right: Vec<usize> = Vec::new();
            join_edges.retain(|(a, b)| {
                let ta = scope.table_of(*a);
                let tb = scope.table_of(*b);
                if left.tables.contains(&ta) && right.tables.contains(&tb) {
                    keys_left.push(*a);
                    keys_right.push(*b);
                    false
                } else if left.tables.contains(&tb) && right.tables.contains(&ta) {
                    keys_left.push(*b);
                    keys_right.push(*a);
                    false
                } else {
                    true
                }
            });

            let joined = if has_edge {
                // Build on the smaller side.
                let (build, probe, build_keys_g, probe_keys_g) =
                    if left.node.est().rows_out <= right.node.est().rows_out {
                        (left, right, keys_left, keys_right)
                    } else {
                        (right, left, keys_right, keys_left)
                    };
                let build_keys: Vec<usize> = build_keys_g
                    .iter()
                    .map(|g| global_to_local(&build.layout, *g))
                    .collect::<DbResult<_>>()?;
                let probe_keys: Vec<usize> = probe_keys_g
                    .iter()
                    .map(|g| global_to_local(&probe.layout, *g))
                    .collect::<DbResult<_>>()?;
                // Output layout: probe columns then build columns.
                let mut layout = probe.layout.clone();
                layout.extend(build.layout.iter().copied());
                let card = estimate_join_cardinality(&scope, &build_keys_g, build.node.est());
                let rows_out = (build.node.est().rows_out * probe.node.est().rows_out
                    / card.max(1.0))
                .max(1.0);
                let est = Est {
                    rows_in: build.node.est().rows_out + probe.node.est().rows_out,
                    rows_out,
                    n_cols: layout.len(),
                    width: build.node.est().width + probe.node.est().width,
                    cardinality: card,
                };
                let tables = &left_right_tables(&probe.tables, &build.tables);
                Item {
                    node: PlanNode::HashJoin {
                        build: Box::new(build.node),
                        probe: Box::new(probe.node),
                        build_keys,
                        probe_keys,
                        filter: None,
                        est,
                    },
                    layout,
                    tables: tables.clone(),
                }
            } else {
                let mut layout = left.layout.clone();
                layout.extend(right.layout.iter().copied());
                let rows_out = left.node.est().rows_out * right.node.est().rows_out;
                let est = Est {
                    rows_in: left.node.est().rows_out + right.node.est().rows_out,
                    rows_out,
                    n_cols: layout.len(),
                    width: left.node.est().width + right.node.est().width,
                    cardinality: rows_out,
                };
                let tables = left_right_tables(&left.tables, &right.tables);
                Item {
                    node: PlanNode::NestedLoopJoin {
                        outer: Box::new(left.node),
                        inner: Box::new(right.node),
                        filter: None,
                        est,
                    },
                    layout,
                    tables,
                }
            };
            items.push(joined);
        }
        let top = items.pop().expect("one item");
        let (mut node, layout) = (top.node, top.layout);

        // Attach residual (multi-table) predicates above the join tree.
        if !residual.is_empty() {
            let combined = residual
                .into_iter()
                .map(|e| remap_checked(&e, &layout))
                .collect::<DbResult<Vec<_>>>()?
                .into_iter()
                .reduce(|a, b| BoundExpr::Binary {
                    op: BinOp::And,
                    left: Box::new(a),
                    right: Box::new(b),
                })
                .expect("non-empty residual");
            // Fold into the top join's filter slot if it is a join, else a
            // degenerate single-table residual stays on the scan.
            node = attach_filter(node, combined);
        }

        // Aggregation. DISTINCT desugars to grouping on the select list.
        let has_aggs = select_has_aggs(select);
        let effective_group_by: Vec<Expr> = if !select.group_by.is_empty() {
            select.group_by.clone()
        } else if select.distinct && !has_aggs && !select.items.is_empty() {
            select.items.iter().map(|i| i.expr.clone()).collect()
        } else {
            Vec::new()
        };
        let mut post_layout_exprs: Vec<BoundExpr> = Vec::new(); // projection over current output
        let mut agg_output_names: Vec<Option<String>> = Vec::new();
        // Aggregation context, kept for ORDER BY expressions that reference
        // grouped data without appearing in the select list.
        let mut agg_context: Option<(Vec<AggSpecEntry>, usize)> = None;
        if has_aggs || !effective_group_by.is_empty() {
            let group_bound: Vec<BoundExpr> = effective_group_by
                .iter()
                .map(|g| {
                    self.bind(g, &scope)
                        .and_then(|b| remap_checked(&b, &layout))
                })
                .collect::<DbResult<_>>()?;
            // Collect aggregate specs from the select items and HAVING.
            let mut specs: Vec<AggSpecEntry> = Vec::new();
            let having_exprs: Vec<&Expr> = select.having.iter().collect();
            for expr in select.items.iter().map(|i| &i.expr).chain(having_exprs) {
                collect_aggs(expr, &mut |func, arg| -> DbResult<()> {
                    let bound = arg
                        .map(|a| {
                            self.bind(a, &scope)
                                .and_then(|b| remap_checked(&b, &layout))
                        })
                        .transpose()?;
                    let ast = Expr::Agg {
                        func,
                        arg: arg.map(|a| Box::new(a.clone())),
                    };
                    if !specs.iter().any(|(f, _, e)| *f == func && *e == ast) {
                        specs.push((func, bound, ast));
                    }
                    Ok(())
                })?;
            }
            if specs.is_empty() && select.items.is_empty() {
                return Err(DbError::Plan(
                    "GROUP BY requires an explicit select list".into(),
                ));
            }
            let n_groups = group_bound.len();
            let input_est = *node.est();
            let group_card: f64 = estimate_group_cardinality(
                &scope,
                &effective_group_by,
                &layout,
                input_est.rows_out,
            );
            let agg_specs: Vec<AggSpec> = specs
                .iter()
                .map(|(func, arg, _)| AggSpec {
                    func: *func,
                    arg: arg.clone(),
                })
                .collect();
            let est = Est {
                rows_in: input_est.rows_out,
                rows_out: group_card.max(1.0),
                n_cols: n_groups + agg_specs.len(),
                width: (n_groups * 8 + agg_specs.len() * 8) as f64,
                cardinality: group_card.max(1.0),
            };
            node = PlanNode::Aggregate {
                input: Box::new(node),
                group_by: group_bound,
                aggs: agg_specs,
                est,
            };
            // HAVING filters the grouped output.
            if let Some(having) = &select.having {
                let predicate = map_post_agg(having, &effective_group_by, &specs, n_groups)?;
                let input_est = *node.est();
                let est = Est {
                    rows_in: input_est.rows_out,
                    rows_out: (input_est.rows_out * 0.5).max(1.0),
                    ..input_est
                };
                node = PlanNode::Filter {
                    input: Box::new(node),
                    predicate,
                    est,
                };
            }
            // Projection over the aggregate output.
            for item in &select.items {
                let mapped = map_post_agg(&item.expr, &effective_group_by, &specs, n_groups)?;
                post_layout_exprs.push(mapped);
                agg_output_names.push(item.alias.clone());
            }
            agg_context = Some((specs, n_groups));
        } else if !select.items.is_empty() {
            // Plain projection over the join output.
            for item in &select.items {
                let bound = self.bind(&item.expr, &scope)?;
                post_layout_exprs.push(remap_checked(&bound, &layout)?);
                agg_output_names.push(item.alias.clone());
            }
        }

        // Resolve ORDER BY keys before building the projection: a key that
        // is neither an alias nor a select item is appended as a hidden
        // projection column and stripped after the sort.
        let n_visible = post_layout_exprs.len();
        let mut sort_keys: Vec<SortKey> = Vec::new();
        for o in &select.order_by {
            let expr = match resolve_order_expr(&o.expr, select, &agg_output_names) {
                Some(i) => BoundExpr::Col(i),
                None if select.items.is_empty() && !has_aggs => {
                    // SELECT *: sort directly over the join layout.
                    let bound = self.bind(&o.expr, &scope)?;
                    remap_checked(&bound, &layout)?
                }
                None => {
                    // Hidden column over the pre-projection output.
                    let hidden = match &agg_context {
                        Some((specs, n_groups)) => {
                            map_post_agg(&o.expr, &effective_group_by, specs, *n_groups)?
                        }
                        None => {
                            let bound = self.bind(&o.expr, &scope)?;
                            remap_checked(&bound, &layout)?
                        }
                    };
                    post_layout_exprs.push(hidden);
                    BoundExpr::Col(post_layout_exprs.len() - 1)
                }
            };
            sort_keys.push(SortKey { expr, desc: o.desc });
        }

        if !post_layout_exprs.is_empty() {
            let input_est = *node.est();
            let est = Est {
                rows_in: input_est.rows_out,
                rows_out: input_est.rows_out,
                n_cols: post_layout_exprs.len(),
                width: (post_layout_exprs.len() * 8) as f64,
                cardinality: input_est.cardinality,
            };
            node = PlanNode::Project {
                input: Box::new(node),
                exprs: post_layout_exprs.clone(),
                est,
            };
        }

        if !sort_keys.is_empty() {
            let input_est = *node.est();
            let est = Est {
                rows_in: input_est.rows_out,
                rows_out: input_est.rows_out,
                n_cols: input_est.n_cols,
                width: input_est.width,
                cardinality: input_est.rows_out,
            };
            node = PlanNode::Sort {
                input: Box::new(node),
                keys: sort_keys,
                est,
            };
            // Strip hidden sort columns.
            if post_layout_exprs.len() > n_visible && n_visible > 0 {
                let input_est = *node.est();
                let est = Est {
                    n_cols: n_visible,
                    ..input_est
                };
                node = PlanNode::Project {
                    input: Box::new(node),
                    exprs: (0..n_visible).map(BoundExpr::Col).collect(),
                    est,
                };
            }
        }

        if let Some(n) = select.limit {
            let input_est = *node.est();
            let est = Est {
                rows_in: input_est.rows_out,
                rows_out: input_est.rows_out.min(n as f64),
                ..input_est
            };
            node = PlanNode::Limit {
                input: Box::new(node),
                n,
                est,
            };
        }

        let input_est = *node.est();
        Ok(PlanNode::Output {
            input: Box::new(node),
            sink: OutputSink::Client,
            est: input_est,
        })
    }

    fn build_scope(&self, select: &Select) -> DbResult<Scope> {
        let mut tables = Vec::new();
        let mut offset = 0;
        for tr in &select.from {
            let entry = self.catalog.get(&tr.name)?;
            let n = entry.table.schema().len();
            tables.push(ScopeTable {
                entry,
                name: tr.name.to_ascii_lowercase(),
                alias: tr.alias.clone(),
                offset,
            });
            offset += n;
        }
        Ok(Scope { tables })
    }

    /// Bind an AST expression over the scope's global layout. Aggregates are
    /// rejected here — they are collected separately.
    fn bind(&self, expr: &Expr, scope: &Scope) -> DbResult<BoundExpr> {
        match expr {
            Expr::Column { table, name } => {
                Ok(BoundExpr::Col(scope.resolve(table.as_deref(), name)?))
            }
            Expr::Literal(v) => Ok(BoundExpr::Lit(v.clone())),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind(left, scope)?),
                right: Box::new(self.bind(right, scope)?),
            }),
            Expr::Unary { op, operand } => Ok(BoundExpr::Unary {
                op: *op,
                operand: Box::new(self.bind(operand, scope)?),
            }),
            Expr::Agg { .. } => Err(DbError::Plan(
                "aggregate not allowed in this context".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Scans (shared by SELECT / UPDATE / DELETE)
    // ------------------------------------------------------------------

    /// Build the best scan for one table given its pushed-down conjuncts
    /// (bound to table-local column positions).
    fn plan_scan(
        &self,
        entry: &TableEntry,
        table_name: &str,
        conjuncts: Vec<BoundExpr>,
    ) -> DbResult<PlanNode> {
        let stats = entry.stats();
        let schema = entry.table.schema();
        let n_cols = schema.len();
        let width = schema.estimated_tuple_size() as f64;
        let base_rows = stats.row_count.max(entry.table.live_tuples()) as f64;

        // Equality literals per column, for index-prefix matching.
        let mut eq_lit: std::collections::HashMap<usize, Value> = std::collections::HashMap::new();
        for c in &conjuncts {
            if let BoundExpr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } = c
            {
                match (&**left, &**right) {
                    (BoundExpr::Col(i), BoundExpr::Lit(v))
                    | (BoundExpr::Lit(v), BoundExpr::Col(i)) => {
                        eq_lit.insert(*i, v.clone());
                    }
                    _ => {}
                }
            }
        }

        // Candidate indexes: the catalog's (minus any hidden by what-if
        // overrides) plus hypothetical ones declared for this table.
        let mut candidates: Vec<(String, Vec<usize>)> = Vec::new();
        for index in entry.indexes() {
            let hidden = self.overrides.is_some_and(|ov| {
                ov.hidden_indexes
                    .iter()
                    .any(|h| h.eq_ignore_ascii_case(&index.name))
            });
            if !hidden {
                candidates.push((index.name.clone(), index.key_columns.clone()));
            }
        }
        if let Some(ov) = self.overrides {
            for h in &ov.hypothetical_indexes {
                if h.table.eq_ignore_ascii_case(table_name) {
                    candidates.push((h.name.clone(), h.columns.clone()));
                }
            }
        }

        // Pick the index with the longest fully-bound equality prefix.
        let mut best_index: Option<(String, Vec<usize>, usize)> = None;
        for (name, key_columns) in candidates {
            let mut prefix = 0;
            for col in &key_columns {
                if eq_lit.contains_key(col) {
                    prefix += 1;
                } else {
                    break;
                }
            }
            if prefix > 0 && best_index.as_ref().is_none_or(|(_, _, p)| prefix > *p) {
                best_index = Some((name, key_columns, prefix));
            }
        }

        let selectivity = estimate_selectivity(&stats, &conjuncts);
        let est_rows = (base_rows * selectivity).max(0.0);

        if let Some((index_name, key_columns, prefix)) = best_index {
            let prefix_cols: Vec<usize> = key_columns[..prefix].to_vec();
            let bound: Vec<Value> = prefix_cols.iter().map(|c| eq_lit[c].clone()).collect();
            // Residual: everything not fully expressed by the prefix.
            let residual: Vec<BoundExpr> = conjuncts
                .into_iter()
                .filter(|c| {
                    !matches!(c, BoundExpr::Binary { op: BinOp::Eq, left, right }
                        if matches!((&**left, &**right),
                            (BoundExpr::Col(i), BoundExpr::Lit(_)) if prefix_cols.contains(i))
                        || matches!((&**left, &**right),
                            (BoundExpr::Lit(_), BoundExpr::Col(i)) if prefix_cols.contains(i)))
                })
                .collect();
            let filter = combine_conjuncts(residual);
            // Index selectivity from the prefix columns only.
            let idx_sel: f64 = prefix_cols
                .iter()
                .map(|&c| stats.eq_selectivity(c))
                .product();
            let est = Est {
                rows_in: (base_rows * idx_sel).max(1.0),
                rows_out: est_rows.max(1.0),
                n_cols,
                width,
                cardinality: est_rows.max(1.0),
            };
            return Ok(PlanNode::IndexScan {
                table: table_name.to_string(),
                index: index_name,
                range: ScanRange {
                    lo: bound.clone(),
                    hi: bound,
                },
                filter,
                est,
            });
        }

        let filter = combine_conjuncts(conjuncts);
        let est = Est {
            rows_in: base_rows,
            rows_out: est_rows.max(1.0),
            n_cols,
            width,
            cardinality: est_rows.max(1.0),
        };
        Ok(PlanNode::SeqScan {
            table: table_name.to_string(),
            filter,
            est,
        })
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn plan_insert(
        &self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> DbResult<PlanNode> {
        let entry = self.catalog.get(table)?;
        let schema = entry.table.schema().clone();
        let positions: Vec<usize> = if columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<DbResult<_>>()?
        };
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return Err(DbError::Plan(format!(
                    "INSERT arity mismatch: {} values for {} columns",
                    row.len(),
                    positions.len()
                )));
            }
            let mut tuple = vec![Value::Null; schema.len()];
            for (expr, &pos) in row.iter().zip(&positions) {
                let v = const_eval(expr)?;
                tuple[pos] = if v.is_null() {
                    v
                } else {
                    v.cast(schema.column(pos).ty)?
                };
            }
            out_rows.push(tuple);
        }
        let n = out_rows.len() as f64;
        let width = schema.estimated_tuple_size() as f64;
        Ok(PlanNode::Insert {
            table: table.to_ascii_lowercase(),
            rows: out_rows,
            est: Est {
                rows_in: n,
                rows_out: n,
                n_cols: schema.len(),
                width,
                cardinality: n,
            },
        })
    }

    fn plan_update(
        &self,
        table: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> DbResult<PlanNode> {
        let entry = self.catalog.get(table)?;
        let scope = self.single_table_scope(table)?;
        let conjuncts = self.bind_conjuncts(predicate, &scope)?;
        let scan = self.plan_scan(&entry, &table.to_ascii_lowercase(), conjuncts)?;
        let schema = entry.table.schema();
        let bound_assignments: Vec<(usize, BoundExpr)> = assignments
            .iter()
            .map(|(col, expr)| {
                let pos = schema.index_of(col)?;
                Ok((pos, self.bind(expr, &scope)?))
            })
            .collect::<DbResult<_>>()?;
        let est = *scan.est();
        Ok(PlanNode::Update {
            table: table.to_ascii_lowercase(),
            scan: Box::new(scan),
            assignments: bound_assignments,
            est,
        })
    }

    fn plan_delete(&self, table: &str, predicate: Option<&Expr>) -> DbResult<PlanNode> {
        let entry = self.catalog.get(table)?;
        let scope = self.single_table_scope(table)?;
        let conjuncts = self.bind_conjuncts(predicate, &scope)?;
        let scan = self.plan_scan(&entry, &table.to_ascii_lowercase(), conjuncts)?;
        let est = *scan.est();
        Ok(PlanNode::Delete {
            table: table.to_ascii_lowercase(),
            scan: Box::new(scan),
            est,
        })
    }

    fn plan_create_index(
        &self,
        name: &str,
        table: &str,
        columns: &[String],
        threads: usize,
    ) -> DbResult<PlanNode> {
        let entry = self.catalog.get(table)?;
        let schema = entry.table.schema();
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<DbResult<_>>()?;
        let stats = entry.stats();
        let rows = stats.row_count.max(entry.table.live_tuples()) as f64;
        let key_width: f64 = positions
            .iter()
            .map(|&p| schema.column(p).estimated_width() as f64)
            .sum();
        let cardinality: f64 = positions
            .iter()
            .map(|&p| stats.distinct_of(p) as f64)
            .product::<f64>()
            .min(rows.max(1.0));
        Ok(PlanNode::CreateIndex {
            table: table.to_ascii_lowercase(),
            index: name.to_string(),
            columns: positions.clone(),
            threads: threads.max(1),
            est: Est {
                rows_in: rows,
                rows_out: rows,
                n_cols: positions.len(),
                width: key_width,
                cardinality,
            },
        })
    }

    fn single_table_scope(&self, table: &str) -> DbResult<Scope> {
        let entry = self.catalog.get(table)?;
        Ok(Scope {
            tables: vec![ScopeTable {
                entry,
                name: table.to_ascii_lowercase(),
                alias: None,
                offset: 0,
            }],
        })
    }

    fn bind_conjuncts(&self, predicate: Option<&Expr>, scope: &Scope) -> DbResult<Vec<BoundExpr>> {
        let mut out = Vec::new();
        if let Some(p) = predicate {
            let bound = self.bind(p, scope)?;
            split_conjuncts(bound, &mut out);
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

/// A collected aggregate: (function, bound argument, original AST form).
type AggSpecEntry = (crate::expr::AggFunc, Option<BoundExpr>, Expr);

fn split_conjuncts(expr: BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn combine_conjuncts(conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    conjuncts.into_iter().reduce(|a, b| BoundExpr::Binary {
        op: BinOp::And,
        left: Box::new(a),
        right: Box::new(b),
    })
}

fn global_to_local(layout: &[usize], global: usize) -> DbResult<usize> {
    layout
        .iter()
        .position(|&g| g == global)
        .ok_or_else(|| DbError::Plan(format!("column {global} not in layout")))
}

fn remap_checked(expr: &BoundExpr, layout: &[usize]) -> DbResult<BoundExpr> {
    // Verify all references exist before the infallible remap.
    for c in expr.columns() {
        global_to_local(layout, c)?;
    }
    Ok(expr.remap(&|g| layout.iter().position(|&x| x == g).expect("checked")))
}

fn attach_filter(node: PlanNode, extra: BoundExpr) -> PlanNode {
    let and = |old: Option<BoundExpr>, extra: BoundExpr| match old {
        Some(f) => Some(BoundExpr::Binary {
            op: BinOp::And,
            left: Box::new(f),
            right: Box::new(extra),
        }),
        None => Some(extra),
    };
    match node {
        PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            filter,
            est,
        } => PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            filter: and(filter, extra),
            est,
        },
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            filter,
            est,
        } => PlanNode::NestedLoopJoin {
            outer,
            inner,
            filter: and(filter, extra),
            est,
        },
        PlanNode::SeqScan { table, filter, est } => PlanNode::SeqScan {
            table,
            filter: and(filter, extra),
            est,
        },
        PlanNode::IndexScan {
            table,
            index,
            range,
            filter,
            est,
        } => PlanNode::IndexScan {
            table,
            index,
            range,
            filter: and(filter, extra),
            est,
        },
        other => other,
    }
}

fn estimate_selectivity(stats: &TableStats, conjuncts: &[BoundExpr]) -> f64 {
    let mut sel = 1.0;
    for c in conjuncts {
        sel *= conjunct_selectivity(stats, c);
    }
    sel.clamp(1e-7, 1.0)
}

fn conjunct_selectivity(stats: &TableStats, c: &BoundExpr) -> f64 {
    if let BoundExpr::Binary { op, left, right } = c {
        let col_lit = match (&**left, &**right) {
            (BoundExpr::Col(i), BoundExpr::Lit(v)) => Some((*i, v.clone(), false)),
            (BoundExpr::Lit(v), BoundExpr::Col(i)) => Some((*i, v.clone(), true)),
            _ => None,
        };
        if let Some((col, lit, flipped)) = col_lit {
            let x = lit.as_f64().ok();
            return match (op, flipped) {
                (BinOp::Eq, _) => stats.eq_selectivity(col),
                (BinOp::NotEq, _) => 1.0 - stats.eq_selectivity(col),
                (BinOp::Lt | BinOp::LtEq, false) | (BinOp::Gt | BinOp::GtEq, true) => {
                    stats.range_selectivity(col, None, x)
                }
                (BinOp::Gt | BinOp::GtEq, false) | (BinOp::Lt | BinOp::LtEq, true) => {
                    stats.range_selectivity(col, x, None)
                }
                _ => 0.3,
            };
        }
    }
    0.3
}

fn estimate_join_cardinality(scope: &Scope, build_keys_global: &[usize], build_est: &Est) -> f64 {
    let mut card = 1.0f64;
    for &g in build_keys_global {
        let t = scope.table_of(g);
        let local = g - scope.tables[t].offset;
        card *= scope.tables[t].entry.stats().distinct_of(local) as f64;
    }
    card.min(build_est.rows_out.max(1.0))
}

fn estimate_group_cardinality(
    scope: &Scope,
    group_by: &[Expr],
    _layout: &[usize],
    rows: f64,
) -> f64 {
    if group_by.is_empty() {
        return 1.0;
    }
    let mut card = 1.0f64;
    for g in group_by {
        if let Expr::Column { table, name } = g {
            if let Ok(global) = scope.resolve(table.as_deref(), name) {
                let t = scope.table_of(global);
                let local = global - scope.tables[t].offset;
                card *= scope.tables[t].entry.stats().distinct_of(local) as f64;
                continue;
            }
        }
        card *= 10.0; // default guess for computed group keys
    }
    card.min(rows.max(1.0))
}

fn select_has_aggs(select: &Select) -> bool {
    fn expr_has_agg(e: &Expr) -> bool {
        match e {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => expr_has_agg(left) || expr_has_agg(right),
            Expr::Unary { operand, .. } => expr_has_agg(operand),
            _ => false,
        }
    }
    select.items.iter().any(|i| expr_has_agg(&i.expr))
}

fn collect_aggs(
    e: &Expr,
    f: &mut impl FnMut(crate::expr::AggFunc, Option<&Expr>) -> DbResult<()>,
) -> DbResult<()> {
    match e {
        Expr::Agg { func, arg } => f(*func, arg.as_deref()),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, f)?;
            collect_aggs(right, f)
        }
        Expr::Unary { operand, .. } => collect_aggs(operand, f),
        _ => Ok(()),
    }
}

/// Rewrite a post-aggregation select expression into a [`BoundExpr`] over
/// the aggregate node's output (group columns, then aggregate results).
fn map_post_agg(
    e: &Expr,
    group_by: &[Expr],
    specs: &[AggSpecEntry],
    n_groups: usize,
) -> DbResult<BoundExpr> {
    // Whole-expression group match.
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Ok(BoundExpr::Col(i));
    }
    match e {
        Expr::Agg { .. } => {
            let pos = specs
                .iter()
                .position(|(_, _, ast)| ast == e)
                .ok_or_else(|| DbError::Plan("aggregate not collected".into()))?;
            Ok(BoundExpr::Col(n_groups + pos))
        }
        Expr::Literal(v) => Ok(BoundExpr::Lit(v.clone())),
        Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
            op: *op,
            left: Box::new(map_post_agg(left, group_by, specs, n_groups)?),
            right: Box::new(map_post_agg(right, group_by, specs, n_groups)?),
        }),
        Expr::Unary { op, operand } => Ok(BoundExpr::Unary {
            op: *op,
            operand: Box::new(map_post_agg(operand, group_by, specs, n_groups)?),
        }),
        Expr::Column { name, .. } => Err(DbError::Plan(format!(
            "column '{name}' must appear in GROUP BY or inside an aggregate"
        ))),
    }
}

/// Resolve an ORDER BY expression to a projected output column: by alias, or
/// by structural equality with a select item.
fn resolve_order_expr(e: &Expr, select: &Select, _names: &[Option<String>]) -> Option<usize> {
    if let Expr::Column { table: None, name } = e {
        if let Some(i) = select.items.iter().position(|it| {
            it.alias
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(name))
        }) {
            return Some(i);
        }
    }
    select.items.iter().position(|it| &it.expr == e)
}

fn left_right_tables(
    a: &std::collections::BTreeSet<usize>,
    b: &std::collections::BTreeSet<usize>,
) -> std::collections::BTreeSet<usize> {
    a.union(b).copied().collect()
}

fn const_eval(expr: &Expr) -> DbResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => match const_eval(operand)? {
            Value::Int(x) => Ok(Value::Int(-x)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(DbError::Plan(format!("cannot negate {other}"))),
        },
        Expr::Binary { op, left, right } => {
            let bound = BoundExpr::Binary {
                op: *op,
                left: Box::new(BoundExpr::Lit(const_eval(left)?)),
                right: Box::new(BoundExpr::Lit(const_eval(right)?)),
            };
            bound
                .eval(&[])
                .map_err(|e| DbError::Plan(format!("INSERT value: {e}")))
        }
        other => Err(DbError::Plan(format!(
            "INSERT values must be constants, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mb2_common::{Column, DataType, Schema};
    use mb2_storage::Ts;

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let orders = cat
            .create_table(
                "orders",
                Schema::new(vec![
                    Column::new("o_id", DataType::Int),
                    Column::new("o_cust", DataType::Int),
                    Column::new("o_total", DataType::Float),
                ]),
            )
            .unwrap();
        let cust = cat
            .create_table(
                "customer",
                Schema::new(vec![
                    Column::new("c_id", DataType::Int),
                    Column::new("c_name", DataType::Varchar),
                ]),
            )
            .unwrap();
        // Load data so stats are meaningful: 1000 orders, 100 customers.
        for i in 0..1000 {
            let slot = orders
                .table
                .insert(
                    vec![Value::Int(i), Value::Int(i % 100), Value::Float(i as f64)],
                    Ts::txn(1),
                )
                .unwrap();
            orders.table.commit_slot(slot, Ts::txn(1), Ts(2), 1);
        }
        for i in 0..100 {
            let slot = cust
                .table
                .insert(
                    vec![Value::Int(i), Value::Varchar(format!("c{i}"))],
                    Ts::txn(1),
                )
                .unwrap();
            cust.table.commit_slot(slot, Ts::txn(1), Ts(2), 1);
        }
        orders.analyze(Ts(2));
        cust.analyze(Ts(2));
        cust.add_index(Arc::new(mb2_index::Index::new("cust_pk", vec![0])))
            .unwrap();
        cat
    }

    fn plan(cat: &Catalog, sql: &str) -> PlanNode {
        let stmt = parse(sql).unwrap();
        Planner::new(cat).plan(&stmt).unwrap()
    }

    #[test]
    fn simple_scan_with_filter() {
        let cat = setup();
        let p = plan(&cat, "SELECT * FROM orders WHERE o_total > 500.0");
        match &p {
            PlanNode::Output { input, .. } => match &**input {
                PlanNode::SeqScan { filter, est, .. } => {
                    assert!(filter.is_some());
                    // ~50% selectivity from range stats.
                    assert!(est.rows_out > 300.0 && est.rows_out < 700.0, "{est:?}");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_scan_chosen_for_pk_equality() {
        let cat = setup();
        let p = plan(&cat, "SELECT * FROM customer WHERE c_id = 5");
        match &p {
            PlanNode::Output { input, .. } => match &**input {
                PlanNode::IndexScan {
                    index, range, est, ..
                } => {
                    assert_eq!(index, "cust_pk");
                    assert_eq!(range.lo, vec![Value::Int(5)]);
                    assert!(est.rows_out <= 2.0);
                }
                other => panic!("expected index scan, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hash_join_build_on_smaller_side() {
        let cat = setup();
        let p = plan(
            &cat,
            "SELECT o.o_id, c.c_name FROM orders o, customer c WHERE o.o_cust = c.c_id",
        );
        // Expect Output -> Project -> HashJoin(build=customer, probe=orders).
        let join = find_node(&p, "HashJoin").expect("hash join present");
        match join {
            PlanNode::HashJoin {
                build, probe, est, ..
            } => {
                assert_eq!(node_table(build), Some("customer"));
                assert_eq!(node_table(probe), Some("orders"));
                assert!(est.rows_out > 500.0, "{est:?}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn aggregation_plan_shape() {
        let cat = setup();
        let p = plan(
            &cat,
            "SELECT o_cust, COUNT(*), SUM(o_total) FROM orders GROUP BY o_cust ORDER BY o_cust",
        );
        assert!(find_node(&p, "Aggregate").is_some());
        assert!(find_node(&p, "Sort").is_some());
        let agg = find_node(&p, "Aggregate").unwrap();
        if let PlanNode::Aggregate { aggs, est, .. } = agg {
            assert_eq!(aggs.len(), 2);
            // 100 distinct customers.
            assert!((est.rows_out - 100.0).abs() < 1.0, "{est:?}");
        }
    }

    #[test]
    fn order_by_alias() {
        let cat = setup();
        let p = plan(
            &cat,
            "SELECT o_cust, SUM(o_total) AS total FROM orders GROUP BY o_cust ORDER BY total DESC LIMIT 5",
        );
        let sort = find_node(&p, "Sort").unwrap();
        if let PlanNode::Sort { keys, .. } = sort {
            assert_eq!(keys[0].expr, BoundExpr::Col(1));
            assert!(keys[0].desc);
        }
        assert!(find_node(&p, "Limit").is_some());
    }

    #[test]
    fn update_plan_binds_assignments() {
        let cat = setup();
        let p = plan(
            &cat,
            "UPDATE orders SET o_total = o_total + 1.0 WHERE o_id = 3",
        );
        match &p {
            PlanNode::Update {
                assignments, scan, ..
            } => {
                assert_eq!(assignments[0].0, 2);
                assert!(matches!(**scan, PlanNode::SeqScan { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_const_evaluates_and_casts() {
        let cat = setup();
        let p = plan(
            &cat,
            "INSERT INTO customer (c_id, c_name) VALUES (1 + 2, 'x')",
        );
        match &p {
            PlanNode::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Int(3));
                assert_eq!(rows[0][1], Value::from("x"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_rejects_non_constants() {
        let cat = setup();
        let stmt = parse("INSERT INTO customer (c_id, c_name) VALUES (c_id, 'x')").unwrap();
        assert!(Planner::new(&cat).plan(&stmt).is_err());
    }

    #[test]
    fn create_index_plan() {
        let cat = setup();
        let p = plan(
            &cat,
            "CREATE INDEX o_cust_idx ON orders (o_cust) WITH (THREADS = 4)",
        );
        match &p {
            PlanNode::CreateIndex {
                columns,
                threads,
                est,
                ..
            } => {
                assert_eq!(columns, &vec![1]);
                assert_eq!(*threads, 4);
                assert_eq!(est.rows_in, 1000.0);
                assert!((est.cardinality - 100.0).abs() < 1.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_column_is_plan_error() {
        let cat = setup();
        let stmt = parse("SELECT nope FROM orders").unwrap();
        assert!(matches!(
            Planner::new(&cat).plan(&stmt),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn ambiguous_column_detected() {
        let cat = setup();
        // o_id exists only in orders, c_id only in customer: unambiguous.
        // But a self-join makes every column ambiguous.
        let stmt = parse("SELECT o_id FROM orders a, orders b WHERE a.o_id = b.o_id").unwrap();
        assert!(Planner::new(&cat).plan(&stmt).is_err());
    }

    #[test]
    fn hypothetical_index_is_considered() {
        let cat = setup();
        // orders has no index; a hypothetical one on o_cust flips the
        // equality scan to an IndexScan referencing the hypothetical name.
        let ov = PlannerOverrides {
            hypothetical_indexes: vec![HypotheticalIndex {
                table: "orders".into(),
                name: "hypo_o_cust".into(),
                columns: vec![1],
            }],
            hidden_indexes: vec![],
        };
        let stmt = parse("SELECT * FROM orders WHERE o_cust = 7").unwrap();
        let p = Planner::with_overrides(&cat, &ov).plan(&stmt).unwrap();
        match find_node(&p, "IndexScan") {
            Some(PlanNode::IndexScan { index, .. }) => assert_eq!(index, "hypo_o_cust"),
            other => panic!("expected hypothetical index scan, got {other:?}"),
        }
    }

    #[test]
    fn hidden_index_is_ignored() {
        let cat = setup();
        let ov = PlannerOverrides {
            hypothetical_indexes: vec![],
            hidden_indexes: vec!["cust_pk".into()],
        };
        let stmt = parse("SELECT * FROM customer WHERE c_id = 5").unwrap();
        let p = Planner::with_overrides(&cat, &ov).plan(&stmt).unwrap();
        assert!(
            find_node(&p, "IndexScan").is_none(),
            "hidden index must not be chosen: {p:?}"
        );
        assert!(find_node(&p, "SeqScan").is_some());
    }

    #[test]
    fn empty_overrides_change_nothing() {
        let cat = setup();
        let ov = PlannerOverrides::default();
        assert!(ov.is_empty());
        let stmt = parse("SELECT * FROM customer WHERE c_id = 5").unwrap();
        let with = Planner::with_overrides(&cat, &ov).plan(&stmt).unwrap();
        let without = Planner::new(&cat).plan(&stmt).unwrap();
        assert_eq!(format!("{with:?}"), format!("{without:?}"));
    }

    fn find_node<'p>(node: &'p PlanNode, label: &str) -> Option<&'p PlanNode> {
        if node.label() == label {
            return Some(node);
        }
        node.children()
            .into_iter()
            .find_map(|c| find_node(c, label))
    }

    fn node_table(node: &PlanNode) -> Option<&str> {
        match node {
            PlanNode::SeqScan { table, .. } | PlanNode::IndexScan { table, .. } => Some(table),
            _ => None,
        }
    }
}
