//! SQL front end: lexer, parser, binder/planner, and cost-based optimizer.
//!
//! The OU-runners exercise the DBMS through SQL (paper §6.2 chose SQL-level
//! runners over internal-API runners for maintainability), so this crate
//! implements the subset the paper's workloads need: CREATE/DROP TABLE,
//! CREATE/DROP INDEX (with a thread-count option for parallel builds),
//! INSERT, multi-table SELECT with WHERE / GROUP BY / ORDER BY / LIMIT,
//! UPDATE, DELETE, and ANALYZE.
//!
//! The planner produces a [`plan::PlanNode`] tree annotated with cardinality
//! estimates; `mb2-exec` executes that tree and `mb2-core`'s OU translator
//! maps it to operating units with the estimates as model features.

pub mod ast;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;

pub use ast::Statement;
pub use expr::{AggFunc, BinOp, BoundExpr, UnOp};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use plan::{OutputSink, PlanNode, ScanRange};
pub use planner::{HypotheticalIndex, Planner, PlannerOverrides};
