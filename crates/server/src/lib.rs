//! mb2-server: the network front-end for the MB2 reproduction.
//!
//! Three layers:
//!
//! - [`wire`] — the length-prefixed binary protocol (frames, codec, and an
//!   incremental [`wire::FrameReader`] that survives read timeouts).
//! - [`Server`] — TCP acceptor, thread-per-connection workers, admission
//!   control that sheds overload with typed busy frames, and graceful
//!   drain-then-shutdown.
//! - [`Client`] — a blocking Rust client used by the tests and the
//!   multi-client benchmark driver.
//!
//! The server executes through the engine's streaming path, so result
//! batches go to the socket as they are produced rather than being
//! materialized first.

pub mod client;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::{Client, QueryResponse};
pub use sched::{SchedulerPolicy, TierPolicy};
pub use server::{Server, ServerConfig, SupervisorConfig};
pub use wire::{BusyReason, Frame, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
