//! Operator commands answered by the server itself: `SHOW METRICS`,
//! `SHOW PILOT`, `SHOW SHARDS`, and `SHOW BLOCKS` are intercepted before
//! the SQL layer and return plain Varchar row batches over the existing
//! wire protocol.

use std::sync::Arc;

use mb2_common::Value;
use mb2_core::training::OuModelSet;
use mb2_core::BehaviorModels;
use mb2_engine::{Database, DatabaseConfig};
use mb2_pilot::{Pilot, PilotConfig};
use mb2_server::{Client, Server, ServerConfig};

fn text_of(row: &[Value]) -> &str {
    match &row[0] {
        Value::Varchar(s) => s,
        other => panic!("expected Varchar, got {other:?}"),
    }
}

#[test]
fn show_metrics_and_show_pilot_over_the_wire() {
    let db = Arc::new(Database::new(DatabaseConfig::default()).expect("database"));
    let server = Server::start(db.clone(), ServerConfig::default()).expect("server start");
    let mut client = Client::connect(server.local_addr().to_string()).expect("connect");

    // Generate some traffic so the metrics text is non-trivial.
    client.query("CREATE TABLE t (id INT, v INT)").unwrap();
    client.query("INSERT INTO t VALUES (1, 10)").unwrap();

    // SHOW METRICS: one Varchar row per prometheus exposition line.
    let resp = client.query("SHOW METRICS").expect("show metrics");
    assert!(!resp.rows.is_empty());
    assert_eq!(resp.count, resp.rows.len() as u64);
    assert!(
        resp.rows.iter().any(|r| text_of(r).starts_with("mb2_")),
        "no mb2_ metric lines in {:?}",
        resp.rows.iter().take(5).collect::<Vec<_>>()
    );

    // No pilot attached yet.
    let resp = client.query("SHOW PILOT").expect("show pilot");
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(text_of(&resp.rows[0]), "{\"state\":\"detached\"}");

    // Attach a pilot: SHOW PILOT now reports its live status JSON.
    let models = Arc::new(BehaviorModels::new(OuModelSet::default(), None));
    let pilot = Pilot::new(db, models, PilotConfig::default());
    server.attach_pilot(pilot);
    let resp = client.query("SHOW PILOT").expect("show pilot attached");
    assert_eq!(resp.rows.len(), 1);
    let json = text_of(&resp.rows[0]);
    assert!(json.contains("\"state\":\"idle\""), "{json}");
    assert!(json.contains("\"ticks\""), "{json}");

    // Case-insensitive, tolerates trailing semicolon/whitespace.
    let resp = client.query("  show pilot ; ").expect("lowercase");
    assert_eq!(resp.rows.len(), 1);

    // Ordinary SQL still takes the normal path.
    let resp = client.query("SELECT id FROM t").expect("select");
    assert_eq!(resp.rows.len(), 1);

    server.shutdown();
}

#[test]
fn show_shards_reports_per_shard_storage_over_the_wire() {
    let mut config = DatabaseConfig::default();
    config.knobs.shard_count = 4;
    let db = Arc::new(Database::new(config).expect("database"));
    let server = Server::start(db, ServerConfig::default()).expect("server start");
    let mut client = Client::connect(server.local_addr().to_string()).expect("connect");

    client.query("CREATE TABLE t (id INT)").unwrap();
    // 600 rows span the first 512-slot shard unit into the second shard.
    for base in (0..600).step_by(100) {
        let values: Vec<String> = (base..base + 100).map(|i| format!("({i})")).collect();
        client
            .query(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }

    let resp = client.query("SHOW SHARDS").expect("show shards");
    // Header + one row per shard of the 4-shard table.
    assert_eq!(resp.rows.len(), 5, "{:?}", resp.rows);
    assert!(text_of(&resp.rows[0]).starts_with("table shard slots tuples"));
    let mut tuples_total = 0u64;
    for (i, row) in resp.rows[1..].iter().enumerate() {
        let fields: Vec<&str> = text_of(row).split_whitespace().collect();
        assert_eq!(fields[0], "t");
        assert_eq!(fields[1], i.to_string(), "shard rows in shard order");
        tuples_total += fields[3].parse::<u64>().unwrap();
    }
    assert_eq!(tuples_total, 600, "live tuples partition across shards");
    // Shards 0 and 1 both hold rows (600 > one 512-slot unit).
    let shard1: Vec<&str> = text_of(&resp.rows[2]).split_whitespace().collect();
    assert!(shard1[3].parse::<u64>().unwrap() > 0, "{shard1:?}");

    server.shutdown();
}

#[test]
fn show_blocks_reports_sealed_columnar_state_over_the_wire() {
    let db = Arc::new(Database::new(DatabaseConfig::default()).expect("database"));
    let server = Server::start(db.clone(), ServerConfig::default()).expect("server start");
    let mut client = Client::connect(server.local_addr().to_string()).expect("connect");

    client.query("CREATE TABLE t (id INT, v INT)").unwrap();
    // 700 rows fill one 512-slot unit completely; compaction seals it.
    for base in (0..700).step_by(100) {
        let values: Vec<String> = (base..base + 100).map(|i| format!("({i}, {i})")).collect();
        client
            .query(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }

    // Before compaction: the table row reports zero blocks.
    let resp = client.query("SHOW BLOCKS").expect("show blocks");
    assert_eq!(resp.rows.len(), 2, "{:?}", resp.rows);
    assert!(text_of(&resp.rows[0]).starts_with("table shard blocks dirty sealed_tuples"));
    let fields: Vec<&str> = text_of(&resp.rows[1]).split_whitespace().collect();
    assert_eq!(fields[..3], ["t", "0", "0"], "{fields:?}");

    let report = db.compact_now();
    assert!(report.units_sealed >= 1, "{report:?}");

    let resp = client.query("SHOW BLOCKS").expect("show blocks sealed");
    assert_eq!(resp.rows.len(), 2);
    let fields: Vec<String> = text_of(&resp.rows[1])
        .split_whitespace()
        .map(str::to_string)
        .collect();
    assert_eq!(fields[0], "t");
    assert_eq!(fields[2], "1", "one sealed block: {fields:?}");
    assert_eq!(fields[3], "0", "nothing dirty yet: {fields:?}");
    assert_eq!(fields[4], "512", "one full unit sealed: {fields:?}");

    // Writing into the sealed unit dirties its block back to the row path.
    client.query("UPDATE t SET v = -1 WHERE id = 5").unwrap();
    let resp = client.query("SHOW BLOCKS").expect("show blocks dirty");
    let fields: Vec<&str> = text_of(&resp.rows[1]).split_whitespace().collect();
    assert_eq!(fields[3], "1", "sealed block now dirty: {fields:?}");

    server.shutdown();
}
