//! Cross-crate integration tests: the full MB2 pipeline over the real
//! engine, runners, training, and inference.

use mb2::common::{OuKind, Prng};
use mb2::engine::exec::ExecutionMode;
use mb2::engine::Database;
use mb2::framework::runners::execution::{run_execution_runners, ExecutionRunnerConfig};
use mb2::framework::runners::RunnerConfig;
use mb2::framework::training::{train_all, TrainingConfig};
use mb2::framework::BehaviorModels;
use mb2::ml::Algorithm;

fn small_models() -> BehaviorModels {
    let cfg = ExecutionRunnerConfig {
        max_rows: 2048,
        min_rows: 128,
        measure: RunnerConfig {
            repetitions: 4,
            warmups: 1,
            ..RunnerConfig::default()
        },
        ..ExecutionRunnerConfig::default()
    };
    let repo = run_execution_runners(&cfg).expect("runners");
    // Forest-only: on sweeps this small, a linear candidate can win the
    // validation split yet extrapolate the normalized cost below zero;
    // trees clamp to the training range, which is what this
    // order-of-magnitude test needs.
    let (models, report) = train_all(
        &repo,
        &TrainingConfig {
            candidates: vec![Algorithm::RandomForest],
            ..TrainingConfig::default()
        },
    )
    .expect("training");
    assert!(!report.per_ou.is_empty());
    BehaviorModels::new(models, None)
}

/// The core promise of §4.3: models trained on small sweeps predict much
/// larger datasets with sane (same order of magnitude) latencies.
#[test]
fn pipeline_trains_and_extrapolates() {
    let behavior = small_models();

    // An unseen dataset 20x larger than the training sweep.
    let db = Database::open();
    db.execute("CREATE TABLE big (k INT, g INT, v FLOAT)")
        .unwrap();
    for chunk in (0..20_000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 1.5)", i % 50))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
    }
    db.execute("ANALYZE big").unwrap();

    for sql in [
        "SELECT * FROM big WHERE k < 10000",
        "SELECT g, COUNT(*), SUM(v) FROM big GROUP BY g",
        "SELECT * FROM big ORDER BY v LIMIT 50",
    ] {
        let plan = db.prepare(sql).unwrap();
        let predicted = behavior.predict_query_elapsed_us(&plan, &db.knobs());
        // Actual latency: minimum of several runs. Tests execute in
        // parallel, so individual runs can be inflated arbitrarily by
        // scheduling; the minimum is the cleanest observation, and the
        // bounds below are deliberately loose (this is an
        // orders-of-magnitude sanity check, precision is Fig. 7's job).
        let mut lat = Vec::new();
        db.execute_plan(&plan, None).unwrap();
        for _ in 0..7 {
            let t0 = std::time::Instant::now();
            db.execute_plan(&plan, None).unwrap();
            lat.push(t0.elapsed().as_nanos() as f64 / 1000.0);
        }
        let actual = lat.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(predicted > 0.0, "{sql}: no prediction");
        let ratio = predicted / actual;
        assert!(
            (0.05..20.0).contains(&ratio),
            "{sql}: predicted {predicted:.0}us actual {actual:.0}us (ratio {ratio:.2})"
        );
    }
}

/// Every OU the executor measures for a workload query must have a model
/// after the runner sweep (the "comprehensive" decomposition principle).
#[test]
fn models_cover_workload_query_ous() {
    let behavior = small_models();
    let db = Database::open();
    let tpcc = mb2::workloads::tpcc::Tpcc::small();
    use mb2::workloads::Workload;
    tpcc.load(&db).unwrap();
    let mut rng = Prng::new(3);
    for template in ["new_order", "payment", "order_status", "stock_level"] {
        for sql in tpcc.sample_transaction(template, &mut rng) {
            let plan = db.prepare(&sql).unwrap();
            for inst in behavior.translator.translate_plan(&plan, &db.knobs()) {
                // Txn/GC/WAL OUs are exercised by other runners; execution
                // OUs must all be covered here.
                if matches!(
                    inst.ou,
                    OuKind::TxnBegin
                        | OuKind::TxnCommit
                        | OuKind::GarbageCollection
                        | OuKind::LogSerialize
                        | OuKind::LogFlush
                        | OuKind::IndexBuild
                ) {
                    continue;
                }
                assert!(
                    behavior.ou_models.get(inst.ou).is_some(),
                    "no model for {} (query {sql})",
                    inst.ou
                );
            }
        }
    }
}

/// Execution-mode knob: predictions must reflect the knob through the
/// exec_mode feature (predictions differ across modes for expression-heavy
/// plans).
#[test]
fn knob_feature_flows_into_predictions() {
    let behavior = small_models();
    let db = Database::open();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    for i in 0..500 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7))
            .unwrap();
    }
    db.execute("ANALYZE t").unwrap();
    let plan = db
        .prepare("SELECT a * 2 + b, a - b FROM t WHERE a % 3 = 0")
        .unwrap();
    let knobs_i = mb2::engine::Knobs {
        execution_mode: ExecutionMode::Interpret,
        ..db.knobs()
    };
    let knobs_c = mb2::engine::Knobs {
        execution_mode: ExecutionMode::Compiled,
        ..db.knobs()
    };
    let pi = behavior.predict_plan(&plan, &knobs_i);
    let pc = behavior.predict_plan(&plan, &knobs_c);
    // Feature vectors must differ (mode flag), hence predictions may differ;
    // at minimum the translator encodes the knob.
    let fi: Vec<f64> = pi
        .per_ou
        .iter()
        .flat_map(|(i, _)| i.features.clone())
        .collect();
    let fc: Vec<f64> = pc
        .per_ou
        .iter()
        .flat_map(|(i, _)| i.features.clone())
        .collect();
    assert_ne!(fi, fc, "exec-mode knob must appear in OU features");
}

/// TPC-H queries translate into OUs fully covered by the runner sweep, and
/// isolated predictions sum the per-OU metrics coherently.
#[test]
fn tpch_queries_predictable() {
    let behavior = small_models();
    let db = Database::open();
    let tpch = mb2::workloads::tpch::Tpch::with_scale(0.02);
    use mb2::workloads::Workload;
    tpch.load(&db).unwrap();
    for (name, sql) in tpch.fixed_queries() {
        let plan = db.prepare(&sql).unwrap();
        let pred = behavior.predict_plan(&plan, &db.knobs());
        assert!(!pred.per_ou.is_empty(), "{name}: no OUs");
        assert!(pred.elapsed_us() >= 0.0);
        assert!(
            !pred.total.has_non_finite(),
            "{name}: non-finite prediction"
        );
    }
}
