//! Fig. 9b — Robustness to noisy cardinality estimation.
//!
//! Gaussian noise (mean 0, 30% relative std-dev) is injected into the
//! tuple-count and cardinality input features of the affected OUs; the
//! paper finds <2% accuracy loss across TPC-H dataset sizes.

use mb2_core::{BehaviorModels, OuTranslator, TranslatorConfig};
use mb2_engine::Database;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::pipeline::{build_ou_models, measure_latency_us, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 9b — robustness to 30% Gaussian cardinality noise\n\n");

    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");
    let clean = BehaviorModels::new(built.models, None);
    // Re-train is unnecessary: the noise is injected at inference time via
    // the translator (exactly the paper's setup — noise on the features).
    let (models2, _) = mb2_core::training::train_all(&built.repo, &cfg.training).expect("train");
    let mut noisy = BehaviorModels::new(models2, None);
    noisy.translator = OuTranslator::new(TranslatorConfig {
        include_hw_context: false,
        cardinality_noise: Some((0.3, 97)),
    });

    let reps = scale.pick(3, 5);
    let mut table = Table::new(
        "avg relative error, accurate vs noisy cardinalities",
        &["tpch scale", "accurate", "noisy (30%)"],
    );
    for &ts in &scale.pick(vec![0.01, 0.1, 1.0], vec![0.05, 0.5, 5.0]) {
        let tpch = Tpch::with_scale(ts);
        let db = Database::open();
        tpch.load(&db).expect("tpch");
        let mut errs = [0.0f64; 2];
        let mut n = 0;
        for (_, sql) in tpch.fixed_queries() {
            let plan = db.prepare(&sql).expect("plan");
            let actual = measure_latency_us(&db, &plan, reps).max(1.0);
            let preds = [
                clean.predict_query_elapsed_us(&plan, &db.knobs()),
                noisy.predict_query_elapsed_us(&plan, &db.knobs()),
            ];
            for (e, p) in errs.iter_mut().zip(preds) {
                *e += (actual - p).abs() / actual;
            }
            n += 1;
        }
        table.row(&[
            format!("{ts}x"),
            fmt(errs[0] / n as f64),
            fmt(errs[1] / n as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper Fig. 9b): minimal accuracy loss (<2 points) \
         from moderate cardinality noise.\n",
    );
    out
}
