//! Per-OU resource tracking (paper §6.1 "Resource Tracker").
//!
//! Elapsed time is measured with a monotonic clock. The remaining behavior
//! metrics substitute Linux `perf` hardware counters with a deterministic
//! cost model over *work accounting*: operators report tuples processed,
//! bytes touched, hash probes, random accesses, comparisons, allocations and
//! block I/O, and `finish` converts those into counter values (plus small
//! multiplicative noise so models face realistic measurement jitter). See
//! DESIGN.md "Substitutions" for why this preserves the learning problem.
//!
//! The tracker is also where CPU-frequency emulation lands (paper §8.6):
//! when the hardware profile's frequency is below base, `finish` spins until
//! the span's wall-clock time is stretched by `base/freq`, so slower clocks
//! genuinely produce longer measured (and experienced) latencies while the
//! synthesized cycle count stays frequency-invariant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mb2_common::metrics::idx;
use mb2_common::{HardwareProfile, Metrics, OuKind, Prng};

/// Receives one measurement per OU invocation. Implemented by MB2's metrics
/// collector; `None` in the execution context disables tracking (the paper's
/// "turn off the tracker outside training mode").
pub trait OuRecorder: Sync {
    /// `node_id` identifies the plan node (pre-order DFS index) so features
    /// generated from the plan can be joined with measurements.
    fn record(&self, node_id: u32, ou: OuKind, metrics: Metrics);

    /// Raw work accounting for the span, delivered before the synthesized
    /// [`Metrics`]. The default does nothing; differential tests implement
    /// this to assert the batch pipeline's per-OU tuple/byte features are
    /// exactly the per-operator totals.
    fn record_work(&self, node_id: u32, ou: OuKind, work: WorkCounts) {
        let _ = (node_id, ou, work);
    }
}

/// Work accounted during one OU span.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkCounts {
    pub tuples: u64,
    pub bytes: u64,
    pub hash_probes: u64,
    pub random_accesses: u64,
    pub comparisons: u64,
    pub allocated_bytes: u64,
    pub block_reads: u64,
    pub block_writes: u64,
}

impl WorkCounts {
    /// Fold another span's counts into this one (used when per-worker morsel
    /// accounting merges into a single per-(node, OU) span).
    pub fn merge(&mut self, other: &WorkCounts) {
        self.tuples += other.tuples;
        self.bytes += other.bytes;
        self.hash_probes += other.hash_probes;
        self.random_accesses += other.random_accesses;
        self.comparisons += other.comparisons;
        self.allocated_bytes += other.allocated_bytes;
        self.block_reads += other.block_reads;
        self.block_writes += other.block_writes;
    }
}

/// Per-process noise stream for synthesized counters (deterministic order
/// within a thread).
static NOISE_COUNTER: AtomicU64 = AtomicU64::new(0x5EED);

/// An in-flight OU measurement.
///
/// A span is a sequence of one or more timed *sections*: the batch executor
/// re-enters an operator once per batch, resuming the operator's tracker
/// around each section so the recorded elapsed time is the sum of the
/// operator's own work — per-batch work folds into one measurement per OU
/// invocation, exactly as a single materializing pass would have produced.
pub struct OuTracker {
    /// Start of the currently-open section (`None` while paused).
    open: Option<Instant>,
    /// Wall time accumulated by closed sections, in µs.
    accumulated_us: f64,
    pub work: WorkCounts,
    /// Time this span spent blocked (I/O, sleeps) rather than on-CPU, in µs.
    pub blocked_us: f64,
}

impl OuTracker {
    pub fn start() -> OuTracker {
        OuTracker {
            open: Some(Instant::now()),
            accumulated_us: 0.0,
            work: WorkCounts::default(),
            blocked_us: 0.0,
        }
    }

    /// A tracker with no open section (`resume` opens the first one). Used
    /// by batch operators whose span may accumulate work counts before any
    /// timed section runs.
    pub fn start_paused() -> OuTracker {
        OuTracker {
            open: None,
            accumulated_us: 0.0,
            work: WorkCounts::default(),
            blocked_us: 0.0,
        }
    }

    /// Open a new timed section (no-op if one is already open).
    pub fn resume(&mut self) {
        if self.open.is_none() {
            self.open = Some(Instant::now());
        }
    }

    /// Close the current timed section, folding it into the accumulated
    /// elapsed time (no-op if paused).
    pub fn pause(&mut self) {
        if let Some(started) = self.open.take() {
            self.accumulated_us += started.elapsed().as_nanos() as f64 / 1000.0;
        }
    }

    pub fn add_tuples(&mut self, n: u64) {
        self.work.tuples += n;
    }

    pub fn add_bytes(&mut self, n: u64) {
        self.work.bytes += n;
    }

    pub fn add_hash_probes(&mut self, n: u64) {
        self.work.hash_probes += n;
    }

    pub fn add_random_accesses(&mut self, n: u64) {
        self.work.random_accesses += n;
    }

    pub fn add_comparisons(&mut self, n: u64) {
        self.work.comparisons += n;
    }

    pub fn add_allocated(&mut self, n: u64) {
        self.work.allocated_bytes += n;
    }

    pub fn add_block_reads(&mut self, n: u64) {
        self.work.block_reads += n;
    }

    pub fn add_block_writes(&mut self, n: u64) {
        self.work.block_writes += n;
    }

    pub fn add_blocked_us(&mut self, us: f64) {
        self.blocked_us += us;
    }

    /// Fold a worker-side measurement into this span: work counts merge and
    /// the worker's wall time joins the accumulated elapsed time. Summing
    /// concurrent workers' spans measures true aggregate work (total CPU
    /// seconds spent on the OU), which is what the paper's OU models train
    /// on; frequency pacing is still applied exactly once, at `finish`.
    pub fn absorb(&mut self, work: &WorkCounts, elapsed_us: f64) {
        self.work.merge(work);
        self.accumulated_us += elapsed_us;
    }

    /// Close the span: apply frequency pacing, then synthesize the metric
    /// vector from measured elapsed time + accounted work.
    pub fn finish(mut self, hw: &HardwareProfile) -> Metrics {
        self.pause();
        let slowdown = hw.slowdown();
        if slowdown > 1.0 {
            // Stretch the span: spin until total elapsed reaches slowdown ×
            // busy time (the blocked portion is not stretched — I/O doesn't
            // get slower with the CPU clock).
            let on_cpu = (self.accumulated_us - self.blocked_us).max(0.0);
            let target_us = self.blocked_us + on_cpu * slowdown;
            if target_us > self.accumulated_us {
                let spin_start = Instant::now();
                let deficit_us = target_us - self.accumulated_us;
                while (spin_start.elapsed().as_nanos() as f64 / 1000.0) < deficit_us {
                    std::hint::spin_loop();
                }
                self.accumulated_us += spin_start.elapsed().as_nanos() as f64 / 1000.0;
            }
        }
        let elapsed_us = self.accumulated_us;
        let cpu_us = (elapsed_us - self.blocked_us).max(0.0);

        let mut rng = Prng::new(NOISE_COUNTER.fetch_add(1, Ordering::Relaxed));
        let mut noisy = |v: f64, sigma: f64| (v * (1.0 + sigma * rng.gaussian())).max(0.0);

        let w = &self.work;
        // Cycle count is frequency-invariant: cycles = on-CPU time × clock.
        let cycles = cpu_us * 1000.0 * hw.cpu_freq_ghz;
        let instructions = noisy(
            60.0 + 14.0 * w.tuples as f64
                + 0.55 * w.bytes as f64
                + 9.0 * w.hash_probes as f64
                + 4.0 * w.comparisons as f64
                + 25.0 * (w.block_reads + w.block_writes) as f64,
            0.05,
        );
        let cache_refs = noisy(
            8.0 + 4.0 * w.tuples as f64 + w.bytes as f64 / 64.0 + 3.0 * w.hash_probes as f64,
            0.08,
        );
        let cache_misses = noisy(
            1.0 + w.random_accesses as f64
                + 0.12 * (w.bytes as f64 / 64.0)
                + 0.7 * w.hash_probes as f64,
            0.15,
        );

        let mut m = Metrics::ZERO;
        m[idx::ELAPSED_US] = elapsed_us;
        m[idx::CPU_US] = cpu_us;
        m[idx::CYCLES] = cycles;
        m[idx::INSTRUCTIONS] = instructions;
        m[idx::CACHE_REFS] = cache_refs;
        m[idx::CACHE_MISSES] = cache_misses;
        m[idx::BLOCK_READS] = w.block_reads as f64;
        m[idx::BLOCK_WRITES] = w.block_writes as f64;
        m[idx::MEMORY_BYTES] = w.allocated_bytes as f64;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_reflect_accounted_work() {
        let mut t = OuTracker::start();
        t.add_tuples(1000);
        t.add_bytes(64_000);
        t.add_allocated(4096);
        t.add_block_writes(2);
        let m = t.finish(&HardwareProfile::default());
        assert!(m[idx::ELAPSED_US] >= 0.0);
        assert!(m[idx::INSTRUCTIONS] > 10_000.0);
        assert!(m[idx::CACHE_REFS] > 4000.0);
        assert_eq!(m[idx::BLOCK_WRITES], 2.0);
        assert_eq!(m[idx::MEMORY_BYTES], 4096.0);
        assert!(!m.has_non_finite());
    }

    #[test]
    fn frequency_pacing_stretches_elapsed() {
        let work = || {
            let t = OuTracker::start();
            // Busy work for ~200µs.
            let until = Instant::now() + std::time::Duration::from_micros(200);
            while Instant::now() < until {
                std::hint::spin_loop();
            }
            t
        };
        let base = work().finish(&HardwareProfile::default());
        let half = work().finish(&HardwareProfile::new(
            HardwareProfile::DEFAULT_BASE_GHZ / 2.0,
        ));
        let ratio = half[idx::ELAPSED_US] / base[idx::ELAPSED_US];
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
        // Cycle counts stay roughly frequency-invariant.
        let cycle_ratio = half[idx::CYCLES] / base[idx::CYCLES];
        assert!(
            cycle_ratio > 0.7 && cycle_ratio < 1.4,
            "cycle ratio {cycle_ratio}"
        );
    }

    #[test]
    fn paused_sections_exclude_foreign_time() {
        let mut t = OuTracker::start();
        t.pause();
        // Time spent while paused (another operator's work) must not count.
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.resume();
        t.add_tuples(10);
        t.pause();
        let m = t.finish(&HardwareProfile::default());
        assert!(
            m[idx::ELAPSED_US] < 2000.0,
            "paused time leaked into the span: {}",
            m[idx::ELAPSED_US]
        );
    }

    #[test]
    fn blocked_time_excluded_from_cpu() {
        let mut t = OuTracker::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.add_blocked_us(5000.0);
        let m = t.finish(&HardwareProfile::default());
        assert!(m[idx::ELAPSED_US] >= 5000.0);
        assert!(m[idx::CPU_US] < m[idx::ELAPSED_US] - 4000.0);
    }
}
