//! Output-label normalization (paper §4.3).
//!
//! Many OUs have a known asymptotic complexity in the number of processed
//! tuples `n`: hash-table builds are O(n), sort builds are O(n log n).
//! Dividing the measured labels by that complexity (while leaving the
//! features intact) makes the learned mapping converge for moderate `n`,
//! so runners only need to sweep up to the convergence point and the models
//! still generalize to tables orders of magnitude larger.
//!
//! Special case (paper §4.3): the join hash table pre-allocates by input
//! tuple count, so its memory label normalizes by `n`; the aggregation hash
//! table grows with unique keys, so its memory label normalizes by the
//! cardinality feature.

use mb2_common::metrics::idx;
use mb2_common::{Metrics, OuKind};

use crate::features::{cardinality_feature, normalization_feature};

/// The complexity divisor for an OU given its feature vector; `1.0` for OUs
/// that are not normalized.
pub fn complexity(ou: OuKind, features: &[f64]) -> f64 {
    let Some(nf) = normalization_feature(ou) else {
        return 1.0;
    };
    let n = features[nf].max(1.0);
    match ou {
        // Sort-based operations: the builder sorts its input.
        OuKind::SortBuild | OuKind::IndexBuild => n * n.log2().max(1.0),
        _ => n,
    }
}

/// The divisor for the memory label specifically.
pub fn memory_divisor(ou: OuKind, features: &[f64]) -> f64 {
    match ou {
        OuKind::JoinHashBuild => features[normalization_feature(ou).expect("n")].max(1.0),
        OuKind::AggBuild => features[cardinality_feature(ou).expect("card")].max(1.0),
        _ => complexity(ou, features),
    }
}

/// Divide measured labels by the OU's complexity (training direction).
pub fn normalize_labels(ou: OuKind, features: &[f64], labels: &Metrics) -> Metrics {
    let c = complexity(ou, features);
    let mut out = labels.scale(1.0 / c);
    out[idx::MEMORY_BYTES] = labels[idx::MEMORY_BYTES] / memory_divisor(ou, features);
    out
}

/// Multiply predicted labels back to absolute values (inference direction).
pub fn denormalize_labels(ou: OuKind, features: &[f64], labels: &Metrics) -> Metrics {
    let c = complexity(ou, features);
    let mut out = labels.scale(c);
    out[idx::MEMORY_BYTES] = labels[idx::MEMORY_BYTES] * memory_divisor(ou, features);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_features(n: f64, card: f64) -> Vec<f64> {
        vec![n, 3.0, 24.0, card, 16.0, 0.0, 1.0]
    }

    #[test]
    fn round_trip_is_identity() {
        let labels = Metrics::new([100.0, 90.0, 1e6, 2e6, 5e4, 1e3, 0.0, 2.0, 4096.0]);
        for ou in OuKind::ALL {
            let width = crate::features::feature_width(ou);
            let features: Vec<f64> = (0..width).map(|i| (i + 2) as f64 * 10.0).collect();
            let norm = normalize_labels(ou, &features, &labels);
            let back = denormalize_labels(ou, &features, &norm);
            for i in 0..9 {
                assert!((back[i] - labels[i]).abs() < 1e-6, "{ou} label {i}");
            }
        }
    }

    #[test]
    fn linear_ou_normalizes_by_n() {
        let labels = Metrics::new([1000.0; 9]);
        let norm = normalize_labels(OuKind::SeqScan, &exec_features(500.0, 100.0), &labels);
        assert!((norm[idx::ELAPSED_US] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sort_build_normalizes_by_nlogn() {
        let n = 1024.0;
        let labels = Metrics::new([n * 10.0; 9]);
        let norm = normalize_labels(OuKind::SortBuild, &exec_features(n, n), &labels);
        assert!((norm[idx::ELAPSED_US] - 10.0 / 10.0).abs() < 1e-9); // n*10 / (n * log2(1024)=10n)
    }

    #[test]
    fn agg_memory_normalizes_by_cardinality() {
        let mut labels = Metrics::ZERO;
        labels[idx::MEMORY_BYTES] = 3200.0;
        labels[idx::ELAPSED_US] = 1000.0;
        let features = exec_features(1000.0, 100.0);
        let norm = normalize_labels(OuKind::AggBuild, &features, &labels);
        assert!((norm[idx::MEMORY_BYTES] - 32.0).abs() < 1e-9);
        assert!((norm[idx::ELAPSED_US] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_memory_normalizes_by_n() {
        let mut labels = Metrics::ZERO;
        labels[idx::MEMORY_BYTES] = 64_000.0;
        let features = exec_features(1000.0, 10.0);
        let norm = normalize_labels(OuKind::JoinHashBuild, &features, &labels);
        assert!((norm[idx::MEMORY_BYTES] - 64.0).abs() < 1e-9);
    }

    #[test]
    fn txn_ous_not_normalized() {
        let labels = Metrics::new([5.0; 9]);
        let norm = normalize_labels(OuKind::TxnBegin, &[100.0, 4.0], &labels);
        assert_eq!(norm, labels);
    }
}
