//! Network serving closed loop; see `mb2_bench::experiments::server_throughput`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::server_throughput::run(scale);
    mb2_bench::report::emit("server_throughput", &report);
}
