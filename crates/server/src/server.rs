//! The TCP front-end: bounded acceptor, thread-per-connection workers,
//! admission control with load shedding, and drain-then-shutdown.
//!
//! Lifecycle contract (see DESIGN.md "Network serving model"):
//!
//! 1. `Server::start` binds, registers its metric families in the
//!    database's registry, and spawns the acceptor.
//! 2. Each accepted connection gets a worker thread and an engine session, so
//!    `BEGIN`/`COMMIT`/`ROLLBACK` work over the wire exactly as they do
//!    in-process.
//! 3. Admission control is a bounded in-flight query counter: a request
//!    over the limit is answered with a typed `Busy` frame immediately —
//!    the server sheds load, it never queues it.
//! 4. `Server::shutdown` drains: stop accepting, let every in-flight query
//!    finish, join all connection workers, then shut the engine down
//!    (which flushes the WAL and joins GC/flusher/pool threads).
//! 5. With a [`SupervisorConfig`], a health supervisor probes the engine:
//!    when the WAL poisons (the engine degrades to read-only), it replays
//!    the log into a replacement instance with bounded backoff, swaps it in
//!    under an epoch bump, and gracefully drains sessions pinned to the old
//!    engine — each finishes its in-flight query, is told to reconnect via
//!    a typed `Busy(Draining)` frame, and rejoins on the healthy engine.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use mb2_common::{fault, DbError, DbResult, FaultInjector, Value};
use mb2_engine::{
    recover_with, Database, DatabaseConfig, DegradedReason, HealthState, RecoveryOptions,
};
use mb2_obs::{Counter, FloatGauge, Gauge, Histogram};

use crate::sched::{ConnSchedCtx, Decision, Scheduler, SchedulerPolicy};
use crate::wire::{
    self, BusyReason, Frame, FrameReader, ReadPoll, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Server configuration knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Maximum simultaneously connected clients; further connects are
    /// answered with a typed busy frame and closed.
    pub max_connections: usize,
    /// Bound on queries executing at once across all connections — the
    /// admission-control semaphore. Requests beyond it get a busy frame.
    pub max_inflight_queries: usize,
    /// Close a connection that has been idle (no complete request) this
    /// long.
    pub idle_timeout: Duration,
    /// Socket read-timeout granularity: how often an idle worker re-checks
    /// the shutdown flag and the idle deadline. Bounds drain latency for
    /// idle connections.
    pub poll_interval: Duration,
    /// Fault injection for chaos tests (`server.accept` and `server.read`
    /// points); `None` in production.
    pub faults: Option<Arc<FaultInjector>>,
    /// Self-healing supervisor; `None` disables automatic recovery (the
    /// engine stays degraded/read-only after a WAL poison).
    pub supervisor: Option<SupervisorConfig>,
    /// Predictive admission policy (tiers, queue bound, tenant quotas).
    /// `None` — or no models attached via [`Server::attach_models`] —
    /// keeps the legacy blunt semaphore behavior.
    pub scheduler: Option<SchedulerPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            max_inflight_queries: 16,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(25),
            faults: None,
            supervisor: None,
            scheduler: None,
        }
    }
}

/// Health-supervisor configuration: probe cadence and the bounded-backoff
/// restart-with-recovery policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How often the supervisor probes `Database::health`.
    pub probe_interval: Duration,
    /// Recovery attempts before the supervisor gives up and leaves the
    /// engine degraded (read-only).
    pub max_attempts: u32,
    /// Base backoff between attempts (doubles per attempt).
    pub backoff: Duration,
    /// Configuration template for the replacement engine. Its `wal_path` is
    /// ignored — the supervisor writes each generation's log next to the
    /// poisoned one (`<path>.gN`) — and its `metrics` is overridden with the
    /// old engine's registry so series survive the swap.
    pub template: DatabaseConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            probe_interval: Duration::from_millis(50),
            max_attempts: 5,
            backoff: Duration::from_millis(20),
            template: DatabaseConfig::default(),
        }
    }
}

/// Server metric families, registered in the database's registry so one
/// scrape sees the front-end next to every engine subsystem.
struct ServerMetrics {
    connections_accepted: Arc<Counter>,
    connections_rejected: Arc<Counter>,
    connections_active: Arc<Gauge>,
    queries_total: Arc<Counter>,
    queries_rejected: Arc<Counter>,
    /// Per-reason breakdown of `queries_rejected` (`{reason}` label);
    /// indexed in the order of [`SHED_REASONS`].
    queries_shed: [Arc<Counter>; SHED_REASONS.len()],
    query_errors: Arc<Counter>,
    inflight_queries: Arc<Gauge>,
    request_us: Arc<Histogram>,
    recoveries: Arc<Counter>,
    recovery_failures: Arc<Counter>,
    sched_mode: Arc<Gauge>,
    sched_queue_depth: Arc<Gauge>,
    sched_inflight_predicted_us: Arc<FloatGauge>,
    sched_admitted_immediate: Arc<Counter>,
    sched_admitted_queued: Arc<Counter>,
    sched_queue_wait_us: Arc<Histogram>,
}

/// Reason labels of the `mb2_server_queries_shed_total` family, in the
/// order matching [`shed_reason_index`].
const SHED_REASONS: [&str; 7] = [
    "queries",
    "connections",
    "draining",
    "queue_full",
    "deadline",
    "quota",
    "other",
];

fn shed_reason_index(reason: BusyReason) -> usize {
    SHED_REASONS
        .iter()
        .position(|&l| l == reason.label())
        .unwrap_or(SHED_REASONS.len() - 1)
}

impl ServerMetrics {
    fn new(db: &Database) -> ServerMetrics {
        let r = db.metrics();
        ServerMetrics {
            connections_accepted: r.counter(
                "mb2_server_connections_accepted_total",
                "Client connections accepted.",
            ),
            connections_rejected: r.counter(
                "mb2_server_connections_rejected_total",
                "Client connections rejected at the max_connections bound.",
            ),
            connections_active: r.gauge(
                "mb2_server_connections_active",
                "Currently connected clients.",
            ),
            queries_total: r.counter("mb2_server_queries_total", "Query frames received."),
            queries_rejected: r.counter(
                "mb2_server_queries_rejected_total",
                "Queries shed by admission control, all reasons summed \
                 (see mb2_server_queries_shed_total for the breakdown).",
            ),
            queries_shed: SHED_REASONS.map(|reason| {
                r.counter_with(
                    "mb2_server_queries_shed_total",
                    &[("reason", reason)],
                    "Queries shed by admission control (busy frames sent), by reason.",
                )
            }),
            query_errors: r.counter("mb2_server_query_errors_total", "Queries that failed."),
            inflight_queries: r.gauge(
                "mb2_server_inflight_queries",
                "Queries currently executing.",
            ),
            request_us: r.histogram(
                "mb2_server_request_us",
                "End-to-end request latency (receive to Done) in microseconds.",
            ),
            recoveries: r.counter(
                "mb2_server_recoveries_total",
                "Successful supervisor-driven engine recoveries (swaps).",
            ),
            recovery_failures: r.counter(
                "mb2_server_recovery_failures_total",
                "Failed supervisor recovery attempts.",
            ),
            sched_mode: r.gauge(
                "mb2_sched_mode",
                "Admission scheduler mode: 0 = fallback semaphore, 1 = predictive.",
            ),
            sched_queue_depth: r.gauge(
                "mb2_sched_queue_depth",
                "Queries waiting in the admission queue.",
            ),
            sched_inflight_predicted_us: r.float_gauge(
                "mb2_sched_inflight_predicted_us",
                "Outstanding predicted elapsed microseconds across the in-flight mix.",
            ),
            sched_admitted_immediate: r.counter_with(
                "mb2_sched_admitted_total",
                &[("path", "immediate")],
                "Queries admitted by the scheduler, by admission path.",
            ),
            sched_admitted_queued: r.counter_with(
                "mb2_sched_admitted_total",
                &[("path", "queued")],
                "Queries admitted by the scheduler, by admission path.",
            ),
            sched_queue_wait_us: r.histogram(
                "mb2_sched_queue_wait_us",
                "Time queued queries waited before admission, in microseconds.",
            ),
        }
    }

    fn record_shed(&self, reason: BusyReason) {
        self.queries_rejected.inc();
        self.queries_shed[shed_reason_index(reason)].inc();
    }
}

struct Shared {
    /// The engine currently serving traffic. The supervisor swaps in a
    /// recovered replacement; existing connections keep their own `Arc`
    /// (and their session) until they notice the epoch bump.
    db: RwLock<Arc<Database>>,
    /// Bumped at every engine swap. A connection whose captured epoch is
    /// stale finishes its in-flight request, answers further requests with
    /// `Busy(Draining)`, and closes so the client reconnects onto the
    /// current engine.
    epoch: AtomicU64,
    cfg: ServerConfig,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    /// Admission scheduler. With no policy or no attached models it
    /// reproduces the legacy in-flight semaphore exactly.
    sched: Scheduler,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Interruptible sleep for the supervisor thread (drain wakes it).
    supervisor_wakeup: (StdMutex<bool>, Condvar),
    metrics: ServerMetrics,
    /// Autopilot attached via [`Server::attach_pilot`]; consulted by the
    /// `SHOW PILOT` operator command.
    pilot: RwLock<Option<Arc<mb2_pilot::Pilot>>>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn db(&self) -> Arc<Database> {
        self.db.read().clone()
    }

    /// Sleep up to `timeout` on the supervisor condvar; returns early (true)
    /// when drain woke it.
    fn supervisor_sleep(&self, timeout: Duration) -> bool {
        let (lock, cvar) = &self.supervisor_wakeup;
        let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + timeout;
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = match cvar.wait_timeout(stopped, deadline - now) {
                Ok(r) => r,
                Err(_) => return true,
            };
            stopped = guard;
        }
        true
    }

    /// Reserve a connection slot; `false` over the bound.
    fn try_acquire_conn(&self) -> bool {
        self.active_conns
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.cfg.max_connections).then_some(n + 1)
            })
            .is_ok()
    }
}

/// RAII admission: holds the scheduler token for the full response
/// lifetime — through the final `Done`/`Error` frame flush, not merely
/// until execute returns — so a slow-reading client that stalls the
/// socket keeps its slot occupied and the configured bound holds.
struct AdmissionGuard<'a> {
    shared: &'a Shared,
    token: Option<crate::sched::AdmitToken>,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.shared.sched.finish(token);
        }
        self.shared.metrics.inflight_queries.dec();
        self.shared
            .metrics
            .sched_inflight_predicted_us
            .set(self.shared.sched.outstanding_us());
        self.shared
            .metrics
            .sched_queue_depth
            .set(self.shared.sched.queue_depth() as i64);
    }
}

/// The network front-end. Owns the acceptor and every connection worker;
/// dropping the server (or calling [`Server::shutdown`]) drains them.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. The returned server is already accepting.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> DbResult<Server> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| DbError::Net(format!("bind {}: {e}", cfg.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbError::Net(format!("local_addr: {e}")))?;
        let metrics = ServerMetrics::new(&db);
        let sched = Scheduler::new(cfg.max_inflight_queries, cfg.scheduler.clone());
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            epoch: AtomicU64::new(0),
            cfg,
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            sched,
            workers: Mutex::new(Vec::new()),
            supervisor_wakeup: (StdMutex::new(false), Condvar::new()),
            metrics,
            pilot: RwLock::new(None),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("mb2-server-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| DbError::Net(format!("spawn acceptor: {e}")))?
        };
        let supervisor = match shared.cfg.supervisor.clone() {
            Some(sup) => {
                let shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("mb2-server-supervisor".into())
                        .spawn(move || supervisor_loop(&shared, sup))
                        .map_err(|e| DbError::Net(format!("spawn supervisor: {e}")))?,
                )
            }
            None => None,
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            supervisor,
        })
    }

    /// The bound address (resolves port 0 for tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The database currently serving traffic (the supervisor may have
    /// swapped in a recovered instance since the server started).
    pub fn db(&self) -> Arc<Database> {
        self.shared.db()
    }

    /// Attach an autopilot so operators can inspect it over the wire with
    /// `SHOW PILOT`. The server does not own the pilot's lifecycle — start
    /// it (and let `Database::shutdown` quiesce it) as usual; this only
    /// wires up introspection.
    pub fn attach_pilot(&self, pilot: Arc<mb2_pilot::Pilot>) {
        *self.shared.pilot.write() = Some(pilot);
    }

    /// Attach trained behavior models. With a `scheduler` policy in the
    /// config this switches admission from the blunt semaphore to the
    /// predictive path; with untrained (empty) OU models the scheduler
    /// stays in fallback mode, so a cold-start server behaves exactly as
    /// before.
    pub fn attach_models(&self, models: Arc<mb2_core::BehaviorModels>) {
        self.shared.sched.attach_models(models);
        self.shared
            .metrics
            .sched_mode
            .set(self.shared.sched.predictive() as i64);
    }

    /// How many supervisor engine swaps have happened.
    pub fn engine_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Currently connected clients.
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::Acquire)
    }

    /// Graceful drain-then-shutdown: stop accepting, finish in-flight
    /// queries, join every connection worker and the acceptor, then shut
    /// down the engine (WAL flush + GC/flusher/pool thread joins). Safe to
    /// call once; `Drop` performs the same drain if it was not called.
    pub fn shutdown(mut self) {
        self.drain();
        self.shared.db().shutdown();
    }

    fn drain(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Evict queued waiters with `Busy(Draining)` so their worker
        // threads can answer and exit instead of blocking the join below.
        self.shared.sched.drain();
        // Wake a supervisor parked in its probe/backoff sleep.
        {
            let (lock, cvar) = &self.shared.supervisor_wakeup;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        // Wake the blocking accept with a throwaway connection; the loop
        // re-checks the stop flag before serving it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Join connection workers. Idle ones notice the flag within one
        // poll interval; busy ones finish their in-flight query first.
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            // Drain without shutting the engine down: the Database may be
            // shared with in-process users; explicit `shutdown()` is the
            // full-stack teardown.
            self.drain();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.stopping() {
            return;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        if let Some(inj) = shared.cfg.faults.as_ref() {
            if inj.check(fault::points::SERVER_ACCEPT).is_some() {
                // Injected accept failure: drop the connection without a
                // frame, the way a dying acceptor would.
                continue;
            }
        }
        if !shared.try_acquire_conn() {
            shared.metrics.connections_rejected.inc();
            let mut s = stream;
            // Pre-handshake: the peer's version is unknown, so speak v1
            // (v2 peers decode the missing retry hint as "none").
            let _ = wire::write_frame_v(
                &mut s,
                &Frame::Busy {
                    reason: BusyReason::Connections,
                    message: format!("connection limit of {} reached", shared.cfg.max_connections),
                    retry_after_ms: 0,
                },
                MIN_PROTOCOL_VERSION,
            );
            continue; // drop closes the socket
        }
        shared.metrics.connections_accepted.inc();
        shared.metrics.connections_active.inc();
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("mb2-server-conn".into())
                .spawn(move || {
                    let _ = serve_connection(&shared, stream);
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    shared.metrics.connections_active.dec();
                })
        };
        let mut workers = shared.workers.lock();
        // Reap finished workers so a long-lived server doesn't accumulate
        // handles for every connection it ever served.
        workers.retain(|h| !h.is_finished());
        match worker {
            Ok(h) => workers.push(h),
            Err(_) => {
                shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                shared.metrics.connections_active.dec();
            }
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) -> DbResult<()> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(shared.cfg.poll_interval))
        .map_err(|e| DbError::Net(format!("set_read_timeout: {e}")))?;

    let mut reader = FrameReader::new();

    // Handshake, bounded by the idle timeout.
    let deadline = Instant::now() + shared.cfg.idle_timeout;
    let hello = loop {
        match reader.poll_read(&mut stream)? {
            ReadPoll::Frame(f) => break f,
            ReadPoll::Eof => return Ok(()),
            ReadPoll::Pending => {
                if shared.stopping() || Instant::now() > deadline {
                    return Ok(());
                }
            }
        }
    };
    let (peer_version, sched_ctx) = match hello {
        Frame::ClientHello {
            version,
            tenant,
            tier,
        } if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) => {
            // Speak the client's dialect from here on (v1 peers must not
            // see v2 field extensions — their decoder rejects trailing
            // bytes).
            wire::write_frame_v(&mut stream, &Frame::ServerHello { version }, version)?;
            (version, ConnSchedCtx { tenant, tier })
        }
        Frame::ClientHello { version, .. } => {
            let _ = wire::write_frame(
                &mut stream,
                &Frame::Error {
                    error: DbError::Net(format!(
                        "protocol version {version} not supported (server speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    )),
                },
            );
            return Ok(());
        }
        _ => {
            let _ = wire::write_frame(
                &mut stream,
                &Frame::Error {
                    error: DbError::Net("expected ClientHello".into()),
                },
            );
            return Ok(());
        }
    };

    // One session per connection, pinned to the engine instance current at
    // connect time: explicit transactions span requests and must stay on
    // one engine. A supervisor swap bumps the epoch; this connection then
    // finishes its in-flight request, answers further traffic with
    // `Busy(Draining)`, and closes so the client reconnects.
    let db = shared.db();
    let my_epoch = shared.epoch.load(Ordering::Acquire);
    let mut session = db.session();
    let mut idle_since = Instant::now();
    loop {
        let poll = match reader.poll_read(&mut stream) {
            Ok(p) => p,
            Err(e) => {
                // Protocol violation (bad length, unknown tag, torn body):
                // tell the client why before closing. Best-effort — on a
                // genuine I/O error the write fails silently.
                let _ = wire::write_frame(&mut stream, &Frame::Error { error: e.clone() });
                return Err(e);
            }
        };
        match poll {
            ReadPoll::Frame(Frame::Query { sql }) => {
                idle_since = Instant::now();
                if shared.epoch.load(Ordering::Acquire) != my_epoch {
                    shared.metrics.record_shed(BusyReason::Draining);
                    let _ = wire::write_frame_v(
                        &mut stream,
                        &Frame::Busy {
                            reason: BusyReason::Draining,
                            message: "engine recovered; reconnect".into(),
                            retry_after_ms: 0,
                        },
                        peer_version,
                    );
                    return Ok(());
                }
                if let Some(inj) = shared.cfg.faults.as_ref() {
                    // Consulted once per complete request frame (never on
                    // `Pending`) so the decision sequence is a function of
                    // the request count, not of socket timing.
                    if let Some(msg) = inj.check(fault::points::SERVER_READ) {
                        return Err(DbError::Net(msg));
                    }
                }
                handle_query(
                    shared,
                    &mut session,
                    &mut stream,
                    &sql,
                    peer_version,
                    &sched_ctx,
                )?;
                if shared.stopping() {
                    // Drain: the in-flight request was finished and
                    // answered; close before taking new work.
                    return Ok(());
                }
            }
            ReadPoll::Frame(_) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Error {
                        error: DbError::Net("expected Query".into()),
                    },
                );
                return Ok(());
            }
            ReadPoll::Eof => return Ok(()),
            ReadPoll::Pending => {
                if shared.stopping() {
                    return Ok(());
                }
                if shared.epoch.load(Ordering::Acquire) != my_epoch {
                    let _ = wire::write_frame_v(
                        &mut stream,
                        &Frame::Busy {
                            reason: BusyReason::Draining,
                            message: "engine recovered; reconnect".into(),
                            retry_after_ms: 0,
                        },
                        peer_version,
                    );
                    return Ok(());
                }
                if idle_since.elapsed() > shared.cfg.idle_timeout {
                    let _ = wire::write_frame(
                        &mut stream,
                        &Frame::Error {
                            error: DbError::Net(format!(
                                "idle timeout after {:?}",
                                shared.cfg.idle_timeout
                            )),
                        },
                    );
                    return Ok(());
                }
            }
        }
    }
}

/// Serve one query frame: admission control, streamed execution, typed
/// errors. Only I/O failures propagate (tearing the connection down);
/// engine errors are answered in-band and the connection lives on.
fn handle_query(
    shared: &Arc<Shared>,
    session: &mut mb2_engine::Session<'_>,
    stream: &mut TcpStream,
    sql: &str,
    peer_version: u16,
    sched_ctx: &ConnSchedCtx,
) -> DbResult<()> {
    shared.metrics.queries_total.inc();
    // Admission: predict-and-decide (or the legacy semaphore in fallback
    // mode). This may block while queued, bounded by the tier deadline.
    let token = match shared.sched.admit(&shared.db(), sql, sched_ctx) {
        Decision::Admit(token) => token,
        Decision::Reject {
            reason,
            message,
            retry_after_ms,
        } => {
            shared.metrics.record_shed(reason);
            shared
                .metrics
                .sched_queue_depth
                .set(shared.sched.queue_depth() as i64);
            return wire::write_frame_v(
                stream,
                &Frame::Busy {
                    reason,
                    message,
                    retry_after_ms,
                },
                peer_version,
            );
        }
    };
    if token.queued {
        shared.metrics.sched_admitted_queued.inc();
        shared
            .metrics
            .sched_queue_wait_us
            .record(token.queue_wait.as_micros() as u64);
    } else {
        shared.metrics.sched_admitted_immediate.inc();
    }
    // The guard spans the whole response — execution AND the final
    // Done/Error flush — so a stalled client cannot free its slot early.
    let _admission = AdmissionGuard {
        shared,
        token: Some(token),
    };
    shared.metrics.inflight_queries.inc();
    shared
        .metrics
        .sched_inflight_predicted_us
        .set(shared.sched.outstanding_us());
    let started = Instant::now();

    // Operator commands answered by the server itself (no SQL layer, no
    // wire changes — plain Varchar row batches).
    if let Some(rows) = operator_command(shared, sql) {
        if !rows.is_empty() {
            wire::write_frame(stream, &Frame::RowBatch { rows: rows.clone() })?;
        }
        shared
            .metrics
            .request_us
            .record(started.elapsed().as_micros() as u64);
        return wire::write_frame(
            stream,
            &Frame::Done {
                rows: rows.len() as u64,
            },
        );
    }

    let result = session.execute_streaming(sql, None, &mut |batch| {
        if batch.is_empty() {
            return Ok(());
        }
        let rows: Vec<Vec<Value>> = batch.rows.iter().map(|r| r.as_ref().clone()).collect();
        wire::write_frame(stream, &Frame::RowBatch { rows })
    });
    match result {
        Ok(n) => {
            shared
                .metrics
                .request_us
                .record(started.elapsed().as_micros() as u64);
            wire::write_frame(stream, &Frame::Done { rows: n as u64 })
        }
        // A network error from the batch callback means the socket is
        // gone; propagate so the worker exits instead of writing to it.
        Err(e @ DbError::Net(_)) => Err(e),
        Err(e) => {
            shared.metrics.query_errors.inc();
            wire::write_frame(stream, &Frame::Error { error: e })
        }
    }
}

/// Intercept operator commands (`SHOW METRICS`, `SHOW PILOT`,
/// `SHOW SHARDS`, `SHOW BLOCKS`, `SHOW SCHED`) before SQL execution.
/// Returns `None` for everything else so ordinary queries take the normal
/// path. Responses are one Varchar column per row.
fn operator_command(shared: &Arc<Shared>, sql: &str) -> Option<Vec<Vec<Value>>> {
    let cmd = sql.trim().trim_end_matches(';').trim().to_ascii_uppercase();
    match cmd.as_str() {
        "SHOW METRICS" => {
            let text = shared.db().metrics_prometheus();
            Some(
                text.lines()
                    .map(|l| vec![Value::Varchar(l.to_string())])
                    .collect(),
            )
        }
        "SHOW SCHED" => {
            // Admission-scheduler status: mode, occupancy, queue, and the
            // per-tier policy table.
            Some(
                shared
                    .sched
                    .status_rows()
                    .into_iter()
                    .map(|r| vec![Value::Varchar(r)])
                    .collect(),
            )
        }
        "SHOW PILOT" => {
            let row = match shared.pilot.read().as_ref() {
                Some(pilot) => pilot.status_json(),
                None => "{\"state\":\"detached\"}".to_string(),
            };
            Some(vec![vec![Value::Varchar(row)]])
        }
        "SHOW SHARDS" => {
            // One row per (table, shard): live tuples, version-chain
            // records, versions pruned by GC, and the watermark of the
            // shard's last GC pass.
            let mut rows = vec![vec![Value::Varchar(
                "table shard slots tuples versions gc_pruned gc_watermark".to_string(),
            )]];
            for (table, s) in shared.db().shard_status() {
                rows.push(vec![Value::Varchar(format!(
                    "{table} {} {} {} {} {} {}",
                    s.shard, s.slots, s.live_tuples, s.versions, s.gc_pruned, s.last_gc_watermark
                ))]);
            }
            Some(rows)
        }
        "SHOW BLOCKS" => {
            // One row per (table, shard): sealed columnar blocks, blocks
            // dirtied back onto the row path, rows served from blocks,
            // versions evicted by seal passes, and zone-map unit skips.
            let mut rows = vec![vec![Value::Varchar(
                "table shard blocks dirty sealed_tuples versions_evicted zone_skips".to_string(),
            )]];
            for (table, s) in shared.db().block_status() {
                rows.push(vec![Value::Varchar(format!(
                    "{table} {} {} {} {} {} {}",
                    s.shard,
                    s.blocks,
                    s.dirty_blocks,
                    s.sealed_tuples,
                    s.versions_evicted,
                    s.zone_skips
                ))]);
            }
            Some(rows)
        }
        _ => None,
    }
}

/// The self-healing loop: probe engine health each `probe_interval`; when
/// the WAL poisons, replay the log into a replacement instance (salvage
/// mode, generation-suffixed new log, shared metrics registry), swap it in
/// under an epoch bump, and shut the old engine down. Failed attempts back
/// off exponentially up to `max_attempts`, after which the supervisor gives
/// up and leaves the engine degraded (read-only).
fn supervisor_loop(shared: &Arc<Shared>, cfg: SupervisorConfig) {
    let mut generation: u64 = 0;
    loop {
        if shared.supervisor_sleep(cfg.probe_interval) {
            return; // drain
        }
        let db = shared.db();
        if db.health() != HealthState::Degraded(DegradedReason::WalPoisoned) {
            continue;
        }
        db.set_health(HealthState::Recovering);
        // The source log is the poisoned engine's on-disk WAL. A sink WAL
        // (no path) has nothing to replay from: recovery is impossible.
        let source = match db.wal().and_then(|w| w.config().path.clone()) {
            Some(p) => p,
            None => {
                shared.metrics.recovery_failures.inc();
                db.set_health(HealthState::Degraded(DegradedReason::WalPoisoned));
                return;
            }
        };
        let mut attempt: u32 = 0;
        loop {
            if shared.stopping() {
                return;
            }
            generation += 1;
            let mut config = cfg.template.clone();
            config.wal_enabled = true;
            // The replacement logs into `<source>.gN`: recovery re-logs the
            // replayed state, so the new log is self-contained and a second
            // crash recovers from it alone.
            let mut gen_path = source.clone().into_os_string();
            gen_path.push(format!(".g{generation}"));
            config.wal_path = Some(PathBuf::from(gen_path));
            // Same registry: counters and gauges keep their series across
            // the swap (registration is idempotent).
            config.metrics = Some(db.metrics().clone());
            match recover_with(&source, config, RecoveryOptions { salvage: true }) {
                Ok((new_db, _report)) => {
                    let new_db = Arc::new(new_db);
                    // The trackers share the health gauge through the
                    // registry; reassert Healthy over the Recovering value
                    // the old tracker published.
                    new_db.set_health(HealthState::Healthy);
                    *shared.db.write() = new_db;
                    shared.epoch.fetch_add(1, Ordering::AcqRel);
                    shared.metrics.recoveries.inc();
                    // Old engine: flush what it can and join its threads.
                    // Pinned sessions still hold clones of the Arc; they
                    // drain via the epoch check.
                    db.shutdown();
                    break;
                }
                Err(_) => {
                    shared.metrics.recovery_failures.inc();
                    attempt += 1;
                    if attempt >= cfg.max_attempts {
                        db.set_health(HealthState::Degraded(DegradedReason::WalPoisoned));
                        return;
                    }
                    let backoff = cfg.backoff * 2u32.saturating_pow(attempt - 1);
                    if shared.supervisor_sleep(backoff) {
                        return;
                    }
                }
            }
        }
    }
}
