//! Data-generation runners (paper §6.2–6.3).
//!
//! * [`execution`] — OU-runners for the execution-engine OUs: specialized
//!   SQL microbenchmarks sweeping each OU's input-feature space with
//!   exponential step sizes.
//! * [`util`] — runners for the batch OUs (GC, WAL serialize/flush) and the
//!   contending Index Build OU.
//! * [`txn`] — arrival-rate sweeps for the Transaction Begin/Commit OUs.
//! * [`concurrent`] — end-to-end workload execution across a
//!   (query-subset × thread-count × arrival-rate) grid, producing the
//!   interference model's training data.

pub mod concurrent;
pub mod execution;
pub mod txn;
pub mod util;

use mb2_common::DbResult;
use mb2_engine::Database;
use mb2_sql::PlanNode;

use crate::collect::{aggregate_repeats, OuSample, TrainingCollector};
use crate::translate::OuTranslator;

/// Shared measurement configuration (paper §6.2: 5 warm-ups, 10
/// repetitions, 20% trimmed mean).
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    pub repetitions: usize,
    pub warmups: usize,
    pub trim_fraction: f64,
    pub seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            repetitions: 10,
            warmups: 5,
            trim_fraction: 0.2,
            seed: 2021,
        }
    }
}

/// Measure one plan: warm up, execute `repetitions` times each in its own
/// transaction (rolled back when `mutating`, per §6.2 so the DBMS state is
/// unchanged), aggregate labels with the trimmed mean, and join with the
/// translator's features.
pub fn measure_plan(
    db: &Database,
    plan: &PlanNode,
    translator: &OuTranslator,
    cfg: &RunnerConfig,
    mutating: bool,
) -> DbResult<Vec<OuSample>> {
    let knobs = db.knobs();
    let instances = translator.translate_plan(plan, &knobs);
    let collector = TrainingCollector::new(&instances);

    let run_once = |recorder: Option<&TrainingCollector>| -> DbResult<()> {
        let mut txn = db.begin();
        let result = db.execute_plan_in(
            plan,
            &mut txn,
            recorder.map(|r| r as &dyn mb2_engine::exec::OuRecorder),
        );
        match result {
            Ok(_) => {
                if mutating {
                    txn.abort();
                } else {
                    txn.commit()?;
                }
                Ok(())
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    };

    for _ in 0..cfg.warmups {
        run_once(None)?;
    }
    let mut repeats = Vec::with_capacity(cfg.repetitions);
    for _ in 0..cfg.repetitions {
        collector.reset();
        run_once(Some(&collector))?;
        repeats.push(collector.raw());
    }
    let aggregated = aggregate_repeats(&repeats, cfg.trim_fraction);

    // Join aggregated labels with the expected features.
    let feature_map: std::collections::HashMap<(u32, mb2_common::OuKind), &Vec<f64>> = instances
        .iter()
        .map(|i| ((i.node_id, i.ou), &i.features))
        .collect();
    Ok(aggregated
        .into_iter()
        .filter_map(|(id, ou, labels)| {
            feature_map.get(&(id, ou)).map(|features| OuSample {
                ou,
                features: (*features).clone(),
                labels,
            })
        })
        .collect())
}

/// Exponential sweep steps `start, 2*start, ... <= max` (paper §6.2's
/// exponential step sizes).
pub fn exponential_steps(start: usize, max: usize) -> Vec<usize> {
    let mut steps = Vec::new();
    let mut v = start.max(1);
    while v <= max {
        steps.push(v);
        v *= 2;
    }
    if steps.last() != Some(&max) {
        steps.push(max);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::OuKind;

    #[test]
    fn exponential_steps_cover_range() {
        assert_eq!(exponential_steps(64, 512), vec![64, 128, 256, 512]);
        assert_eq!(exponential_steps(100, 450), vec![100, 200, 400, 450]);
        assert_eq!(exponential_steps(8, 8), vec![8]);
    }

    #[test]
    fn measure_plan_joins_features_and_labels() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let plan = db.prepare("SELECT * FROM t WHERE a < 25").unwrap();
        let cfg = RunnerConfig {
            repetitions: 4,
            warmups: 1,
            ..RunnerConfig::default()
        };
        let samples = measure_plan(&db, &plan, &OuTranslator::default(), &cfg, false).unwrap();
        // SeqScan + filter + Output = three OUs, one aggregated sample each.
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().any(|s| s.ou == OuKind::SeqScan));
        assert!(samples.iter().all(|s| s.labels.elapsed_us() >= 0.0));
    }

    #[test]
    fn mutating_measure_leaves_state_unchanged() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let plan = db.prepare("INSERT INTO t VALUES (2)").unwrap();
        let cfg = RunnerConfig {
            repetitions: 3,
            warmups: 2,
            ..RunnerConfig::default()
        };
        measure_plan(&db, &plan, &OuTranslator::default(), &cfg, true).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows[0][0],
            mb2_common::Value::Int(1),
            "rollbacks must revert"
        );
    }
}
