//! Recovery-cost model fit; see `mb2_bench::experiments::chaos_recovery`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::chaos_recovery::run(scale);
    mb2_bench::report::emit("chaos_recovery", &report);
}
