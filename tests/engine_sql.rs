//! Cross-crate integration tests: SQL correctness of the engine on the
//! benchmark workloads, MVCC behavior under concurrency, and property-based
//! checks on query semantics.

use std::sync::Arc;

use mb2::common::{Prng, Value};
use mb2::engine::exec::ExecutionMode;
use mb2::engine::Database;
use mb2::workloads::{smallbank::SmallBank, tatp::Tatp, tpcc::Tpcc, tpch::Tpch, Workload};

use proptest::prelude::*;

#[test]
fn all_workloads_run_concurrently_without_corruption() {
    let sb = SmallBank {
        accounts: 200,
        ..SmallBank::default()
    };
    let db = Arc::new(Database::open());
    sb.load(&db).unwrap();
    let initial: f64 = total_balance(&db);

    std::thread::scope(|scope| {
        for w in 0..4 {
            let db = db.clone();
            let sb = &sb;
            scope.spawn(move || {
                let mut rng = Prng::new(w as u64 + 100);
                for _ in 0..100 {
                    // Balance-neutral transactions only.
                    let stmts = sb.sample_transaction("amalgamate", &mut rng);
                    let _ = mb2::workloads::execute_transaction(&db, &stmts);
                }
            });
        }
    });
    // Amalgamate is balance-neutral: the total is exactly preserved no
    // matter how transactions interleave or abort.
    let after = total_balance(&db);
    assert!(after.is_finite());
    assert!(
        (after - initial).abs() < 1e-6,
        "balances must be preserved: {initial} -> {after}"
    );
    let r = db.execute("SELECT COUNT(*) FROM sb_checking").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(200));
}

fn total_balance(db: &Database) -> f64 {
    let r = db.execute("SELECT SUM(bal) FROM sb_checking").unwrap();
    let c = r.rows[0][0].as_f64().unwrap();
    let r = db.execute("SELECT SUM(bal) FROM sb_savings").unwrap();
    c + r.rows[0][0].as_f64().unwrap()
}

#[test]
fn tatp_mix_sustains_throughput() {
    let tatp = Tatp { subscribers: 300 };
    let db = Database::open();
    tatp.load(&db).unwrap();
    let mut rng = Prng::new(7);
    let mut committed = 0;
    for _ in 0..200 {
        if tatp.run_one(&db, &mut rng).is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 150, "too many failures: {committed}/200");
}

#[test]
fn tpcc_consistency_district_order_counts() {
    let tpcc = Tpcc::small();
    let db = Database::open();
    tpcc.load(&db).unwrap();
    let mut rng = Prng::new(11);
    let before = count(&db, "orders");
    let mut new_orders = 0;
    for _ in 0..30 {
        let stmts = tpcc.sample_transaction("new_order", &mut rng);
        if mb2::workloads::execute_transaction(&db, &stmts).is_ok() {
            new_orders += 1;
        }
    }
    assert_eq!(count(&db, "orders"), before + new_orders);
    // order_line grows by 5-15 per order.
    let ol = count(&db, "order_line");
    assert!(ol >= before + new_orders * 5);
}

fn count(db: &Database, table: &str) -> i64 {
    db.execute(&format!("SELECT COUNT(*) FROM {table}"))
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap()
}

#[test]
fn tpch_results_mode_invariant() {
    let tpch = Tpch::with_scale(0.02);
    let db = Database::open();
    tpch.load(&db).unwrap();
    let mut rng = Prng::new(13);
    for template in tpch.template_names() {
        let sql = tpch.query(template, &mut rng);
        let plan = db.prepare(&sql).unwrap();
        db.set_execution_mode(ExecutionMode::Interpret);
        let mut a = db.execute_plan(&plan, None).unwrap().rows;
        db.set_execution_mode(ExecutionMode::Compiled);
        let mut b = db.execute_plan(&plan, None).unwrap().rows;
        // Ties in ORDER BY keys may come out in any order (hash-table
        // iteration is unordered); compare as multisets.
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b, "{template}: modes disagree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aggregation invariant: COUNT(*) grouped sums to the table row count,
    /// and SUM over groups equals the global SUM.
    #[test]
    fn grouped_aggregates_partition_the_table(values in proptest::collection::vec((0i64..20, 0i64..1000), 1..200)) {
        let db = Database::open();
        db.execute("CREATE TABLE p (g INT, v INT)").unwrap();
        let rows: Vec<String> = values.iter().map(|(g, v)| format!("({g}, {v})")).collect();
        db.execute(&format!("INSERT INTO p VALUES {}", rows.join(", "))).unwrap();
        db.execute("ANALYZE p").unwrap();

        let grouped = db.execute("SELECT g, COUNT(*), SUM(v) FROM p GROUP BY g").unwrap();
        let count_sum: i64 = grouped.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        let sum_sum: i64 = grouped.rows.iter().map(|r| r[2].as_i64().unwrap()).sum();
        prop_assert_eq!(count_sum, values.len() as i64);
        let expected: i64 = values.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(sum_sum, expected);
    }

    /// Filter partition invariant: rows matching P plus rows matching NOT P
    /// equals all rows.
    #[test]
    fn filter_partitions_rows(values in proptest::collection::vec(0i64..1000, 1..150), bound in 0i64..1000) {
        let db = Database::open();
        db.execute("CREATE TABLE f (v INT)").unwrap();
        let rows: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO f VALUES {}", rows.join(", "))).unwrap();
        let lt = count_where(&db, &format!("v < {bound}"));
        let ge = count_where(&db, &format!("v >= {bound}"));
        prop_assert_eq!(lt + ge, values.len() as i64);
    }

    /// ORDER BY returns a sorted permutation of the unsorted result.
    #[test]
    fn order_by_is_sorted_permutation(values in proptest::collection::vec(-500i64..500, 1..100)) {
        let db = Database::open();
        db.execute("CREATE TABLE s (v INT)").unwrap();
        let rows: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO s VALUES {}", rows.join(", "))).unwrap();
        let sorted = db.execute("SELECT v FROM s ORDER BY v").unwrap();
        let got: Vec<i64> = sorted.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Join against a key table equals a manual lookup.
    #[test]
    fn hash_join_matches_nested_loop_semantics(
        left in proptest::collection::vec(0i64..30, 1..80),
        right in proptest::collection::vec(0i64..30, 1..40),
    ) {
        let db = Database::open();
        db.execute("CREATE TABLE l (k INT)").unwrap();
        db.execute("CREATE TABLE r (k INT)").unwrap();
        let rows: Vec<String> = left.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO l VALUES {}", rows.join(", "))).unwrap();
        let rows: Vec<String> = right.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO r VALUES {}", rows.join(", "))).unwrap();
        db.execute("ANALYZE l").unwrap();
        db.execute("ANALYZE r").unwrap();
        let joined = db
            .execute("SELECT COUNT(*) FROM l, r WHERE l.k = r.k")
            .unwrap().rows[0][0].as_i64().unwrap();
        let expected: i64 = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count() as i64)
            .sum();
        prop_assert_eq!(joined, expected);
    }
}

fn count_where(db: &Database, pred: &str) -> i64 {
    db.execute(&format!("SELECT COUNT(*) FROM f WHERE {pred}"))
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap()
}
