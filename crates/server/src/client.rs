//! Blocking Rust client for the mb2-server wire protocol.
//!
//! One [`Client`] is one connection, and therefore one server-side session:
//! explicit `BEGIN`/`COMMIT`/`ROLLBACK` span calls on the same client. The
//! client is deliberately thin — framing, handshake, and typed error
//! decoding — so benchmark drivers measure the server, not the client.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mb2_common::{DbError, DbResult, Value};

use crate::wire::{self, Frame, FrameReader, PROTOCOL_VERSION};

/// A materialized query response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResponse {
    /// Result rows, in server order.
    pub rows: Vec<Vec<Value>>,
    /// Rows streamed (queries) or rows affected (DML), from the Done frame.
    pub count: u64,
}

/// A blocking connection to an mb2-server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    last_retry_hint: Option<Duration>,
}

impl Client {
    /// Connect and perform the protocol handshake. An overloaded server
    /// answers the connect itself with a busy frame, surfaced here as
    /// [`DbError::ServerBusy`]. Connects as the anonymous tenant on the
    /// lowest-priority tier; see [`Client::connect_with`].
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<Client> {
        Client::connect_with(addr, "", u8::MAX)
    }

    /// Connect, naming the tenant and requested scheduling tier (0 =
    /// highest priority) in the hello. Servers without a scheduler policy
    /// ignore both.
    pub fn connect_with(addr: impl ToSocketAddrs, tenant: &str, tier: u8) -> DbResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| DbError::Net(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            reader: FrameReader::new(),
            last_retry_hint: None,
        };
        wire::write_frame(
            &mut client.stream,
            &Frame::ClientHello {
                version: PROTOCOL_VERSION,
                tenant: tenant.into(),
                tier,
            },
        )?;
        match client.read_frame()? {
            Frame::ServerHello { version } if version <= PROTOCOL_VERSION => Ok(client),
            Frame::ServerHello { version } => Err(DbError::Net(format!(
                "server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            Frame::Busy { message, .. } => Err(DbError::ServerBusy(message)),
            Frame::Error { error } => Err(error),
            other => Err(DbError::Net(format!(
                "unexpected handshake frame: {other:?}"
            ))),
        }
    }

    /// The server's `retry_after_ms` hint from the most recent busy
    /// rejection, if it sent one. Cleared by the next successful response.
    pub fn last_retry_hint(&self) -> Option<Duration> {
        self.last_retry_hint
    }

    /// Set the socket read timeout used while waiting for responses.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> DbResult<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| DbError::Net(format!("set_read_timeout: {e}")))
    }

    /// Execute one statement and materialize the response.
    pub fn query(&mut self, sql: &str) -> DbResult<QueryResponse> {
        let mut resp = QueryResponse::default();
        let count = self.query_streaming(sql, &mut |rows| {
            resp.rows.extend(rows);
            Ok(())
        })?;
        resp.count = count;
        Ok(resp)
    }

    /// Execute one statement, handing each row batch to `on_rows` as it
    /// arrives. Returns the Done frame's row count.
    ///
    /// If the callback errors, the response stream is still drained to its
    /// Done/Error terminator so the connection stays usable for the next
    /// query; the callback's error is then returned.
    pub fn query_streaming(
        &mut self,
        sql: &str,
        on_rows: &mut dyn FnMut(Vec<Vec<Value>>) -> DbResult<()>,
    ) -> DbResult<u64> {
        wire::write_frame(&mut self.stream, &Frame::Query { sql: sql.into() })?;
        let mut callback_err: Option<DbError> = None;
        loop {
            match self.read_frame()? {
                Frame::RowBatch { rows } => {
                    if callback_err.is_none() {
                        if let Err(e) = on_rows(rows) {
                            callback_err = Some(e);
                        }
                    }
                }
                Frame::Done { rows } => {
                    self.last_retry_hint = None;
                    return match callback_err {
                        Some(e) => Err(e),
                        None => Ok(rows),
                    };
                }
                Frame::Error { error } => {
                    self.last_retry_hint = None;
                    return Err(error);
                }
                Frame::Busy {
                    message,
                    retry_after_ms,
                    ..
                } => {
                    self.last_retry_hint = if retry_after_ms > 0 {
                        Some(Duration::from_millis(retry_after_ms))
                    } else {
                        None
                    };
                    return Err(DbError::ServerBusy(message));
                }
                other => {
                    return Err(DbError::Net(format!(
                        "unexpected response frame: {other:?}"
                    )))
                }
            }
        }
    }

    /// Run `statements` inside an explicit transaction: BEGIN, each
    /// statement, COMMIT. On any error a best-effort ROLLBACK is issued
    /// before the error is returned. [`DbError::ServerBusy`] aborts the
    /// whole transaction — the server never starts a shed request, so
    /// retrying the transaction from the top is safe.
    pub fn execute_transaction(&mut self, statements: &[String]) -> DbResult<Vec<QueryResponse>> {
        self.query("BEGIN")?;
        let mut responses = Vec::with_capacity(statements.len());
        for sql in statements {
            match self.query(sql) {
                Ok(resp) => responses.push(resp),
                Err(e) => {
                    if !matches!(e, DbError::Net(_)) {
                        let _ = self.query("ROLLBACK");
                    }
                    return Err(e);
                }
            }
        }
        self.query("COMMIT")?;
        Ok(responses)
    }

    fn read_frame(&mut self) -> DbResult<Frame> {
        self.reader.read_frame_blocking(&mut self.stream)
    }
}
