//! Logical timestamps for MVCC.
//!
//! Committed timestamps are plain counters. Transaction ids carry the high
//! bit (`TXN_FLAG`) so a version's begin/end field encodes either "committed
//! at time t" or "written by in-flight transaction txn".

use std::fmt;

/// High bit marking a timestamp value as an in-flight transaction id.
pub const TXN_FLAG: u64 = 1 << 63;

/// A logical timestamp or transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ts(pub u64);

impl Ts {
    /// Sentinel meaning "infinity": the version is the live newest version.
    pub const INF: Ts = Ts(!TXN_FLAG);

    /// Smallest committed timestamp.
    pub const ZERO: Ts = Ts(0);

    /// Construct a transaction-id timestamp.
    pub fn txn(id: u64) -> Ts {
        debug_assert_eq!(id & TXN_FLAG, 0, "txn id overflow");
        Ts(id | TXN_FLAG)
    }

    /// Is this value an in-flight transaction id?
    pub fn is_txn(&self) -> bool {
        self.0 & TXN_FLAG != 0
    }

    /// Is this a committed timestamp (not a txn id)?
    pub fn is_committed(&self) -> bool {
        !self.is_txn()
    }

    /// The raw transaction id, if this is a txn-id timestamp.
    pub fn txn_id(&self) -> Option<u64> {
        if self.is_txn() {
            Some(self.0 & !TXN_FLAG)
        } else {
            None
        }
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Ts::INF {
            f.write_str("inf")
        } else if let Some(id) = self.txn_id() {
            write!(f, "txn#{id}")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_flag_round_trip() {
        let t = Ts::txn(42);
        assert!(t.is_txn());
        assert!(!t.is_committed());
        assert_eq!(t.txn_id(), Some(42));
    }

    #[test]
    fn committed_ordering() {
        assert!(Ts(5) < Ts(9));
        assert!(Ts(9) < Ts::INF);
        assert!(Ts::ZERO.is_committed());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ts(3).to_string(), "t3");
        assert_eq!(Ts::txn(3).to_string(), "txn#3");
        assert_eq!(Ts::INF.to_string(), "inf");
    }
}
