//! Index instrumentation: latch contention and bulk-build progress.
//!
//! The paper's Index Build OU is the flagship *contending* OU — its cost
//! depends on how many threads fight over shared structures. [`IndexObs`]
//! makes that contention observable at runtime: every write-latch
//! acquisition on an [`Index`](crate::Index) is counted, and the ones that
//! found the latch already held are counted separately, so
//! `latch_contended / latch_acquires` is a live contention ratio. Bulk
//! builds report per-phase latency and in-flight progress.

use std::sync::Arc;

use mb2_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Shared handles for index metrics (`mb2_index_*` families). One instance
/// serves every index in a database: the registry deduplicates by name, and
/// per-index label fan-out is not worth the series cardinality here.
#[derive(Debug)]
pub struct IndexObs {
    /// Write-latch acquisitions on any index.
    pub latch_acquires: Arc<Counter>,
    /// Write-latch acquisitions that found the latch already held and had
    /// to block.
    pub latch_contended: Arc<Counter>,
    /// Parallel bulk builds completed.
    pub builds: Arc<Counter>,
    /// Entries merged into trees by bulk builds; grows *during* a build, so
    /// a scrape mid-build sees live progress.
    pub build_entries: Arc<Counter>,
    /// Bulk builds currently running.
    pub builds_in_progress: Arc<Gauge>,
    /// Sort-phase duration of one bulk build (µs).
    pub build_sort_us: Arc<Histogram>,
    /// Merge-and-load-phase duration of one bulk build (µs).
    pub build_merge_us: Arc<Histogram>,
}

impl IndexObs {
    pub fn new(registry: &MetricsRegistry) -> Arc<IndexObs> {
        Arc::new(IndexObs {
            latch_acquires: registry.counter(
                "mb2_index_latch_acquires_total",
                "Write-latch acquisitions on indexes.",
            ),
            latch_contended: registry.counter(
                "mb2_index_latch_contended_total",
                "Index write-latch acquisitions that had to block.",
            ),
            builds: registry.counter(
                "mb2_index_builds_total",
                "Parallel index bulk builds completed.",
            ),
            build_entries: registry.counter(
                "mb2_index_build_entries_total",
                "Entries merged into index trees by bulk builds (live progress).",
            ),
            builds_in_progress: registry.gauge(
                "mb2_index_builds_in_progress",
                "Index bulk builds currently running.",
            ),
            build_sort_us: registry.histogram(
                "mb2_index_build_sort_us",
                "Sort phase of one index bulk build in microseconds.",
            ),
            build_merge_us: registry.histogram(
                "mb2_index_build_merge_us",
                "Merge-and-load phase of one index bulk build in microseconds.",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_build_observed, Index};
    use mb2_common::Value;

    #[test]
    fn instrumented_index_counts_latch_acquires() {
        let registry = MetricsRegistry::new();
        let obs = IndexObs::new(&registry);
        let idx: Index<u32> = Index::with_obs("i", vec![0], Some(obs.clone()));
        idx.insert(vec![Value::Int(1)], 10);
        idx.insert(vec![Value::Int(2)], 20);
        idx.remove(&[Value::Int(1)], |_| true);
        assert_eq!(obs.latch_acquires.get(), 3);
        // Single-threaded: the latch is never contended.
        assert_eq!(obs.latch_contended.get(), 0);
    }

    #[test]
    fn observed_build_reports_progress_and_phases() {
        let registry = MetricsRegistry::new();
        let obs = IndexObs::new(&registry);
        let entries: Vec<(Vec<Value>, usize)> =
            (0..3000).map(|i| (vec![Value::Int(i as i64)], i)).collect();
        let report = parallel_build_observed(entries, 2, &|| {}, Some(&obs));
        assert_eq!(report.tree.len(), 3000);
        assert_eq!(obs.builds.get(), 1);
        assert_eq!(obs.build_entries.get(), 3000);
        assert_eq!(obs.builds_in_progress.get(), 0);
        assert_eq!(obs.build_sort_us.count(), 1);
        assert_eq!(obs.build_merge_us.count(), 1);
    }
}
