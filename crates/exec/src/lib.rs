//! Execution engine.
//!
//! Materialized operator-at-a-time execution of [`mb2_sql::PlanNode`] trees.
//! Each operator phase corresponds to exactly one operating unit from paper
//! Table 1 (hash-join build and probe are separate OUs, sort build and
//! iterate are separate OUs, filters/projections are Arithmetic/Filter OU
//! passes), and the [`tracker::OuTracker`] measures each span's behavior
//! metrics. An optional [`OuRecorder`] receives `(node id, OU, metrics)`
//! triples — the data-collection hook MB2's runners use (paper §6.1).
//!
//! Two execution modes implement the paper's `execution_mode` behavior knob:
//! `Interpret` walks expression trees per tuple; `Compiled` pre-lowers
//! expressions to nested native closures (the JIT analog).

pub mod compile;
pub mod context;
pub mod executor;
pub mod obs;
pub mod ops;
pub mod tracker;

pub use context::{ExecContext, ExecutionMode};
pub use executor::{execute, subtree_size, QueryResult};
pub use obs::ObsRecorder;
pub use tracker::{OuRecorder, OuTracker};
