//! Multi-output CART regression trees — the base learner for the random
//! forest and gradient-boosting models.

use mb2_common::{DbError, DbResult, Prng};

use crate::Regressor;

/// Tree growth hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    /// If set, consider only this many randomly chosen features per split
    /// (random-subspace mode used by the forest).
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            seed: 1,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree. Targets are standardized internally so the
/// variance-reduction criterion weighs the nine behavior metrics equally
/// despite their wildly different scales (µs vs bytes vs cycle counts).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    pub config: TreeConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) y_means: Vec<f64>,
    pub(crate) y_scales: Vec<f64>,
}

impl DecisionTree {
    pub fn new(config: TreeConfig) -> DecisionTree {
        DecisionTree {
            config,
            nodes: Vec::new(),
            y_means: Vec::new(),
            y_scales: Vec::new(),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fit on a subset of rows given by `indices` (used for bagging without
    /// copying the dataset).
    pub fn fit_indices(
        &mut self,
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        indices: &[usize],
    ) -> DbResult<()> {
        if indices.is_empty() {
            return Err(DbError::Model("decision tree: empty training set".into()));
        }
        let n_outputs = y[0].len();
        // Standardize targets over the provided rows.
        self.y_means = vec![0.0; n_outputs];
        self.y_scales = vec![1.0; n_outputs];
        for (j, (mean_slot, scale_slot)) in
            self.y_means.iter_mut().zip(&mut self.y_scales).enumerate()
        {
            let col: Vec<f64> = indices.iter().map(|&i| y[i][j]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            *mean_slot = mean;
            *scale_slot = var.sqrt().max(1e-12);
        }
        let ys: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| {
                (0..n_outputs)
                    .map(|j| (y[i][j] - self.y_means[j]) / self.y_scales[j])
                    .collect()
            })
            .collect();
        let xs: Vec<&Vec<f64>> = indices.iter().map(|&i| &x[i]).collect();
        self.nodes.clear();
        let rows: Vec<usize> = (0..indices.len()).collect();
        let mut rng = Prng::new(self.config.seed);
        self.grow(&xs, &ys, rows, 0, &mut rng);
        Ok(())
    }

    fn leaf_value(ys: &[Vec<f64>], rows: &[usize]) -> Vec<f64> {
        let n_outputs = ys[0].len();
        let mut mean = vec![0.0; n_outputs];
        for &r in rows {
            for (m, v) in mean.iter_mut().zip(&ys[r]) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= rows.len() as f64;
        }
        mean
    }

    /// Grow a subtree over `rows`; returns the node index.
    fn grow(
        &mut self,
        xs: &[&Vec<f64>],
        ys: &[Vec<f64>],
        rows: Vec<usize>,
        depth: usize,
        rng: &mut Prng,
    ) -> usize {
        let make_leaf = |nodes: &mut Vec<Node>, rows: &[usize]| {
            nodes.push(Node::Leaf {
                value: Self::leaf_value(ys, rows),
            });
            nodes.len() - 1
        };
        if depth >= self.config.max_depth || rows.len() < self.config.min_samples_split {
            return make_leaf(&mut self.nodes, &rows);
        }
        match self.best_split(xs, ys, &rows, rng) {
            None => make_leaf(&mut self.nodes, &rows),
            Some((feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.into_iter().partition(|&r| xs[r][feature] <= threshold);
                if left_rows.len() < self.config.min_samples_leaf
                    || right_rows.len() < self.config.min_samples_leaf
                {
                    let mut all = left_rows;
                    all.extend(right_rows);
                    return make_leaf(&mut self.nodes, &all);
                }
                // Reserve our slot before children so the index is stable.
                self.nodes.push(Node::Leaf { value: Vec::new() });
                let me = self.nodes.len() - 1;
                let left = self.grow(xs, ys, left_rows, depth + 1, rng);
                let right = self.grow(xs, ys, right_rows, depth + 1, rng);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    /// Pick the (feature, threshold) pair with the best total-SSE reduction
    /// across outputs, scanning sorted feature values with running sums.
    fn best_split(
        &self,
        xs: &[&Vec<f64>],
        ys: &[Vec<f64>],
        rows: &[usize],
        rng: &mut Prng,
    ) -> Option<(usize, f64)> {
        let n_features = xs[0].len();
        let n_outputs = ys[0].len();
        let n = rows.len() as f64;

        let mut features: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.config.max_features {
            rng.shuffle(&mut features);
            features.truncate(k.max(1).min(n_features));
        }

        // Total sums for the parent node.
        let mut total_sum = vec![0.0; n_outputs];
        let mut total_sq = vec![0.0; n_outputs];
        for &r in rows {
            for j in 0..n_outputs {
                total_sum[j] += ys[r][j];
                total_sq[j] += ys[r][j] * ys[r][j];
            }
        }
        let parent_sse: f64 = (0..n_outputs)
            .map(|j| total_sq[j] - total_sum[j] * total_sum[j] / n)
            .sum();
        if parent_sse <= 1e-12 {
            return None; // pure node
        }

        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        let mut sorted = rows.to_vec();
        let mut left_sum = vec![0.0; n_outputs];
        for &f in &features {
            sorted.sort_by(|&a, &b| {
                xs[a][f]
                    .partial_cmp(&xs[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            left_sum.iter_mut().for_each(|v| *v = 0.0);
            let mut left_sq_per = vec![0.0; n_outputs];
            for (k, &r) in sorted.iter().enumerate().take(sorted.len() - 1) {
                for j in 0..n_outputs {
                    left_sum[j] += ys[r][j];
                    left_sq_per[j] += ys[r][j] * ys[r][j];
                }
                let next_val = xs[sorted[k + 1]][f];
                let cur_val = xs[r][f];
                if next_val <= cur_val {
                    continue; // can't split between equal values
                }
                let nl = (k + 1) as f64;
                let nr = n - nl;
                let mut sse = 0.0;
                for j in 0..n_outputs {
                    let rs = total_sum[j] - left_sum[j];
                    let rq = total_sq[j] - left_sq_per[j];
                    sse += left_sq_per[j] - left_sum[j] * left_sum[j] / nl;
                    sse += rq - rs * rs / nr;
                }
                if best.is_none_or(|(b, _, _)| sse < b) {
                    best = Some((sse, f, (cur_val + next_val) / 2.0));
                }
            }
        }
        best.and_then(|(sse, f, t)| {
            if sse < parent_sse - 1e-12 {
                Some((f, t))
            } else {
                None
            }
        })
    }

    fn predict_standardized(&self, x: &[f64]) -> &[f64] {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        let indices: Vec<usize> = (0..x.len()).collect();
        self.fit_indices(x, y, &indices)
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let std = self.predict_standardized(x);
        std.iter()
            .enumerate()
            .map(|(j, v)| v * self.y_scales[j] + self.y_means[j])
            .collect()
    }

    fn name(&self) -> &'static str {
        "decision_tree"
    }

    fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { value } => 16 + value.len() * 8,
                Node::Split { .. } => 32,
            })
            .sum()
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![if r[0] < 50.0 { 1.0 } else { 9.0 }])
            .collect();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict_one(&[10.0])[0], 1.0);
        assert_eq!(t.predict_one(&[90.0])[0], 9.0);
    }

    #[test]
    fn multi_output_leaves() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                if r[0] < 30.0 {
                    vec![1.0, 100.0]
                } else {
                    vec![2.0, 200.0]
                }
            })
            .collect();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        let p = t.predict_one(&[5.0]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0]]).collect();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        });
        t.fit(&x, &y).unwrap();
        // Depth 2 => at most 3 splits + 4 leaves.
        assert!(t.n_nodes() <= 7, "nodes {}", t.n_nodes());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![vec![5.0]; 20];
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_one(&[3.0])[0], 5.0);
    }

    #[test]
    fn approximates_nonlinear_function() {
        let x: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 / 50.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0].sin() * 10.0]).collect();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        let mut err = 0.0;
        for r in &x {
            err += (t.predict_one(r)[0] - r[0].sin() * 10.0).abs();
        }
        assert!(
            err / (x.len() as f64) < 0.5,
            "avg err {}",
            err / x.len() as f64
        );
    }

    #[test]
    fn empty_fit_is_error() {
        let mut t = DecisionTree::new(TreeConfig::default());
        assert!(t.fit(&[], &[]).is_err());
    }
}
