//! `FaultMode::Probability` determinism: each point draws from its own
//! seeded PRNG stream keyed by its call count, so replaying a seed fires
//! the identical decision sequence — including on points consulted from
//! background threads (GC cycles, the WAL flusher's fsync), whose call
//! *counts* vary between runs but whose decision *streams* must not.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mb2_common::fault::{points, FaultMode};
use mb2_common::FaultInjector;
use mb2_engine::{Database, DatabaseConfig};

struct RunTrace {
    /// Ok/Err outcome of each of the 100 foreground inserts.
    outcomes: Vec<bool>,
    /// Recorded trip/pass decisions per point.
    commit: Vec<bool>,
    gc: Vec<bool>,
    fsync: Vec<bool>,
}

fn run(seed: u64, tag: &str) -> RunTrace {
    let path: PathBuf =
        std::env::temp_dir().join(format!("mb2_fault_det_{}_{tag}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let faults = Arc::new(FaultInjector::new(seed));
    let mut cfg = DatabaseConfig {
        wal_enabled: true,
        wal_path: Some(path.clone()),
        wal_background: true,
        wal_fsync: true,
        // Transient fsync failures are always retried away, so the flusher
        // keeps consulting its point without ever poisoning the log.
        wal_flush_retries: 1000,
        wal_retry_backoff: Duration::from_micros(10),
        faults: Some(faults.clone()),
        gc_interval: Some(Duration::from_millis(1)),
        ..DatabaseConfig::default()
    };
    cfg.knobs.wal_flush_interval = Duration::from_millis(1);
    let db = Database::new(cfg).unwrap();
    db.execute("CREATE TABLE t (id INT)").unwrap();

    // Arm after DDL so the commit point's call counter starts at the first
    // insert in both runs.
    faults.record_decisions();
    faults.arm(points::TXN_COMMIT, FaultMode::Probability(0.2));
    faults.arm(points::GC_CYCLE, FaultMode::Probability(0.3));
    faults.arm(points::WAL_FSYNC, FaultMode::Probability(0.3));

    let mut outcomes = Vec::with_capacity(100);
    for i in 0..100 {
        outcomes.push(db.execute(&format!("INSERT INTO t VALUES ({i})")).is_ok());
    }
    // Let the background GC and flusher take a few laps.
    std::thread::sleep(Duration::from_millis(30));
    let trace = RunTrace {
        outcomes,
        commit: faults.decisions(points::TXN_COMMIT),
        gc: faults.decisions(points::GC_CYCLE),
        fsync: faults.decisions(points::WAL_FSYNC),
    };
    db.shutdown();
    let _ = std::fs::remove_file(&path);
    trace
}

/// The decision streams of two runs must agree on their common prefix (the
/// background threads' call counts differ between runs; their decisions at
/// call `i` may not).
fn assert_prefix_eq(a: &[bool], b: &[bool], point: &str) {
    let n = a.len().min(b.len());
    assert!(
        n > 0,
        "point {point} was never consulted in one of the runs"
    );
    assert_eq!(
        &a[..n],
        &b[..n],
        "decision streams for {point} diverge within the common prefix"
    );
}

#[test]
fn replayed_seed_fires_identical_decision_sequences() {
    let a = run(0xDEC0DE, "a");
    let b = run(0xDEC0DE, "b");

    // Foreground point: serial inserts give identical call counts, so the
    // whole sequence — and therefore every client-visible outcome — matches.
    assert_eq!(a.commit.len(), 100);
    assert_eq!(a.commit, b.commit);
    assert_eq!(a.outcomes, b.outcomes);
    let failed = a.outcomes.iter().filter(|ok| !**ok).count();
    assert!(
        failed > 0 && failed < 100,
        "p=0.2 should fail some but not all inserts (failed {failed})"
    );

    // Background points: cycle counts are timing-dependent, decision
    // streams are not.
    assert_prefix_eq(&a.gc, &b.gc, points::GC_CYCLE);
    assert_prefix_eq(&a.fsync, &b.fsync, points::WAL_FSYNC);
}

#[test]
fn different_seeds_diverge() {
    let a = run(1, "s1");
    let b = run(2, "s2");
    assert_ne!(
        a.commit, b.commit,
        "different seeds should draw different commit decision streams"
    );
}
