//! Robust statistics used to derive OU-model labels (paper §6.2) and the
//! summary statistics consumed by the interference model (paper §5.1).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Trimmed mean: drop the lowest and highest `trim_fraction` of samples
/// before averaging. MB2 uses 20% trimming (breakdown point 0.4) to derive
/// labels from repeated OU measurements (paper §6.2).
pub fn trimmed_mean(xs: &[f64], trim_fraction: f64) -> f64 {
    assert!(
        (0.0..0.5).contains(&trim_fraction),
        "trim fraction must be in [0, 0.5)"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k = (sorted.len() as f64 * trim_fraction).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    mean(kept)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile, `p` in [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Average relative error `mean(|actual - predicted| / actual)`; pairs with
/// `actual == 0` are skipped. This is the paper's OLAP evaluation metric.
pub fn average_relative_error(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            total += (a - p).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Average absolute error `mean(|actual - predicted|)`; the paper's OLTP
/// evaluation metric (per query template).
pub fn average_absolute_error(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn trimmed_mean_rejects_outliers() {
        // 10 samples around 100 plus two wild outliers; 20% trim drops both.
        let xs = [
            99.0, 100.0, 101.0, 100.0, 99.0, 101.0, 100.0, 100.0, 1e9, -1e9,
        ];
        let tm = trimmed_mean(&xs, 0.2);
        assert!((tm - 100.0).abs() < 1.0, "trimmed mean {tm}");
    }

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(trimmed_mean(&xs, 0.0), mean(&xs));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(median(&xs), 25.0);
    }

    #[test]
    fn relative_error_skips_zero_actual() {
        let actual = [0.0, 10.0];
        let predicted = [5.0, 12.0];
        assert!((average_relative_error(&actual, &predicted) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn absolute_error() {
        let actual = [1.0, 2.0];
        let predicted = [2.0, 0.0];
        assert!((average_absolute_error(&actual, &predicted) - 1.5).abs() < 1e-12);
    }
}
