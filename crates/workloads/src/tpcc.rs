//! TPC-C \[60\]: nine tables, five transactions modeling back-end warehouses
//! fulfilling orders. This is the workload behind the paper's Fig. 1 and
//! Fig. 11 index-build scenarios: the CUSTOMER table carries an optional
//! secondary index on `(c_w_id, c_d_id, c_last)` that Payment/OrderStatus
//! lookups by last name depend on.

use mb2_common::{DbResult, Prng};
use mb2_engine::Database;

use crate::{insert_batch, Workload};

/// The 10 TPC-C last-name syllables (clause 4.3.2.3).
const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Compose a last name from a number in 0..=999.
pub fn last_name(num: usize) -> String {
    format!(
        "{}{}{}",
        SYLLABLES[(num / 100) % 10],
        SYLLABLES[(num / 10) % 10],
        SYLLABLES[num % 10]
    )
}

/// TPC-C configuration (scaled-down defaults; see DESIGN.md).
#[derive(Debug, Clone)]
pub struct Tpcc {
    pub warehouses: usize,
    pub districts_per_warehouse: usize,
    pub customers_per_district: usize,
    pub items: usize,
    /// Load the secondary index on CUSTOMER(c_w_id, c_d_id, c_last).
    pub customer_last_name_index: bool,
}

impl Default for Tpcc {
    fn default() -> Self {
        Tpcc {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 1000,
            customer_last_name_index: true,
        }
    }
}

impl Tpcc {
    pub fn small() -> Tpcc {
        Tpcc {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 60,
            items: 100,
            ..Tpcc::default()
        }
    }

    fn pick_warehouse(&self, rng: &mut Prng) -> usize {
        rng.range_usize(0, self.warehouses)
    }

    fn pick_district(&self, rng: &mut Prng) -> usize {
        rng.range_usize(0, self.districts_per_warehouse)
    }

    fn pick_customer(&self, rng: &mut Prng) -> usize {
        rng.nurand(1023, 0, self.customers_per_district as u64 - 1, 259) as usize
    }

    fn pick_item(&self, rng: &mut Prng) -> usize {
        rng.nurand(8191, 0, self.items as u64 - 1, 7911) as usize
    }

    fn pick_last_name(&self, rng: &mut Prng) -> String {
        last_name(rng.nurand(255, 0, 999, 123) as usize % self.customers_per_district.max(1))
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        db.execute(
            "CREATE TABLE warehouse (w_id INT, w_name VARCHAR(10), w_tax FLOAT, w_ytd FLOAT)",
        )?;
        db.execute(
            "CREATE TABLE district (d_w_id INT, d_id INT, d_name VARCHAR(10), \
             d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT)",
        )?;
        db.execute(
            "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, \
             c_first VARCHAR(16), c_last VARCHAR(16), c_balance FLOAT, \
             c_ytd_payment FLOAT, c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR(64))",
        )?;
        db.execute(
            "CREATE TABLE history (h_c_w_id INT, h_c_d_id INT, h_c_id INT, \
             h_date INT, h_amount FLOAT)",
        )?;
        db.execute("CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT)")?;
        db.execute(
            "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
             o_entry_d INT, o_carrier_id INT, o_ol_cnt INT)",
        )?;
        db.execute(
            "CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, \
             ol_number INT, ol_i_id INT, ol_quantity INT, ol_amount FLOAT, ol_delivery_d INT)",
        )?;
        db.execute("CREATE TABLE item (i_id INT, i_name VARCHAR(24), i_price FLOAT)")?;
        db.execute(
            "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, \
             s_ytd INT, s_order_cnt INT)",
        )?;

        let w = self.warehouses;
        let d = self.districts_per_warehouse;
        let c = self.customers_per_district;
        insert_batch(db, "warehouse", w, |i| {
            format!("({i}, 'wh_{i}', 0.07, 0.0)")
        })?;
        insert_batch(db, "district", w * d, |k| {
            format!("({}, {}, 'dist_{k}', 0.05, 0.0, {})", k / d, k % d, c)
        })?;
        insert_batch(db, "customer", w * d * c, |k| {
            let cid = k % c;
            format!(
                "({}, {}, {cid}, 'first_{cid}', '{}', 100.0, 0.0, 0, 0, 'data_{k}')",
                k / (d * c),
                (k / c) % d,
                last_name(cid % 1000),
            )
        })?;
        insert_batch(db, "item", self.items, |i| {
            format!("({i}, 'item_{i}', {}.5)", 1 + i % 99)
        })?;
        insert_batch(db, "stock", w * self.items, |k| {
            format!(
                "({}, {}, {}, 0, 0)",
                k / self.items,
                k % self.items,
                50 + k % 50
            )
        })?;
        // Initial orders: one delivered order per customer.
        insert_batch(db, "orders", w * d * c, |k| {
            let cid = k % c;
            format!("({}, {}, {cid}, {cid}, 0, 1, 5)", k / (d * c), (k / c) % d)
        })?;
        insert_batch(db, "order_line", w * d * c, |k| {
            let oid = k % c;
            format!(
                "({}, {}, {oid}, 0, {}, 5, 19.5, 0)",
                k / (d * c),
                (k / c) % d,
                k % self.items
            )
        })?;

        db.execute("CREATE INDEX warehouse_pk ON warehouse (w_id)")?;
        db.execute("CREATE INDEX district_pk ON district (d_w_id, d_id)")?;
        db.execute("CREATE INDEX customer_pk ON customer (c_w_id, c_d_id, c_id)")?;
        db.execute("CREATE INDEX orders_pk ON orders (o_w_id, o_d_id, o_id)")?;
        db.execute("CREATE INDEX new_order_pk ON new_order (no_w_id, no_d_id)")?;
        db.execute("CREATE INDEX order_line_pk ON order_line (ol_w_id, ol_d_id, ol_o_id)")?;
        db.execute("CREATE INDEX stock_pk ON stock (s_w_id, s_i_id)")?;
        db.execute("CREATE INDEX item_pk ON item (i_id)")?;
        if self.customer_last_name_index {
            db.execute(&self.customer_index_sql(1))?;
        }
        db.analyze_all();
        Ok(())
    }

    fn template_names(&self) -> Vec<&'static str> {
        vec![
            "new_order",
            "payment",
            "order_status",
            "delivery",
            "stock_level",
        ]
    }

    fn sample_transaction(&self, template: &str, rng: &mut Prng) -> Vec<String> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        match template {
            "new_order" => {
                let c = self.pick_customer(rng);
                let o_id = 100_000 + rng.range_usize(0, 1 << 20);
                let ol_cnt = 5 + rng.range_usize(0, 11);
                let mut stmts = vec![
                    format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"),
                    format!(
                        "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"
                    ),
                    format!(
                        "UPDATE district SET d_next_o_id = d_next_o_id + 1 \
                         WHERE d_w_id = {w} AND d_id = {d}"
                    ),
                    format!(
                        "SELECT c_balance FROM customer \
                         WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                    ),
                    format!("INSERT INTO orders VALUES ({w}, {d}, {o_id}, {c}, 1, 0, {ol_cnt})"),
                    format!("INSERT INTO new_order VALUES ({w}, {d}, {o_id})"),
                ];
                for line in 0..ol_cnt {
                    let item = self.pick_item(rng);
                    let qty = 1 + rng.range_usize(0, 10);
                    stmts.push(format!("SELECT i_price FROM item WHERE i_id = {item}"));
                    stmts.push(format!(
                        "UPDATE stock SET s_quantity = s_quantity - {qty}, \
                         s_ytd = s_ytd + {qty}, s_order_cnt = s_order_cnt + 1 \
                         WHERE s_w_id = {w} AND s_i_id = {item}"
                    ));
                    stmts.push(format!(
                        "INSERT INTO order_line VALUES \
                         ({w}, {d}, {o_id}, {line}, {item}, {qty}, {}.25, 0)",
                        qty * 20
                    ));
                }
                stmts
            }
            "payment" => {
                let amount = 1 + rng.range_usize(0, 5000);
                let mut stmts = vec![
                    format!("UPDATE warehouse SET w_ytd = w_ytd + {amount}.0 WHERE w_id = {w}"),
                    format!(
                        "UPDATE district SET d_ytd = d_ytd + {amount}.0 \
                         WHERE d_w_id = {w} AND d_id = {d}"
                    ),
                ];
                if rng.chance(0.6) {
                    // Lookup by last name — exercises the secondary index.
                    let name = self.pick_last_name(rng);
                    stmts.push(format!(
                        "SELECT c_id, c_balance FROM customer \
                         WHERE c_w_id = {w} AND c_d_id = {d} AND c_last = '{name}' \
                         ORDER BY c_first"
                    ));
                    stmts.push(format!(
                        "UPDATE customer SET c_balance = c_balance - {amount}.0, \
                         c_ytd_payment = c_ytd_payment + {amount}.0, \
                         c_payment_cnt = c_payment_cnt + 1 \
                         WHERE c_w_id = {w} AND c_d_id = {d} AND c_last = '{name}'"
                    ));
                } else {
                    let c = self.pick_customer(rng);
                    stmts.push(format!(
                        "UPDATE customer SET c_balance = c_balance - {amount}.0, \
                         c_ytd_payment = c_ytd_payment + {amount}.0, \
                         c_payment_cnt = c_payment_cnt + 1 \
                         WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                    ));
                }
                stmts.push(format!(
                    "INSERT INTO history VALUES ({w}, {d}, {}, 1, {amount}.0)",
                    self.pick_customer(rng)
                ));
                stmts
            }
            "order_status" => {
                if rng.chance(0.6) {
                    let name = self.pick_last_name(rng);
                    vec![
                        format!(
                            "SELECT c_id, c_balance FROM customer \
                             WHERE c_w_id = {w} AND c_d_id = {d} AND c_last = '{name}' \
                             ORDER BY c_first"
                        ),
                        format!(
                            "SELECT o_id, o_carrier_id FROM orders \
                             WHERE o_w_id = {w} AND o_d_id = {d} \
                             ORDER BY o_id DESC LIMIT 1"
                        ),
                    ]
                } else {
                    let c = self.pick_customer(rng);
                    vec![
                        format!(
                            "SELECT c_balance FROM customer \
                             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                        ),
                        format!(
                            "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line \
                             WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {c}"
                        ),
                    ]
                }
            }
            "delivery" => {
                let carrier = 1 + rng.range_usize(0, 10);
                vec![
                    format!(
                        "SELECT no_o_id FROM new_order \
                         WHERE no_w_id = {w} AND no_d_id = {d} ORDER BY no_o_id LIMIT 1"
                    ),
                    format!("DELETE FROM new_order WHERE no_w_id = {w} AND no_d_id = {d}"),
                    format!(
                        "UPDATE orders SET o_carrier_id = {carrier} \
                         WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {}",
                        self.pick_customer(rng)
                    ),
                ]
            }
            "stock_level" => {
                let threshold = 10 + rng.range_usize(0, 11);
                vec![format!(
                    "SELECT COUNT(*) FROM order_line ol, stock s \
                     WHERE ol.ol_w_id = {w} AND ol.ol_d_id = {d} \
                     AND s.s_w_id = {w} AND s.s_i_id = ol.ol_i_id \
                     AND s.s_quantity < {threshold}"
                )]
            }
            other => panic!("unknown tpcc template '{other}'"),
        }
    }
}

impl Tpcc {
    /// The Fig. 1 / Fig. 11 secondary-index build statement.
    pub fn customer_index_sql(&self, threads: usize) -> String {
        format!(
            "CREATE INDEX customer_last_name ON customer (c_w_id, c_d_id, c_last) \
             WITH (THREADS = {threads})"
        )
    }

    pub fn drop_customer_index_sql(&self) -> &'static str {
        "DROP INDEX customer_last_name ON customer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_names_follow_syllables() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn loads_and_runs_all_templates() {
        let tpcc = Tpcc::small();
        let db = Database::open();
        tpcc.load(&db).unwrap();
        let mut rng = Prng::new(11);
        for template in tpcc.template_names() {
            let stmts = tpcc.sample_transaction(template, &mut rng);
            crate::execute_transaction(&db, &stmts).unwrap();
        }
    }

    #[test]
    fn last_name_lookup_uses_secondary_index() {
        let tpcc = Tpcc::small();
        let db = Database::open();
        tpcc.load(&db).unwrap();
        let plan = db
            .prepare(
                "SELECT c_id FROM customer WHERE c_w_id = 0 AND c_d_id = 0 \
                 AND c_last = 'BARBARBAR' ORDER BY c_first",
            )
            .unwrap();
        assert!(plan.explain().contains("IndexScan"), "{}", plan.explain());
    }

    #[test]
    fn index_can_be_dropped_and_rebuilt() {
        let tpcc = Tpcc::small();
        let db = Database::open();
        tpcc.load(&db).unwrap();
        db.execute(tpcc.drop_customer_index_sql()).unwrap();
        let plan = db
            .prepare(
                "SELECT c_id FROM customer WHERE c_w_id = 0 AND c_d_id = 0 \
                 AND c_last = 'BARBARBAR'",
            )
            .unwrap();
        // Still answerable via the primary (c_w_id, c_d_id, c_id) prefix.
        let text = plan.explain();
        assert!(!text.contains("customer_last_name"));
        db.execute(&tpcc.customer_index_sql(2)).unwrap();
        let r = db
            .execute(
                "SELECT c_id FROM customer WHERE c_w_id = 0 AND c_d_id = 0 \
                 AND c_last = 'BARBARBAR'",
            )
            .unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn new_order_grows_orders_table() {
        let tpcc = Tpcc::small();
        let db = Database::open();
        tpcc.load(&db).unwrap();
        let before = db.execute("SELECT COUNT(*) FROM orders").unwrap().rows[0][0]
            .as_i64()
            .unwrap();
        let mut rng = Prng::new(13);
        let stmts = tpcc.sample_transaction("new_order", &mut rng);
        crate::execute_transaction(&db, &stmts).unwrap();
        let after = db.execute("SELECT COUNT(*) FROM orders").unwrap().rows[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(after, before + 1);
    }
}
