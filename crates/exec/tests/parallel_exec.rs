//! Integration tests for morsel-driven parallel execution: byte-identity
//! with serial execution across segment boundaries, LIMIT early-cut,
//! error propagation out of worker threads, empty inputs, pool sharing
//! across concurrent queries, and pool observability counters.

use std::sync::Arc;

use parking_lot::Mutex;

use mb2_catalog::Catalog;
use mb2_common::types::Tuple;
use mb2_common::{Column, Metrics, OuKind, Schema, Value};
use mb2_exec::{execute, ExecContext, ExecPool, OuRecorder, WorkCounts};
use mb2_sql::{parse, PlanNode, Planner, Statement};
use mb2_txn::TxnManager;

struct Harness {
    catalog: Catalog,
    txns: Arc<TxnManager>,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            catalog: Catalog::new(),
            txns: TxnManager::new(None),
        }
    }

    fn ddl(&self, sql: &str) {
        match parse(sql).unwrap() {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| {
                            let mut col = Column::new(c.name, c.ty);
                            if let Some(len) = c.varchar_len {
                                col = col.with_varchar_len(len);
                            }
                            col
                        })
                        .collect(),
                );
                self.catalog.create_table(&name, schema).unwrap();
            }
            other => panic!("not ddl: {other:?}"),
        }
    }

    fn run(&self, sql: &str) {
        let plan = self.plan(sql);
        let mut txn = self.txns.begin();
        {
            let mut ctx = ExecContext::new(&self.catalog, &mut txn);
            execute(&plan, &mut ctx).unwrap();
        }
        txn.commit().unwrap();
    }

    fn plan(&self, sql: &str) -> PlanNode {
        let stmt = parse(sql).unwrap();
        Planner::new(&self.catalog).plan(&stmt).unwrap()
    }

    fn query(
        &self,
        sql: &str,
        pool: Option<&Arc<ExecPool>>,
        morsel_slots: usize,
    ) -> Result<Vec<Tuple>, mb2_common::DbError> {
        let plan = self.plan(sql);
        let mut txn = self.txns.begin();
        let rows = {
            let mut ctx = ExecContext::new(&self.catalog, &mut txn).with_morsel_slots(morsel_slots);
            if let Some(pool) = pool {
                ctx = ctx.with_pool(pool.clone());
            }
            execute(&plan, &mut ctx).map(|r| r.rows)
        };
        txn.commit().unwrap();
        rows
    }
}

/// Sums scanned tuples per OU kind (ignoring node ids).
#[derive(Default)]
struct ScanRec(Mutex<u64>);

impl OuRecorder for ScanRec {
    fn record(&self, _: u32, _: OuKind, _: Metrics) {}
    fn record_work(&self, _: u32, ou: OuKind, w: WorkCounts) {
        if ou == OuKind::SeqScan {
            *self.0.lock() += w.tuples;
        }
    }
}

/// 5000 rows: spans two storage segments (SEGMENT_SIZE = 4096), so range
/// morsels cross a segment boundary.
fn multi_segment_harness() -> Harness {
    let h = Harness::new();
    h.ddl("CREATE TABLE big (a INT, b INT)");
    let mut i = 0;
    while i < 5000 {
        let vals: Vec<String> = (i..i + 500).map(|j| format!("({j}, {})", j % 97)).collect();
        h.run(&format!("INSERT INTO big VALUES {}", vals.join(", ")));
        i += 500;
    }
    h
}

#[test]
fn parallel_matches_serial_across_segment_boundaries() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(4);
    for sql in [
        "SELECT * FROM big WHERE b < 9",
        "SELECT a + b FROM big WHERE a >= 100",
        "SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a) FROM big GROUP BY b ORDER BY b",
    ] {
        let serial = h.query(sql, None, 1024).unwrap();
        // Morsel sizes that do and don't divide the heap, including one
        // that straddles the 4096-slot segment boundary.
        for morsel_slots in [512usize, 1000, 3000] {
            let par = h.query(sql, Some(&pool), morsel_slots).unwrap();
            assert_eq!(
                par, serial,
                "parallel differs from serial: {sql} morsel_slots={morsel_slots}"
            );
        }
    }
}

#[test]
fn limit_prefix_is_exact_under_parallelism() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(4);
    let all = h
        .query("SELECT * FROM big WHERE b = 3", None, 1024)
        .unwrap();
    assert!(all.len() > 10);
    for take in [1usize, 7, 37] {
        let sql = format!("SELECT * FROM big WHERE b = 3 LIMIT {take}");
        let par = h.query(&sql, Some(&pool), 256).unwrap();
        // The parallel LIMIT prefix must equal the serial scan-order prefix.
        assert_eq!(par.as_slice(), &all[..take]);
    }
}

#[test]
fn limit_cancels_outstanding_morsels() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(2);
    let rec = ScanRec::default();
    let plan = h.plan("SELECT * FROM big LIMIT 5");
    let mut txn = h.txns.begin();
    {
        let mut ctx = ExecContext::new(&h.catalog, &mut txn)
            .with_recorder(&rec)
            .with_morsel_slots(256)
            .with_pool(pool.clone());
        let rows = execute(&plan, &mut ctx).unwrap().rows;
        assert_eq!(rows.len(), 5);
    }
    txn.commit().unwrap();
    // Cancellation is advisory (workers may complete in-flight morsels),
    // but the cut must stop the scan well short of the 5000-row heap.
    let scanned = *rec.0.lock();
    assert!(scanned >= 5, "must scan at least the emitted prefix");
    assert!(
        scanned < 5000,
        "LIMIT must cancel outstanding morsels, scanned {scanned}"
    );
}

#[test]
fn worker_errors_propagate_without_hanging() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(4);
    // Division by zero fires inside a worker thread mid-scan.
    let err = h
        .query("SELECT a / (b - 3) FROM big WHERE b < 50", Some(&pool), 256)
        .unwrap_err();
    assert!(
        matches!(err, mb2_common::DbError::Execution(_)),
        "expected execution error, got {err:?}"
    );
    // The pool must survive a failed query and keep serving.
    let ok = h
        .query("SELECT * FROM big WHERE b = 0", Some(&pool), 256)
        .unwrap();
    let serial = h
        .query("SELECT * FROM big WHERE b = 0", None, 1024)
        .unwrap();
    assert_eq!(ok, serial);
}

#[test]
fn empty_and_tiny_tables_take_the_serial_path() {
    let h = Harness::new();
    h.ddl("CREATE TABLE empty (a INT)");
    h.ddl("CREATE TABLE tiny (a INT)");
    h.run("INSERT INTO tiny VALUES (1), (2), (3)");
    let pool = ExecPool::new(4);
    let before = pool.morsels_processed();
    assert!(h
        .query("SELECT * FROM empty", Some(&pool), 4)
        .unwrap()
        .is_empty());
    let rows = h.query("SELECT * FROM tiny", Some(&pool), 4).unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)]
        ]
    );
    // Single-morsel plans don't pay pool dispatch: no morsels processed.
    assert_eq!(pool.morsels_processed(), before);
}

#[test]
fn concurrent_queries_share_one_pool() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(3);
    let serial = h
        .query("SELECT * FROM big WHERE b < 5", None, 1024)
        .unwrap();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let h = &h;
            let pool = &pool;
            let serial = &serial;
            s.spawn(move || {
                for _ in 0..5 {
                    let rows = h
                        .query("SELECT * FROM big WHERE b < 5", Some(pool), 512)
                        .unwrap();
                    assert_eq!(&rows, serial);
                }
            });
        }
    });
    // Workers mark themselves idle just *after* the query observes its
    // last result, so give the gauge a moment to settle.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while pool.busy_workers() != 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(pool.busy_workers(), 0, "workers must return to idle");
    assert!(pool.morsels_processed() > 0);
}

#[test]
fn pool_counts_morsels() {
    let h = multi_segment_harness();
    let pool = ExecPool::new(2);
    let before = pool.morsels_processed();
    h.query("SELECT * FROM big WHERE b = 1", Some(&pool), 500)
        .unwrap();
    let done = pool.morsels_processed() - before;
    // 5000 slots / 500 per morsel = 10 morsels, all processed (no LIMIT).
    assert_eq!(done, 10);
}
