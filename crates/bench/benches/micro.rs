//! Criterion micro-benchmarks for the substrates and the MB2 hot paths
//! (translator + inference latency — the paper's §8.1 numbers).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mb2_common::{Column, DataType, Metrics, OuKind, Schema, Value};
use mb2_core::collect::{OuSample, TrainingRepo};
use mb2_core::training::{train_all, TrainingConfig};
use mb2_core::{BehaviorModels, OuTranslator};
use mb2_engine::storage::{Table, TableId, Ts};
use mb2_engine::wal::{LogManager, LogManagerConfig, LogRecord};
use mb2_engine::Database;
use mb2_ml::Algorithm;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("insert_commit_1k", |b| {
        b.iter_batched(
            || {
                Table::new(
                    TableId(1),
                    "t",
                    Schema::new(vec![Column::new("a", DataType::Int)]),
                )
            },
            |t| {
                for i in 0..1000 {
                    let slot = t.insert(vec![Value::Int(i)], Ts::txn(1)).unwrap();
                    t.commit_slot(slot, Ts::txn(1), Ts(2), 1);
                }
            },
            BatchSize::SmallInput,
        )
    });
    let table = Table::new(
        TableId(1),
        "t",
        Schema::new(vec![Column::new("a", DataType::Int)]),
    );
    for i in 0..10_000 {
        let slot = table.insert(vec![Value::Int(i)], Ts::txn(1)).unwrap();
        table.commit_slot(slot, Ts::txn(1), Ts(2), 1);
    }
    group.bench_function("scan_10k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            table.scan_visible(Ts(2), Ts::txn(9), |_, _| {
                n += 1;
                true
            });
            n
        })
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    use mb2_engine::index::BPlusTree;
    let mut group = c.benchmark_group("btree");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for i in 0..10_000i64 {
                t.insert(vec![Value::Int((i * 7919) % 10_000)], i);
            }
            t.len()
        })
    });
    let mut tree = BPlusTree::new();
    for i in 0..100_000i64 {
        tree.insert(vec![Value::Int(i)], i);
    }
    group.bench_function("point_get_100k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            tree.get(&[Value::Int(i)])
        })
    });
    group.bench_function("range_1k_of_100k", |b| {
        b.iter(|| {
            let mut n = 0;
            tree.range(&[Value::Int(40_000)], &[Value::Int(41_000)], |_, _| {
                n += 1;
                true
            });
            n
        })
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("serialize_1k_records", |b| {
        let wal = LogManager::new(LogManagerConfig::default()).unwrap();
        b.iter(|| {
            for i in 0..1000u64 {
                wal.append(&LogRecord::Insert {
                    txn_id: i,
                    table_id: 1,
                    slot: i,
                    tuple: vec![Value::Int(i as i64), Value::Varchar("payload".into())],
                })
                .unwrap();
            }
            wal.flush_now().unwrap()
        })
    });
    group.finish();
}

fn bench_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(20);
    let db = Database::open();
    db.execute("CREATE TABLE b1 (k INT, g INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE b2 (k INT, w FLOAT)").unwrap();
    for chunk in (0..10_000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 1.5)", i % 100))
            .collect();
        db.execute(&format!("INSERT INTO b1 VALUES {}", vals.join(", ")))
            .unwrap();
    }
    for chunk in (0..1000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk.iter().map(|i| format!("({i}, 2.5)")).collect();
        db.execute(&format!("INSERT INTO b2 VALUES {}", vals.join(", ")))
            .unwrap();
    }
    db.analyze_all();
    let join = db
        .prepare("SELECT * FROM b1, b2 WHERE b1.g = b2.k AND b2.w > 1.0")
        .unwrap();
    let agg = db
        .prepare("SELECT g, COUNT(*), SUM(v) FROM b1 GROUP BY g")
        .unwrap();
    let sort = db.prepare("SELECT * FROM b1 ORDER BY v LIMIT 100").unwrap();
    group.bench_function("hash_join_10k_x_1k", |b| {
        b.iter(|| db.execute_plan(&join, None).unwrap().rows_affected)
    });
    group.bench_function("agg_10k", |b| {
        b.iter(|| db.execute_plan(&agg, None).unwrap().rows_affected)
    });
    group.bench_function("sort_10k_top100", |b| {
        b.iter(|| db.execute_plan(&sort, None).unwrap().rows_affected)
    });
    for (name, mode) in [
        (
            "filter_interpret",
            mb2_engine::exec::ExecutionMode::Interpret,
        ),
        ("filter_compiled", mb2_engine::exec::ExecutionMode::Compiled),
    ] {
        db.set_execution_mode(mode);
        let plan = db
            .prepare("SELECT k * 2 + g FROM b1 WHERE v > 1.0")
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| db.execute_plan(&plan, None).unwrap().rows_affected)
        });
    }
    db.set_execution_mode(mb2_engine::exec::ExecutionMode::Compiled);
    group.finish();
}

fn bench_ml(c: &mut Criterion) {
    use mb2_ml::forest::{ForestConfig, RandomForest};
    use mb2_ml::Regressor;
    let mut group = c.benchmark_group("ml");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    let mut rng = mb2_common::Prng::new(5);
    let x: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..7).map(|_| rng.next_f64() * 10.0).collect())
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|r| vec![r[0] * 3.0 + r[1] * r[2], r[3] + 1.0])
        .collect();
    group.bench_function("random_forest_train_500x7", |b| {
        b.iter(|| {
            let mut f = RandomForest::new(ForestConfig {
                n_estimators: 20,
                ..ForestConfig::default()
            });
            f.fit(&x, &y).unwrap();
        })
    });
    let mut forest = RandomForest::new(ForestConfig {
        n_estimators: 50,
        ..ForestConfig::default()
    });
    forest.fit(&x, &y).unwrap();
    group.bench_function("random_forest_predict", |b| {
        b.iter(|| forest.predict_one(&x[0]))
    });
    group.finish();
}

/// The paper's §8.1 hot-path numbers: translator ~10µs, inference ~0.5ms.
fn bench_mb2(c: &mut Criterion) {
    let mut group = c.benchmark_group("mb2");
    group.measurement_time(Duration::from_secs(3));
    let db = Database::open();
    db.execute("CREATE TABLE m (k INT, g INT, v FLOAT)")
        .unwrap();
    for chunk in (0..2000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 1.0)", i % 20))
            .collect();
        db.execute(&format!("INSERT INTO m VALUES {}", vals.join(", ")))
            .unwrap();
    }
    db.analyze_all();
    let plan = db
        .prepare("SELECT g, COUNT(*), SUM(v) FROM m WHERE k > 100 GROUP BY g ORDER BY g")
        .unwrap();
    let translator = OuTranslator::default();
    let knobs = db.knobs();
    group.bench_function("translate_agg_plan", |b| {
        b.iter(|| translator.translate_plan(&plan, &knobs).len())
    });
    // Train a minimal model set for inference-latency measurement.
    let mut repo = TrainingRepo::new();
    for inst in translator.translate_plan(&plan, &knobs) {
        for k in 1..=12 {
            let mut f = inst.features.clone();
            f[0] = (k * 100) as f64;
            let mut labels = Metrics::ZERO;
            labels[0] = f[0] * 2.0;
            repo.add(OuSample {
                ou: inst.ou,
                features: f,
                labels,
            });
        }
    }
    let (models, _) = train_all(
        &repo,
        &TrainingConfig {
            candidates: vec![Algorithm::RandomForest],
            ..TrainingConfig::default()
        },
    )
    .unwrap();
    let behavior = BehaviorModels::new(models, None);
    group.bench_function("ou_model_inference_agg_plan", |b| {
        b.iter(|| behavior.predict_plan(&plan, &knobs).total)
    });
    // One full tracked query execution (tracker overhead path).
    let instances = translator.translate_plan(&plan, &knobs);
    let collector = mb2_core::TrainingCollector::new(&instances);
    group.bench_function("tracked_query_execution", |b| {
        b.iter(|| {
            db.execute_plan(&plan, Some(&collector))
                .unwrap()
                .rows_affected
        })
    });
    let _ = OuKind::ALL; // keep import referenced
    group.finish();
}

criterion_group!(substrates, bench_storage, bench_btree, bench_wal);
criterion_group!(engine, bench_exec);
criterion_group!(models, bench_ml, bench_mb2);
criterion_main!(substrates, engine, models);
