//! Autopilot control loop under a shifting workload.
//!
//! Trains real OU-models through the standard pipeline, then points the
//! `mb2-pilot` control loop at a live database while the workload shifts
//! from TATP point lookups to scan-heavy queries over an unindexed
//! column. Gates:
//!
//! 1. the pilot chooses (and applies) an index build for the scan-heavy
//!    phase, and its predicted build cost lands within 2x of the
//!    observed build duration;
//! 2. when the verify window is sabotaged (every commit stalls via fault
//!    injection), the pilot reverts the action it just deployed.
//!
//! Emits `results/BENCH_pilot.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use mb2_common::fault::{self, FaultInjector};
use mb2_core::BehaviorModels;
use mb2_engine::{Database, DatabaseConfig, StatementTap};
use mb2_pilot::{Pilot, PilotConfig, TickOutcome};
use mb2_workloads::tatp::Tatp;
use mb2_workloads::Workload;

use crate::pipeline::{build_ou_models, PipelineConfig};
use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Predicted index-build cost must land within this factor of observed.
const BUILD_COST_FACTOR: f64 = 2.0;
/// Ticks the loop may take to converge on the index build.
const MAX_TICKS: usize = 12;

fn pilot_config() -> PilotConfig {
    PilotConfig {
        forecast_window: Duration::from_secs(2),
        forecast_buckets: 4,
        min_arrivals: 20,
        min_gain: 0.05,
        cooldown: Duration::ZERO,
        verify_window: Duration::ZERO,
        index_build_threads: 2,
        seed: 7,
        ..PilotConfig::fast()
    }
}

fn pilot_indexes(db: &Database, table: &str) -> Vec<String> {
    db.catalog()
        .get(table)
        .map(|t| {
            t.indexes()
                .iter()
                .filter(|i| i.name.starts_with("pilot_"))
                .map(|i| i.name.clone())
                .collect()
        })
        .unwrap_or_default()
}

/// TATP point-lookup phase: indexed `s_id = ?` traffic the pilot has no
/// index to offer for.
fn drive_tatp(db: &Database, n: usize, subscribers: usize) {
    for i in 0..n {
        let s = (i * 31) % subscribers;
        db.execute(&format!(
            "SELECT s_id, vlr_location FROM tatp_subscriber WHERE s_id = {s}"
        ))
        .unwrap();
    }
}

/// Scan-heavy phase: equality filter on the unindexed `vlr_location`
/// column, so every query seq-scans until the pilot builds an index.
fn drive_scans(db: &Database, n: usize, subscribers: usize) {
    for i in 0..n {
        let v = ((i * 31) % subscribers) * 31 % 65536;
        db.execute(&format!(
            "SELECT s_id FROM tatp_subscriber WHERE vlr_location = {v}"
        ))
        .unwrap();
    }
}

/// Tick until the pilot applies an index build (driving scan traffic
/// between ticks); returns (ticks used, predicted us, observed us) or
/// None when the loop never converged.
fn tick_until_build(
    pilot: &Pilot,
    db: &Database,
    subscribers: usize,
    log: &mut Table,
) -> Option<(usize, f64, f64)> {
    for tick in 0..MAX_TICKS {
        drive_scans(db, 20, subscribers);
        let outcome = pilot.run_once();
        log.row(&["scan-heavy".into(), format!("{outcome:?}")]);
        if outcome == TickOutcome::Applied("build_index") {
            // The apply tick publishes both gauges; capture before a later
            // action overwrites them.
            return Some((
                tick + 1,
                pilot.metrics().predicted_action_duration_us.get(),
                pilot.metrics().observed_action_duration_us.get(),
            ));
        }
    }
    None
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Autopilot — control loop under a shifting workload\n\n");

    // Real models from the standard runner/training pipeline. The whole
    // point of decomposed OU-models is that they transfer: nothing below
    // retrains on the TATP database.
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");
    let models = Arc::new(BehaviorModels::new(built.models, None));
    // Large enough that the index build dwarfs fixed statement overhead
    // (the cost gate compares build predictions), but still inside the
    // training pipeline's index-row sweep so the models interpolate.
    let subscribers = scale.pick(2000, 8000);
    let tatp = Tatp { subscribers };

    // --- Scenario 1: workload shift -> index build, predicted vs observed.
    let db = Arc::new(Database::open());
    tatp.load(&db).expect("tatp load");
    let pilot = Pilot::new(db.clone(), models.clone(), pilot_config());
    db.set_statement_tap(Some(pilot.forecaster().clone() as Arc<dyn StatementTap>));

    let mut log = Table::new("control-loop ticks", &["phase", "outcome"]);

    // Phase 1: TATP point lookups; `s_id` is indexed, so no build candidate
    // exists and any applied action is a knob flip at most.
    drive_tatp(&db, 60, subscribers);
    for _ in 0..2 {
        let outcome = pilot.run_once();
        log.row(&["tatp".into(), format!("{outcome:?}")]);
    }
    let built_during_tatp = !pilot_indexes(&db, "tatp_subscriber").is_empty();

    // Phase 2: let the TATP templates age out of the sliding window, then
    // shift to scan-heavy traffic until the pilot deploys the index.
    std::thread::sleep(Duration::from_millis(2200));
    let converged = tick_until_build(&pilot, &db, subscribers, &mut log);
    let (build_ticks, predicted_us, observed_us) = converged.unwrap_or((0, 0.0, 0.0));
    // Verify tick: the new index serves the same traffic faster.
    drive_scans(&db, 20, subscribers);
    let verify = pilot.run_once();
    log.row(&["scan-heavy".into(), format!("{verify:?}")]);
    let indexes = pilot_indexes(&db, "tatp_subscriber");
    let builds_applied = pilot.metrics().applied("build_index").get();
    db.set_statement_tap(None);

    // --- Scenario 2: sabotaged verify window -> revert.
    let faults = Arc::new(FaultInjector::new(23));
    let db2 = Arc::new(
        Database::new(DatabaseConfig {
            faults: Some(faults.clone()),
            ..DatabaseConfig::default()
        })
        .expect("faulty database"),
    );
    tatp.load(&db2).expect("tatp load");
    let pilot2 = Pilot::new(db2.clone(), models, pilot_config());
    db2.set_statement_tap(Some(pilot2.forecaster().clone() as Arc<dyn StatementTap>));
    // Priming tick: establishes the baseline snapshot the verify step
    // measures regression against (too little traffic to plan yet).
    drive_scans(&db2, 5, subscribers);
    let outcome = pilot2.run_once();
    log.row(&["revert: priming".into(), format!("{outcome:?}")]);
    let mut reverted = false;
    if tick_until_build(&pilot2, &db2, subscribers, &mut log).is_some() {
        // Every commit now stalls: observed latency regresses far past
        // baseline and the verify step must roll the build back.
        faults.arm_delay(fault::points::TXN_COMMIT, Duration::from_millis(40));
        for i in 0..8 {
            db2.execute(&format!(
                "INSERT INTO tatp_subscriber VALUES ({}, '{:015}', 0, 0, 0, 0)",
                subscribers + i,
                subscribers + i
            ))
            .unwrap();
        }
        faults.disarm(fault::points::TXN_COMMIT);
        let outcome = pilot2.run_once();
        log.row(&["sabotaged verify".into(), format!("{outcome:?}")]);
        reverted = outcome == TickOutcome::Verified { reverted: true };
    }
    let revert_count = pilot2.metrics().reverted.get();
    let indexes_after_revert = pilot_indexes(&db2, "tatp_subscriber");
    db2.set_statement_tap(None);

    out.push_str(&log.render());
    let mut facts = Table::new("index-build prediction vs reality", &["quantity", "value"]);
    facts.row(&["ticks to build".into(), build_ticks.to_string()]);
    facts.row(&["predicted build (us)".into(), fmt(predicted_us)]);
    facts.row(&["observed build (us)".into(), fmt(observed_us)]);
    let ratio = if observed_us > 0.0 {
        predicted_us / observed_us
    } else {
        0.0
    };
    facts.row(&["predicted/observed".into(), format!("{ratio:.2}")]);
    out.push('\n');
    out.push_str(&facts.render());

    let g_build = converged.is_some()
        && !built_during_tatp
        && builds_applied >= 1
        && indexes == ["pilot_tatp_subscriber_vlr_location"];
    let g_cost = (1.0 / BUILD_COST_FACTOR..=BUILD_COST_FACTOR).contains(&ratio);
    let g_accept = verify == (TickOutcome::Verified { reverted: false });
    let g_revert = reverted && revert_count >= 1 && indexes_after_revert.is_empty();
    let pass = g_build && g_cost && g_accept && g_revert;
    let _ = writeln!(
        out,
        "\ngates: shift triggers exactly the vlr_location build: {g_build}; \
         predicted build cost within {BUILD_COST_FACTOR}x of observed: {g_cost} ({ratio:.2}); \
         verify accepts the build under real traffic: {g_accept}; \
         sabotaged verify reverts it: {g_revert} — {}",
        if pass { "PASS" } else { "FAIL" }
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"pilot_loop\",\n");
    let _ = writeln!(json, "  \"subscribers\": {subscribers},");
    let _ = writeln!(json, "  \"ticks_to_build\": {build_ticks},");
    let _ = writeln!(json, "  \"predicted_build_us\": {predicted_us:.1},");
    let _ = writeln!(json, "  \"observed_build_us\": {observed_us:.1},");
    let _ = writeln!(json, "  \"build_cost_ratio\": {ratio:.4},");
    let _ = writeln!(json, "  \"build_cost_factor_gate\": {BUILD_COST_FACTOR},");
    let _ = writeln!(json, "  \"builds_applied\": {builds_applied},");
    let _ = writeln!(json, "  \"reverts\": {revert_count},");
    let _ = writeln!(json, "  \"gate_build\": {g_build},");
    let _ = writeln!(json, "  \"gate_cost\": {g_cost},");
    let _ = writeln!(json, "  \"gate_accept\": {g_accept},");
    let _ = writeln!(json, "  \"gate_revert\": {g_revert},");
    let _ = writeln!(json, "  \"gate_pass\": {pass}");
    json.push_str("}\n");
    let path = results_dir().join("BENCH_pilot.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\nwrote {}", path.display());
    }

    assert!(pass, "pilot_loop acceptance gates failed:\n{out}");
    out
}
