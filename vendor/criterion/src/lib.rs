//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the slice of `criterion` its benches use: `Criterion`,
//! `benchmark_group` (with `measurement_time`/`sample_size`), `Bencher::iter`
//! and `iter_batched`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs a warmup, then samples for (a scaled-down fraction of)
//! the configured measurement time and prints mean iteration latency. There
//! is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. All variants behave identically
/// here: setup runs outside the timed section for every batch of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            measurement_time: Duration::from_secs(1),
            sample_size: 50,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, Duration::from_secs(1), 50, &mut f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.measurement_time, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, measurement: Duration, samples: usize, f: &mut F) {
    // The vendored harness targets CI smoke timing, not statistics: cap the
    // budget well below criterion's defaults so `cargo bench` stays fast.
    let budget = measurement.min(Duration::from_millis(500));
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget,
        max_samples: samples,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "bench {name:<40} {:>12.0} ns/iter ({} iters)",
            mean, bencher.iters
        );
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly until the budget is exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warmup iteration.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget && (self.iters as usize) < self.max_samples * 100 {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget && (self.iters as usize) < self.max_samples * 100 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Like `iter_batched` but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut i| routine(&mut i), _size);
    }
}

/// Opaque value barrier preventing the optimizer from deleting the work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| v.into_iter().sum::<i32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
