//! SQL value and type system.
//!
//! The engine is row-oriented: a tuple is a `Vec<Value>`. Values carry their
//! own type tag, which keeps the interpreter simple; the "compiled" execution
//! mode specializes hot loops to avoid per-value dispatch where it matters.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{DbError, DbResult};

/// Data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float (`REAL`/`DECIMAL` are mapped here).
    Float,
    /// Variable-length UTF-8 string.
    Varchar,
    /// Boolean.
    Bool,
    /// Microseconds since the UNIX epoch.
    Timestamp,
}

impl DataType {
    /// In-memory size estimate in bytes for a value of this type, used for
    /// tuple-size OU features and memory accounting. Varchar is estimated at
    /// declaration time; [`Value::size_bytes`] reports actual sizes.
    pub fn fixed_size(&self) -> usize {
        match self {
            DataType::Int | DataType::Float | DataType::Timestamp => 8,
            DataType::Bool => 1,
            DataType::Varchar => 16, // pointer + length estimate
        }
    }

    /// Parse a type name as it appears in SQL (`INT`, `VARCHAR`, ...).
    pub fn parse_sql(name: &str) -> DbResult<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Ok(DataType::Float),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => Ok(DataType::Varchar),
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "TIMESTAMP" | "DATE" => Ok(DataType::Timestamp),
            other => Err(DbError::Parse(format!("unknown type '{other}'"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Varchar => "VARCHAR",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Varchar(String),
    Bool(bool),
    Timestamp(i64),
}

impl Value {
    /// The type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Actual in-memory size in bytes (used for tuple-size features and
    /// memory-consumption labels).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Varchar(s) => 16 + s.len(),
        }
    }

    /// Numeric view used by arithmetic and aggregation.
    pub fn as_f64(&self) -> DbResult<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Timestamp(v) => Ok(*v as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(DbError::Execution(format!("{other} is not numeric"))),
        }
    }

    pub fn as_i64(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Timestamp(v) => Ok(*v),
            Value::Float(v) => Ok(*v as i64),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(DbError::Execution(format!("{other} is not an integer"))),
        }
    }

    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(DbError::Execution(format!("{other} is not a boolean"))),
        }
    }

    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Varchar(s) => Ok(s),
            other => Err(DbError::Execution(format!("{other} is not a string"))),
        }
    }

    /// Coerce to the given type, following permissive SQL casting rules.
    pub fn cast(&self, ty: DataType) -> DbResult<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        Ok(match ty {
            DataType::Int => Value::Int(self.as_i64()?),
            DataType::Float => Value::Float(self.as_f64()?),
            DataType::Timestamp => Value::Timestamp(self.as_i64()?),
            DataType::Bool => Value::Bool(self.as_bool()?),
            DataType::Varchar => Value::Varchar(self.to_string()),
        })
    }

    /// SQL three-valued comparison. NULLs sort first and compare equal to
    /// each other so values can be used as grouping and sort keys.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Int(a), Timestamp(b)) | (Timestamp(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Heterogeneous comparisons order by type tag; valid plans never
            // hit this path, but total ordering keeps sorting panic-free.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Hash for use as a join/aggregation key (consistent with `cmp_total`).
    pub fn hash_key<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) | Value::Timestamp(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                // Normalize -0.0 / NaN so equal keys hash equally.
                let bits = if *v == 0.0 {
                    0u64
                } else if v.is_nan() {
                    u64::MAX
                } else {
                    v.to_bits()
                };
                2u8.hash(state);
                bits.hash(state);
            }
            Value::Varchar(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Timestamp(_) => 4,
        Value::Varchar(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash_key(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Varchar(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(v) => write!(f, "ts:{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A tuple is a boxed row of values.
pub type Tuple = Vec<Value>;

/// Total size in bytes of a tuple (for tuple-size features).
pub fn tuple_size_bytes(tuple: &[Value]) -> usize {
    tuple.iter().map(Value::size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).cmp_total(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn nulls_sort_first_and_equal() {
        assert_eq!(Value::Null.cmp_total(&Value::Null), Ordering::Equal);
        assert_eq!(Value::Null.cmp_total(&Value::Int(i64::MIN)), Ordering::Less);
    }

    #[test]
    fn float_zero_hash_normalized() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(
            hash_of(&Value::Varchar("abc".into())),
            hash_of(&Value::from("abc"))
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Int(3).cast(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.9).cast(DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::Int(7).cast(DataType::Varchar).unwrap(),
            Value::from("7")
        );
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn parse_sql_types() {
        assert_eq!(DataType::parse_sql("integer").unwrap(), DataType::Int);
        assert_eq!(DataType::parse_sql("TEXT").unwrap(), DataType::Varchar);
        assert!(DataType::parse_sql("blob").is_err());
    }

    #[test]
    fn tuple_sizes() {
        let t = vec![Value::Int(1), Value::from("hi"), Value::Bool(true)];
        assert_eq!(tuple_size_bytes(&t), 8 + (16 + 2) + 1);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::from("x").as_f64().is_err());
        assert_eq!(Value::Float(2.7).as_i64().unwrap(), 2);
    }
}
