//! Runners for the batch OUs (garbage collection, WAL serialize/flush) and
//! the contending Index Build OU (paper §6.2, Table 1).

use std::time::Duration;

use mb2_common::{DbResult, OuKind, Prng};
use mb2_engine::wal::{LogManager, LogManagerConfig, LogRecord};
use mb2_engine::{Database, DatabaseConfig, Knobs};
use mb2_exec::OuTracker;

use crate::collect::{OuSample, TrainingRepo};
use crate::runners::{exponential_steps, measure_plan, RunnerConfig};
use crate::translate::OuTranslator;

/// Sweep configuration for the util runners.
#[derive(Debug, Clone)]
pub struct UtilRunnerConfig {
    /// Max update count for the GC sweep / record count for the WAL sweep.
    pub max_batch: usize,
    pub min_batch: usize,
    /// Max table size for the index-build sweep.
    pub max_index_rows: usize,
    /// Thread counts for the index-build contention sweep.
    pub build_threads: Vec<usize>,
    pub measure: RunnerConfig,
}

impl Default for UtilRunnerConfig {
    fn default() -> Self {
        UtilRunnerConfig {
            max_batch: 4096,
            min_batch: 64,
            max_index_rows: 16_384,
            build_threads: vec![1, 2, 4, 8],
            measure: RunnerConfig::default(),
        }
    }
}

impl UtilRunnerConfig {
    pub fn smoke() -> UtilRunnerConfig {
        UtilRunnerConfig {
            max_batch: 128,
            min_batch: 64,
            max_index_rows: 512,
            build_threads: vec![1, 2],
            measure: RunnerConfig {
                repetitions: 2,
                warmups: 0,
                ..RunnerConfig::default()
            },
        }
    }
}

/// Run all util runners.
pub fn run_util_runners(cfg: &UtilRunnerConfig) -> DbResult<TrainingRepo> {
    let mut repo = TrainingRepo::new();
    run_gc_runner(cfg, &mut repo)?;
    run_wal_runner(cfg, &mut repo)?;
    run_compaction_runner(cfg, &mut repo)?;
    run_index_build_runner(cfg, &mut repo)?;
    Ok(repo)
}

/// GC runner: produce version garbage with updates, then measure one
/// collection pass.
pub fn run_gc_runner(cfg: &UtilRunnerConfig, repo: &mut TrainingRepo) -> DbResult<()> {
    let translator = OuTranslator::default();
    for &versions in &exponential_steps(cfg.min_batch, cfg.max_batch) {
        for interval_ms in [1.0f64, 10.0, 100.0] {
            let db = Database::new(DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::bench()
            })?;
            db.execute("CREATE TABLE gc_t (a INT, b INT)")?;
            let slots = versions.max(64);
            let values: Vec<String> = (0..slots).map(|i| format!("({i}, 0)")).collect();
            db.execute(&format!("INSERT INTO gc_t VALUES {}", values.join(", ")))?;
            // Generate garbage: `versions` single-row updates.
            for i in 0..versions {
                db.execute(&format!("UPDATE gc_t SET b = {i} WHERE a = {}", i % slots))?;
            }
            let knobs = db.knobs();
            let instance =
                translator.gc_features(versions as f64, slots as f64, interval_ms, &knobs);
            let mut tracker = OuTracker::start();
            let report = db.gc().run_once();
            tracker.add_tuples(report.versions_reclaimed as u64);
            tracker.add_random_accesses(report.slots_scanned as u64);
            tracker.add_bytes(report.versions_reclaimed as u64 * 32);
            let labels = tracker.finish(&knobs.hw);
            repo.add(OuSample {
                ou: OuKind::GarbageCollection,
                features: instance.features,
                labels,
            });
        }
    }
    Ok(())
}

/// Compaction runner: freeze whole shard units with committed inserts,
/// then measure one sealing pass across unit counts and cadence-knob
/// settings (the `compaction_interval_ms` feature).
pub fn run_compaction_runner(cfg: &UtilRunnerConfig, repo: &mut TrainingRepo) -> DbResult<()> {
    use mb2_engine::storage::SHARD_UNIT_SLOTS;
    let translator = OuTranslator::default();
    let max_units = (cfg.max_batch / SHARD_UNIT_SLOTS).clamp(1, 8);
    let mut units = 1usize;
    while units <= max_units {
        for interval_ms in [10.0f64, 100.0, 1000.0] {
            let db = Database::new(DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::bench()
            })?;
            db.execute("CREATE TABLE cp_t (a INT, b INT)")?;
            // Full units seal; the remainder stays hot on the row path.
            let rows = units * SHARD_UNIT_SLOTS + 37;
            let mut i = 0;
            while i < rows {
                let end = (i + 500).min(rows);
                let values: Vec<String> = (i..end).map(|j| format!("({j}, {})", j % 10)).collect();
                db.execute(&format!("INSERT INTO cp_t VALUES {}", values.join(", ")))?;
                i = end;
            }
            let knobs = db.knobs();
            let instance = translator.compaction_features(
                (units * SHARD_UNIT_SLOTS) as f64,
                units as f64,
                interval_ms,
                &knobs,
            );
            let mut tracker = OuTracker::start();
            let report = db.compact_now();
            tracker.add_tuples(report.tuples_sealed as u64);
            tracker.add_random_accesses(report.units_sealed as u64);
            tracker.add_bytes(report.versions_evicted as u64 * 32);
            tracker.add_allocated(report.tuples_sealed as u64 * 16);
            let labels = tracker.finish(&knobs.hw);
            repo.add(OuSample {
                ou: OuKind::Compaction,
                features: instance.features,
                labels,
            });
        }
        units *= 2;
    }
    Ok(())
}

/// WAL runner: measure serializing batches of records into buffers and
/// flushing them, across batch sizes, record sizes, and flush intervals.
pub fn run_wal_runner(cfg: &UtilRunnerConfig, repo: &mut TrainingRepo) -> DbResult<()> {
    let translator = OuTranslator::default();
    let mut rng = Prng::new(cfg.measure.seed);
    for &records in &exponential_steps(cfg.min_batch, cfg.max_batch) {
        for payload in [8usize, 64, 256] {
            for interval_ms in [1u64, 10, 100] {
                let knobs = Knobs {
                    wal_flush_interval: Duration::from_millis(interval_ms),
                    ..Knobs::default()
                };
                let wal_path = std::env::temp_dir().join(format!(
                    "mb2_wal_runner_{}_{records}_{payload}_{interval_ms}.log",
                    std::process::id()
                ));
                let _ = std::fs::remove_file(&wal_path);
                let wal = LogManager::new(LogManagerConfig {
                    path: Some(wal_path.clone()),
                    ..LogManagerConfig::default()
                })?;
                let batch: Vec<LogRecord> = (0..records)
                    .map(|i| LogRecord::Insert {
                        txn_id: i as u64,
                        table_id: 1,
                        slot: i as u64,
                        tuple: vec![
                            mb2_common::Value::Int(i as i64),
                            mb2_common::Value::Varchar(rng.string(payload)),
                        ],
                    })
                    .collect();

                // Serialize span.
                let mut tracker = OuTracker::start();
                let mut bytes = 0usize;
                for rec in &batch {
                    bytes += wal.append(rec)?;
                }
                tracker.add_tuples(records as u64);
                tracker.add_bytes(bytes as u64);
                tracker.add_allocated(bytes as u64);
                let labels = tracker.finish(&knobs.hw);
                let inst = translator.log_serialize_features(bytes as f64, records as f64, &knobs);
                repo.add(OuSample {
                    ou: OuKind::LogSerialize,
                    features: inst.features,
                    labels,
                });

                // Flush span.
                let mut tracker = OuTracker::start();
                let (buffers, flushed) = wal.flush_now()?;
                tracker.add_bytes(flushed as u64);
                tracker.add_block_writes(buffers as u64);
                tracker.add_blocked_us(0.0);
                let labels = tracker.finish(&knobs.hw);
                let inst = translator.log_flush_features(flushed as f64, &knobs);
                repo.add(OuSample {
                    ou: OuKind::LogFlush,
                    features: inst.features,
                    labels,
                });
                drop(wal);
                let _ = std::fs::remove_file(&wal_path);
            }
        }
    }
    Ok(())
}

/// Index-build runner: sweep table size, key cardinality, and thread count
/// (the contention feature, paper §4.2).
pub fn run_index_build_runner(cfg: &UtilRunnerConfig, repo: &mut TrainingRepo) -> DbResult<()> {
    let translator = OuTranslator::default();
    for &rows in &exponential_steps(
        cfg.max_index_rows.min(1024).max(cfg.min_batch),
        cfg.max_index_rows,
    ) {
        for card_div in [1usize, 16] {
            let db = Database::new(DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::bench()
            })?;
            db.execute("CREATE TABLE ib_t (a INT, b INT, c VARCHAR(16))")?;
            let card = (rows / card_div).max(1);
            let mut i = 0;
            while i < rows {
                let end = (i + 500).min(rows);
                let values: Vec<String> = (i..end)
                    .map(|j| format!("({j}, {}, 'k{}')", j % card, j % card))
                    .collect();
                db.execute(&format!("INSERT INTO ib_t VALUES {}", values.join(", ")))?;
                i = end;
            }
            db.execute("ANALYZE ib_t")?;
            for &threads in &cfg.build_threads {
                for (ki, key_cols) in ["b", "b, c", "a, b, c"].iter().enumerate() {
                    let rep_cap = cfg.measure.repetitions.min(3);
                    for rep in 0..rep_cap {
                        let name = format!("ib_idx_{threads}_{ki}_{rep}");
                        let sql = format!(
                            "CREATE INDEX {name} ON ib_t ({key_cols}) WITH (THREADS = {threads})"
                        );
                        let plan = db.prepare(&sql)?;
                        let instances = translator.translate_plan(&plan, &db.knobs());
                        let collector = crate::collect::TrainingCollector::new(&instances);
                        db.execute_plan(&plan, Some(&collector))?;
                        repo.add_all(collector.drain_joined());
                        db.execute(&format!("DROP INDEX {name} ON ib_t"))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Measure a one-off CREATE INDEX action (used by end-to-end experiments to
/// record ground truth alongside predictions).
pub fn measure_index_build(
    db: &Database,
    sql: &str,
    translator: &OuTranslator,
) -> DbResult<Vec<OuSample>> {
    let plan = db.prepare(sql)?;
    let cfg = RunnerConfig {
        repetitions: 1,
        warmups: 0,
        ..RunnerConfig::default()
    };
    // CREATE INDEX is not rolled back: the caller owns dropping it.
    measure_plan(db, &plan, translator, &cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_runner_produces_samples() {
        let mut repo = TrainingRepo::new();
        run_gc_runner(&UtilRunnerConfig::smoke(), &mut repo).unwrap();
        assert!(repo.count(OuKind::GarbageCollection) >= 6);
        for s in repo.samples(OuKind::GarbageCollection) {
            assert_eq!(s.features.len(), 4);
            assert!(s.labels.elapsed_us() >= 0.0);
        }
    }

    #[test]
    fn compaction_runner_produces_samples() {
        let mut repo = TrainingRepo::new();
        run_compaction_runner(&UtilRunnerConfig::smoke(), &mut repo).unwrap();
        let samples = repo.samples(OuKind::Compaction);
        assert!(samples.len() >= 3, "one sample per cadence setting");
        for s in samples {
            assert_eq!(s.features.len(), 4);
            assert!(
                s.features[0] >= 512.0,
                "full units frozen: {:?}",
                s.features
            );
            assert!(s.labels.elapsed_us() >= 0.0);
        }
        let cadences: std::collections::BTreeSet<u64> =
            samples.iter().map(|s| s.features[2] as u64).collect();
        assert_eq!(cadences.len(), 3, "{cadences:?}");
    }

    #[test]
    fn wal_runner_produces_serialize_and_flush() {
        let mut repo = TrainingRepo::new();
        run_wal_runner(&UtilRunnerConfig::smoke(), &mut repo).unwrap();
        assert!(repo.count(OuKind::LogSerialize) > 0);
        assert_eq!(
            repo.count(OuKind::LogSerialize),
            repo.count(OuKind::LogFlush)
        );
        // Serialize features: bytes grow with record count.
        let samples = repo.samples(OuKind::LogSerialize);
        assert!(samples.iter().any(|s| s.features[0] > 1000.0));
    }

    #[test]
    fn index_build_runner_sweeps_threads() {
        let mut repo = TrainingRepo::new();
        run_index_build_runner(&UtilRunnerConfig::smoke(), &mut repo).unwrap();
        let samples = repo.samples(OuKind::IndexBuild);
        assert!(!samples.is_empty());
        let threads: std::collections::BTreeSet<u64> =
            samples.iter().map(|s| s.features[4] as u64).collect();
        assert!(threads.contains(&1) && threads.contains(&2), "{threads:?}");
    }
}
