//! Write-path operators (DML + index build). Each is one OU span: begin a
//! tracker, do the work with work-accounting, finish + record.
//!
//! Row-producing (read-path) operators live in [`crate::batch`] — they run
//! as a pull-based batch pipeline. DML victim scans reuse that pipeline via
//! `run_scan_with_slots`, so filters are pushed into the
//! scan visitors on the write path too.

use std::time::Instant;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult, OuKind, Value};
use mb2_sql::{BoundExpr, PlanNode};
use mb2_storage::SlotId;

use crate::compile::Evaluator;
use crate::context::{ExecContext, ExecutionMode};
use crate::tracker::OuTracker;

/// Span guard: tracks when a recorder is attached or hardware pacing is
/// active (pacing must stretch spans even when metrics aren't collected).
struct Span {
    tracker: Option<OuTracker>,
}

impl Span {
    fn begin(ctx: &ExecContext<'_>) -> Span {
        let active = ctx.recorder.is_some() || ctx.hw.slowdown() > 1.0;
        Span {
            tracker: active.then(OuTracker::start),
        }
    }

    fn work(&mut self, f: impl FnOnce(&mut OuTracker)) {
        if let Some(t) = self.tracker.as_mut() {
            f(t);
        }
    }

    fn end(self, ctx: &ExecContext<'_>, id: u32, ou: OuKind) {
        if let Some(t) = self.tracker {
            let work = t.work;
            let metrics = t.finish(&ctx.hw);
            if let Some(r) = ctx.recorder {
                r.record_work(id, ou, work);
                r.record(id, ou, metrics);
            }
        }
    }
}

pub(crate) fn compiled(ctx: &ExecContext<'_>) -> bool {
    ctx.mode == ExecutionMode::Compiled
}

/// Busy-wait for `us` microseconds (used for injected regressions — a spin
/// models a slower algorithm, paper §8.5).
pub(crate) fn spin_us(us: u64) {
    let until = Instant::now() + std::time::Duration::from_micros(us);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

// ----------------------------------------------------------------------
// DML
// ----------------------------------------------------------------------

pub fn insert(table: &str, rows: &[Tuple], ctx: &mut ExecContext<'_>, id: u32) -> DbResult<usize> {
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let mut span = Span::begin(ctx);
    let mut bytes = 0u64;
    for row in rows {
        bytes += tuple_size_bytes(row) as u64;
        let slot = ctx.txn.insert(&entry.table, row.clone())?;
        for index in &indexes {
            index.insert(index.key_of(row), slot);
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
        t.add_random_accesses(rows.len() as u64 * indexes.len() as u64);
    });
    span.end(ctx, id, OuKind::InsertTuple);
    Ok(rows.len())
}

pub fn update(
    table: &str,
    scan: &PlanNode,
    assignments: &[(usize, BoundExpr)],
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<usize> {
    let (rows, slots) = run_scan_with_slots(scan, ctx, id + 1)?;
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let use_compiled = compiled(ctx);
    let evals: Vec<(usize, Evaluator)> = assignments
        .iter()
        .map(|(pos, e)| (*pos, Evaluator::new(e, use_compiled)))
        .collect();

    let mut span = Span::begin(ctx);
    let mut bytes = 0u64;
    for (old, slot) in rows.iter().zip(&slots) {
        let mut new = old.as_ref().clone();
        for (pos, eval) in &evals {
            new[*pos] = eval.eval(old)?;
        }
        bytes += tuple_size_bytes(&new) as u64;
        ctx.txn.update(&entry.table, *slot, new.clone())?;
        for index in &indexes {
            let old_key = index.key_of(old);
            let new_key = index.key_of(&new);
            if old_key != new_key {
                index.remove(&old_key, |v| v == slot);
                index.insert(new_key, *slot);
            }
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_bytes(bytes);
        t.add_allocated(bytes);
        t.add_random_accesses(rows.len() as u64 * (1 + indexes.len() as u64));
    });
    span.end(ctx, id, OuKind::UpdateTuple);
    Ok(rows.len())
}

pub fn delete(table: &str, scan: &PlanNode, ctx: &mut ExecContext<'_>, id: u32) -> DbResult<usize> {
    let (rows, slots) = run_scan_with_slots(scan, ctx, id + 1)?;
    let entry = ctx.catalog.get(table)?;
    let indexes = entry.indexes();
    let mut span = Span::begin(ctx);
    for (old, slot) in rows.iter().zip(&slots) {
        ctx.txn.delete(&entry.table, *slot)?;
        for index in &indexes {
            index.remove(&index.key_of(old), |v| v == slot);
        }
    }
    span.work(|t| {
        t.add_tuples(rows.len() as u64);
        t.add_random_accesses(rows.len() as u64 * (1 + indexes.len() as u64));
    });
    span.end(ctx, id, OuKind::DeleteTuple);
    Ok(rows.len())
}

/// DML victim scan: drive the batch pipeline over the scan node, collecting
/// rows with their slot provenance.
fn run_scan_with_slots(
    scan: &PlanNode,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<(Vec<std::sync::Arc<Tuple>>, Vec<SlotId>)> {
    match scan {
        PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => {
            crate::batch::run_scan_with_slots(scan, ctx, id)
        }
        other => Err(DbError::Execution(format!(
            "DML scan must be a table scan, found {}",
            other.label()
        ))),
    }
}

// ----------------------------------------------------------------------
// Index build
// ----------------------------------------------------------------------

pub fn create_index(
    table: &str,
    index_name: &str,
    columns: &[usize],
    threads: usize,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<usize> {
    let entry = ctx.catalog.get(table)?;
    let mut span = Span::begin(ctx);
    // Snapshot the key/slot pairs visible to this transaction.
    let mut entries: Vec<(Vec<Value>, SlotId)> = Vec::new();
    let mut key_bytes = 0u64;
    entry
        .table
        .scan_visible(ctx.txn.read_ts(), ctx.txn.id(), |slot, tuple| {
            let key: Vec<Value> = columns.iter().map(|&c| tuple[c].clone()).collect();
            key_bytes += tuple_size_bytes(&key) as u64;
            entries.push((key, slot));
            true
        });
    let n = entries.len();

    // Parallel sort-merge build with hardware pacing per entry.
    let slowdown = ctx.hw.slowdown();
    let pace: Box<dyn Fn() + Sync> = if slowdown > 1.0 {
        let spin_ns = ((slowdown - 1.0) * 60.0) as u64;
        Box::new(move || {
            let until = Instant::now() + std::time::Duration::from_nanos(spin_ns);
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        })
    } else {
        Box::new(|| {})
    };
    let report = mb2_index::parallel_build_observed(
        entries,
        threads,
        pace.as_ref(),
        ctx.index_obs.as_deref(),
    );
    let index = mb2_index::Index::with_obs(index_name, columns.to_vec(), ctx.index_obs.clone());
    index.replace_tree(report.tree);
    let tree_bytes = index.approx_bytes() as u64;
    entry.add_index(std::sync::Arc::new(index))?;

    span.work(|t| {
        t.add_tuples(n as u64);
        t.add_bytes(key_bytes);
        t.add_comparisons((n as f64 * (n.max(2) as f64).log2()) as u64);
        t.add_allocated(tree_bytes);
        t.add_random_accesses(n as u64 / 4);
    });
    span.end(ctx, id, OuKind::IndexBuild);
    Ok(n)
}
