//! Index advisor: the paper's motivating scenario (§2.1, Fig. 1).
//!
//! A self-driving DBMS must decide whether to build an index and with how
//! many threads. This example trains behavior models, then uses the oracle
//! planner to evaluate `CREATE INDEX` actions with 1–8 build threads on a
//! TPC-C CUSTOMER table, showing the predicted cost (build time), impact
//! (workload slowdown while building), and benefit (speedup afterwards) —
//! and finally executes the chosen action to compare prediction with
//! reality.
//!
//! Run with: `cargo run --release --example index_advisor`

use mb2::engine::Database;
use mb2::framework::planner::{Action, OraclePlanner};
use mb2::framework::runners::execution::{run_execution_runners, ExecutionRunnerConfig};
use mb2::framework::runners::util::{run_util_runners, UtilRunnerConfig};
use mb2::framework::runners::RunnerConfig;
use mb2::framework::training::{train_all, TrainingConfig};
use mb2::framework::{BehaviorModels, QueryTemplate, WorkloadForecast};
use mb2::ml::Algorithm;
use mb2::workloads::tpcc::Tpcc;
use mb2::workloads::Workload;

fn main() {
    println!("== MB2 index advisor ==");
    println!("[1/4] collecting training data (execution + util runners)...");
    let mut repo = run_execution_runners(&ExecutionRunnerConfig {
        max_rows: 4096,
        min_rows: 64,
        measure: RunnerConfig {
            repetitions: 4,
            warmups: 2,
            ..RunnerConfig::default()
        },
        ..ExecutionRunnerConfig::default()
    })
    .expect("execution runners");
    repo.merge(
        run_util_runners(&UtilRunnerConfig {
            max_index_rows: 8192,
            build_threads: vec![1, 2, 4, 8],
            measure: RunnerConfig {
                repetitions: 3,
                warmups: 0,
                ..RunnerConfig::default()
            },
            ..UtilRunnerConfig::default()
        })
        .expect("util runners"),
    );

    println!("[2/4] training OU-models...");
    let (models, _) = train_all(
        &repo,
        &TrainingConfig {
            candidates: vec![
                Algorithm::Linear,
                Algorithm::RandomForest,
                Algorithm::GradientBoosting,
            ],
            ..TrainingConfig::default()
        },
    )
    .expect("training");
    let behavior = BehaviorModels::new(models, None);

    println!("[3/4] loading TPC-C without the customer last-name index...");
    let tpcc = Tpcc {
        customer_last_name_index: false,
        customers_per_district: 400,
        ..Tpcc::default()
    };
    let db = Database::open();
    tpcc.load(&db).unwrap();

    // The workload the forecast says is coming: payment-style last-name
    // lookups (they benefit from the index).
    let lookup_sql = "SELECT c_id, c_balance FROM customer \
                      WHERE c_w_id = 0 AND c_d_id = 3 AND c_last = 'BARBARBAR' \
                      ORDER BY c_first";
    let template = QueryTemplate {
        name: "payment_by_last_name".into(),
        sql: lookup_sql.into(),
        plan: db.prepare(lookup_sql).unwrap(),
    };
    let mut forecast = WorkloadForecast::new(vec![template], 4);
    forecast.push_interval(10.0, vec![100.0]);

    let planner = OraclePlanner::new(&db, &behavior);
    println!("[4/4] evaluating CREATE INDEX actions:");
    println!(
        "      {:>7} {:>14} {:>14} {:>14} {:>9}",
        "threads", "build time", "query before", "query after", "gain"
    );
    let mut best: Option<(usize, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let action = Action::BuildIndex {
            sql: tpcc.customer_index_sql(threads),
            table: "customer".into(),
            index: "customer_last_name".into(),
            columns: vec!["c_w_id".into(), "c_d_id".into(), "c_last".into()],
            threads,
        };
        let eval = planner
            .evaluate(&action, &forecast, 0, &db.knobs())
            .unwrap();
        println!(
            "      {threads:>7} {:>11.1} ms {:>11.0} us {:>11.0} us {:>8.0}%",
            eval.action_duration_us / 1000.0,
            eval.baseline_us,
            eval.after_us,
            eval.predicted_gain() * 100.0
        );
        if best.is_none_or(|(_, d)| eval.action_duration_us < d) {
            best = Some((threads, eval.action_duration_us));
        }
    }

    let (threads, predicted_us) = best.unwrap();
    println!("\nexecuting the {threads}-thread build to check the prediction...");
    let started = std::time::Instant::now();
    db.execute(&tpcc.customer_index_sql(threads)).unwrap();
    let actual_us = started.elapsed().as_nanos() as f64 / 1000.0;
    println!(
        "predicted build: {:.1} ms | actual build: {:.1} ms",
        predicted_us / 1000.0,
        actual_us / 1000.0
    );
    let started = std::time::Instant::now();
    db.execute(lookup_sql).unwrap();
    println!(
        "last-name lookup now takes {:.0} us with the index.",
        started.elapsed().as_nanos() as f64 / 1000.0
    );
}
