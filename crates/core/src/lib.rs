//! ModelBot2 (MB2): decomposed behavior modeling for self-driving DBMSs.
//!
//! This crate is the paper's primary contribution, reproduced end to end:
//!
//! * [`features`] / [`translate`] — the OU translator maps query/action
//!   plans (plus behavior knobs and optional hardware context) to operating
//!   units with low-dimensional feature vectors (paper §4.2, Table 1).
//! * [`normalize`] — output-label normalization by per-OU asymptotic
//!   complexity, the key to dataset-size generalization (paper §4.3).
//! * [`collect`] — the lightweight data-collection layer: an
//!   [`mb2_exec::OuRecorder`] that pairs plan-derived features with
//!   execution-measured labels (paper §6.1).
//! * [`runners`] — OU-runners that sweep each OU's input space over SQL,
//!   util/txn runners for the batch and contending OUs, and concurrent
//!   runners that execute end-to-end benchmarks for interference data
//!   (paper §6.2–6.3).
//! * [`training`] — per-OU model search over the seven ML algorithm
//!   families with 80/20 validation, then refit on all data (paper §6.4).
//! * [`interference`] — the resource-competition interference model over
//!   summary statistics of concurrent OUs (paper §5).
//! * [`forecast`] / [`inference`] — workload forecasts in, predicted
//!   runtime/resource behavior out (paper §3, Fig. 3).
//! * [`planner`] — the "oracle" self-driving planner of the paper's
//!   end-to-end demonstration (§8.7): it prices candidate actions by
//!   comparing MB2's predictions of their cost, benefit, and impact.
//!   It runs both offline (what-if studies over a canned forecast) and
//!   online — the `mb2-pilot` autopilot calls it from a background
//!   control loop against the live [`mb2_engine::Database`], using
//!   planner overrides for catalog-safe what-if planning and the
//!   [`forecast::SlidingWindowForecaster`] for live workload forecasts.

pub mod collect;
pub mod features;
pub mod forecast;
pub mod inference;
pub mod interference;
pub mod normalize;
pub mod planner;
pub mod runners;
pub mod sched;
pub mod training;
pub mod translate;

pub use collect::{OuSample, TrainingCollector, TrainingRepo};
pub use features::{feature_names, feature_width, OuInstance};
pub use forecast::{
    normalize_sql, ForecastInterval, QueryTemplate, SlidingWindowForecaster, WorkloadForecast,
};
pub use inference::{BehaviorModels, PlanPrediction};
pub use interference::{InterferenceInputs, InterferenceModel};
pub use sched::{InflightLedger, LedgerTicket};
pub use translate::{OuTranslator, TranslatorConfig};
