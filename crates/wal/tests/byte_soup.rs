//! Property tests: the log scanner must survive arbitrary byte soup.
//!
//! The scanner is the first thing that touches untrusted bytes after a
//! crash, so it must (a) never panic, whatever the file contains, and
//! (b) never fabricate a record: everything it accepts must be the
//! byte-exact serialization the writer produced (enforced here by
//! re-serializing the accepted records and comparing with the consumed
//! prefix).

use bytes::BytesMut;
use mb2_common::{Prng, Value};
use mb2_wal::{scan_records, LogRecord};
use proptest::prelude::*;

fn random_record(rng: &mut Prng) -> LogRecord {
    match rng.range_usize(0, 6) {
        0 => LogRecord::Begin {
            txn_id: rng.next_u64(),
        },
        1 => {
            let strlen = rng.range_usize(0, 24);
            LogRecord::Insert {
                txn_id: rng.next_u64(),
                table_id: rng.range_u64(0, 16) as u32,
                slot: rng.next_u64(),
                tuple: vec![
                    Value::Int(rng.range_i64(-1000, 1000)),
                    Value::Varchar(rng.string(strlen)),
                    Value::Bool(rng.chance(0.5)),
                ],
            }
        }
        2 => LogRecord::Update {
            txn_id: rng.next_u64(),
            table_id: rng.range_u64(0, 16) as u32,
            slot: rng.next_u64(),
            tuple: vec![Value::Float(rng.next_f64()), Value::Null],
        },
        3 => LogRecord::Delete {
            txn_id: rng.next_u64(),
            table_id: rng.range_u64(0, 16) as u32,
            slot: rng.next_u64(),
        },
        4 => LogRecord::Commit {
            txn_id: rng.next_u64(),
        },
        _ => LogRecord::Abort {
            txn_id: rng.next_u64(),
        },
    }
}

/// Adversarial log images: genuine records interleaved with bit-flipped
/// records, raw noise, hostile length prefixes, and truncated records.
fn arbitrary_soup(seed: u64, budget: usize) -> Vec<u8> {
    let mut rng = Prng::new(seed);
    let mut data = Vec::new();
    while data.len() < budget {
        match rng.range_usize(0, 6) {
            // Genuine record.
            0 | 1 => {
                let mut buf = BytesMut::new();
                random_record(&mut rng).serialize_into(&mut buf);
                data.extend_from_slice(&buf);
            }
            // Genuine record with one flipped bit.
            2 => {
                let mut buf = BytesMut::new();
                random_record(&mut rng).serialize_into(&mut buf);
                let mut bytes = buf.to_vec();
                let pos = rng.range_usize(0, bytes.len());
                bytes[pos] ^= 1 << rng.range_usize(0, 8);
                data.extend_from_slice(&bytes);
            }
            // Raw noise.
            3 => {
                for _ in 0..rng.range_usize(1, 32) {
                    data.push(rng.range_u64(0, 256) as u8);
                }
            }
            // Hostile length prefix (up to u32::MAX) plus a fake CRC.
            4 => {
                data.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
                data.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
            }
            // Truncated genuine record.
            _ => {
                let mut buf = BytesMut::new();
                random_record(&mut rng).serialize_into(&mut buf);
                let keep = rng.range_usize(1, buf.len());
                data.extend_from_slice(&buf[..keep]);
            }
        }
    }
    data
}

proptest! {
    #[test]
    fn scanner_never_panics_or_fabricates(seed in any::<u64>(), budget in 16usize..1024) {
        let data = arbitrary_soup(seed, budget);

        // Salvage mode accepts any input; strict mode may reject but must
        // not panic.
        let report = scan_records(&data, true).expect("salvage scan cannot fail");
        let _ = scan_records(&data, false);

        // No fabrication: the accepted records re-serialize byte-for-byte
        // into the prefix the scanner consumed. A record that "passes CRC"
        // without being a genuine writer output would diverge here.
        let mut reserialized = BytesMut::new();
        for rec in &report.records {
            rec.serialize_into(&mut reserialized);
        }
        prop_assert_eq!(&reserialized[..], &data[..report.bytes_consumed]);

        // Accounting is coherent.
        prop_assert!(report.bytes_consumed <= data.len());
        match &report.corruption {
            None => prop_assert_eq!(
                report.bytes_consumed + report.torn_tail_bytes,
                data.len()
            ),
            Some(c) => {
                prop_assert_eq!(c.offset, report.bytes_consumed);
                prop_assert_eq!(c.offset + c.dropped_bytes, data.len());
                prop_assert_eq!(report.torn_tail_bytes, 0);
            }
        }
    }

    #[test]
    fn clean_logs_always_scan_fully(seed in any::<u64>(), count in 1usize..40) {
        let mut rng = Prng::new(seed);
        let mut data = BytesMut::new();
        let records: Vec<LogRecord> =
            (0..count).map(|_| random_record(&mut rng)).collect();
        for rec in &records {
            rec.serialize_into(&mut data);
        }
        let report = scan_records(&data, false).expect("clean log must scan");
        prop_assert_eq!(&report.records, &records);
        prop_assert_eq!(report.torn_tail_bytes, 0);
        prop_assert!(report.corruption.is_none());
    }
}
