//! Minimal CSV emission/parsing for training-data artifacts.
//!
//! The framework persists OU-runner output so experiments can be re-run
//! without regenerating data. Fields are numeric or simple identifiers, so a
//! small escaping-free dialect suffices (values containing `,`, `"` or
//! newlines are rejected at write time rather than quoted).

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::error::{DbError, DbResult};

/// In-memory CSV table with a header row.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    pub fn new(header: Vec<String>) -> CsvTable {
        CsvTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity doesn't match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "csv row arity mismatch");
        self.rows.push(row);
    }

    /// Append a row of floats formatted with full precision.
    pub fn push_f64_row(&mut self, row: &[f64]) {
        self.push_row(row.iter().map(|v| format_f64(*v)).collect());
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> DbResult<usize> {
        self.header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| DbError::Storage(format!("csv column '{name}' missing")))
    }

    /// Render to a CSV string.
    pub fn to_csv_string(&self) -> DbResult<String> {
        let mut out = String::new();
        write_line(&mut out, &self.header)?;
        for row in &self.rows {
            write_line(&mut out, row)?;
        }
        Ok(out)
    }

    /// Write to a file.
    pub fn write_to(&self, path: &Path) -> DbResult<()> {
        let file = File::create(path).map_err(|e| DbError::Storage(format!("csv create: {e}")))?;
        let mut w = BufWriter::new(file);
        w.write_all(self.to_csv_string()?.as_bytes())
            .map_err(|e| DbError::Storage(format!("csv write: {e}")))?;
        Ok(())
    }

    /// Parse from a string.
    pub fn parse(text: &str) -> DbResult<CsvTable> {
        let mut lines = text.lines();
        let header = match lines.next() {
            Some(h) => split_line(h),
            None => return Err(DbError::Storage("empty csv".into())),
        };
        let mut table = CsvTable::new(header);
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let row = split_line(line);
            if row.len() != table.header.len() {
                return Err(DbError::Storage(format!(
                    "csv row arity {} != header arity {}",
                    row.len(),
                    table.header.len()
                )));
            }
            table.rows.push(row);
        }
        Ok(table)
    }

    /// Read from a file.
    pub fn read_from(path: &Path) -> DbResult<CsvTable> {
        let file = File::open(path).map_err(|e| DbError::Storage(format!("csv open: {e}")))?;
        let mut text = String::new();
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| DbError::Storage(format!("csv read: {e}")))?;
            text.push_str(&line);
            text.push('\n');
        }
        CsvTable::parse(&text)
    }

    /// Parse a cell as f64.
    pub fn f64_at(&self, row: usize, col: usize) -> DbResult<f64> {
        self.rows[row][col]
            .parse()
            .map_err(|e| DbError::Storage(format!("csv parse f64: {e}")))
    }
}

fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_line(out: &mut String, fields: &[String]) -> DbResult<()> {
    for (i, f) in fields.iter().enumerate() {
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            return Err(DbError::Storage(format!("csv field needs quoting: {f:?}")));
        }
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{f}");
    }
    out.push('\n');
    Ok(())
}

fn split_line(line: &str) -> Vec<String> {
    line.split(',').map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut t = CsvTable::new(vec!["a".into(), "b".into()]);
        t.push_f64_row(&[1.0, 2.5]);
        t.push_row(vec!["3".into(), "x".into()]);
        let s = t.to_csv_string().unwrap();
        let back = CsvTable::parse(&s).unwrap();
        assert_eq!(back.header, t.header);
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.f64_at(0, 1).unwrap(), 2.5);
    }

    #[test]
    fn integral_floats_format_compactly() {
        let mut t = CsvTable::new(vec!["v".into()]);
        t.push_f64_row(&[42.0]);
        assert_eq!(t.rows[0][0], "42");
    }

    #[test]
    fn rejects_fields_needing_quotes() {
        let mut t = CsvTable::new(vec!["v".into()]);
        t.push_row(vec!["a,b".into()]);
        assert!(t.to_csv_string().is_err());
    }

    #[test]
    fn arity_mismatch_detected_on_parse() {
        assert!(CsvTable::parse("a,b\n1\n").is_err());
    }

    #[test]
    fn column_lookup() {
        let t = CsvTable::parse("x,y\n1,2\n").unwrap();
        assert_eq!(t.column("y").unwrap(), 1);
        assert!(t.column("z").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mb2_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(vec!["a".into()]);
        t.push_f64_row(&[7.0]);
        t.write_to(&path).unwrap();
        let back = CsvTable::read_from(&path).unwrap();
        assert_eq!(back.rows[0][0], "7");
        let _ = std::fs::remove_file(&path);
    }
}
